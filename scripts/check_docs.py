#!/usr/bin/env python
"""Documentation checker: run fenced Python snippets, verify relative links.

Walks ``README.md`` and every ``docs/*.md``, and

* executes each fenced ```` ```python ```` block in a fresh namespace (with
  ``src/`` importable), so quickstart code in the docs is guaranteed to run
  against the current API — the docs equivalent of a doctest;
* resolves every relative markdown link/image target against the repo tree,
  so renames can't silently strand the docs.

Exit code 0 when everything passes; 1 with a per-file error report
otherwise.  Run locally or in CI::

    python scripts/check_docs.py               # snippets + links
    python scripts/check_docs.py --links-only  # fast dead-link check
    python scripts/check_docs.py --snippets-only
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

PYTHON_FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.DOTALL | re.MULTILINE)
#: markdown links and images, minus in-page anchors and bare URLs.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    """README plus the docs/ tree, in deterministic order."""
    files = [ROOT / "README.md"]
    files.extend(sorted((ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def run_snippets(path: Path) -> list[str]:
    """Execute every python fence in ``path``; return error descriptions."""
    errors = []
    text = path.read_text(encoding="utf-8")
    for index, match in enumerate(PYTHON_FENCE.finditer(text), start=1):
        snippet = match.group(1)
        line = text[: match.start()].count("\n") + 2  # first line inside fence
        try:
            code = compile(snippet, f"{path.name}:snippet{index}", "exec")
            exec(code, {"__name__": f"__doc_snippet_{index}__"})  # noqa: S102
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            errors.append(f"{path.name}:{line} snippet {index} failed: {exc!r}")
    return errors


def check_links(path: Path) -> list[str]:
    """Verify that relative link targets exist; return error descriptions."""
    errors = []
    for match in LINK.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(f"{path.name}: broken relative link -> {target}")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--links-only",
        action="store_true",
        help="only verify relative link targets (fast, no code execution)",
    )
    mode.add_argument(
        "--snippets-only",
        action="store_true",
        help="only execute fenced python snippets",
    )
    args = parser.parse_args(argv)

    failures = []
    for path in doc_files():
        errors = []
        if not args.links_only:
            errors += run_snippets(path)
        if not args.snippets_only:
            errors += check_links(path)
        snippet_count = len(PYTHON_FENCE.findall(path.read_text(encoding="utf-8")))
        status = "ok" if not errors else f"{len(errors)} error(s)"
        print(f"{path.relative_to(ROOT)}: {snippet_count} snippet(s), {status}")
        failures.extend(errors)
    for error in failures:
        print(f"  FAIL {error}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
