"""E7 — the Fig. 4 policy menagerie: "no policy could be the best for all".

Regenerates the per-function utility matrix: monitoring accuracy, R0 error
and tracing F1 side by side for the paper's Ga / Gb / Gc policies at a fixed
epsilon.
"""

from conftest import emit

from repro.experiments.harness import run_policy_matrix


def test_bench_e7_policy_matrix(benchmark, bench_config):
    table = benchmark.pedantic(
        run_policy_matrix, kwargs={"config": bench_config, "epsilon": 1.0}, rounds=1, iterations=1
    )
    emit(table)
    assert table.column("policy") == ["Ga", "Gb", "Gc"]
    matrix = {row["policy"]: row for row in table.to_dicts()}
    # The finer Gb dominates the coarse Ga on point utility...
    assert matrix["Gb"]["monitoring_error"] < matrix["Ga"]["monitoring_error"]
    # ...while dynamic tracing stays at full utility for all bases.
    for row in matrix.values():
        assert row["tracing_f1"] == 1.0
