"""E11 — extension: city-level epidemic forecasting from perturbed flows.

Sec. 3.1 motivates location monitoring as input to epidemic understanding
("people's movement between different cities ... combining with the
incidence rate in each city").  This bench fits a metapopulation SEIR to the
inter-area flows of the true stream and of each privacy-preserving stream,
and reports the divergence between the forecast epidemic curves.
"""

from conftest import emit

from repro.experiments.harness import run_metapop_forecast


def test_bench_e11_metapop_forecast(benchmark, bench_config):
    table = benchmark.pedantic(
        run_metapop_forecast, args=(bench_config,), rounds=1, iterations=1
    )
    emit(table)
    for row in table.to_dicts():
        assert row["forecast_divergence"] >= 0.0
        assert row["peak_time_true"] > 0
    # At the largest budget the fine policies should forecast no worse than
    # the complete-graph policy at the smallest budget.
    best = table.where(policy="G1", epsilon=2.0).column("forecast_divergence")
    worst = table.where(policy="G2", epsilon=0.1).column("forecast_divergence")
    if best and worst:
        assert best[0] <= worst[0] + 0.05
