"""E12 — robustness: monitoring utility across workloads.

The demo evaluates on both Geolife and Gowalla; this bench verifies the
E1 policy ordering (finer policies -> better point utility) holds on every
synthetic workload — commuters, sparse check-ins, and random waypoint.
"""

from conftest import emit

from repro.experiments.harness import run_dataset_sensitivity


def test_bench_e12_dataset_sensitivity(benchmark, bench_config):
    table = benchmark.pedantic(
        run_dataset_sensitivity,
        kwargs={"config": bench_config, "epsilon": 1.0},
        rounds=1,
        iterations=1,
    )
    emit(table)
    for dataset_table in table.group_by("dataset").values():
        errors = dict(zip(dataset_table.column("policy"), dataset_table.column("mean_euclidean_error")))
        # The paper's ordering is workload independent: G1/Gb beat Ga beat G2.
        assert errors["G1"] < errors["Ga"] < errors["G2"]
