"""E15 — sharded release rounds: throughput vs shard count per backend.

The sharded pipeline's promise is two-sided: shard the population freely
(throughput) without moving a single release (determinism).  These
benchmarks measure the first half on the pytest-benchmark harness — full
``run_release_rounds_batched`` runs across shard counts and backends — and
``test_sharded_matches_unsharded`` re-pins the second half so a perf
regression fix can never silently trade determinism away.

``benchmarks/run_bench.py`` times the same sweep without pytest overhead and
records it (with backend / shard-count metadata) into ``BENCH_eval.json``.
"""

import time

import pytest

from repro.engine import PrivacyEngine
from repro.geo.grid import GridWorld
from repro.mobility.synthetic import geolife_like
from repro.server.pipeline import run_release_rounds_batched

SHARD_COUNTS = [1, 2, 4, 8]
BACKENDS = ["serial", "thread", "process"]
N_USERS = 200
HORIZON = 24


def _workload(size: int = 16):
    world = GridWorld(size, size)
    db = geolife_like(world, n_users=N_USERS, horizon=HORIZON, rng=1)
    engine = PrivacyEngine.from_spec(world, mechanism="planar_laplace", policy="G1", epsilon=1.0)
    return world, db, engine


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_sharded_rounds(benchmark, backend, shards):
    world, db, engine = _workload()
    benchmark(
        run_release_rounds_batched, world, db, engine,
        rng=0, shards=shards, backend=backend,
    )


def test_bench_unsharded_reference(benchmark):
    """The PR 1 time-major single-stream path, for before/after comparison."""
    world, db, engine = _workload()
    benchmark(run_release_rounds_batched, world, db, engine, rng=0)


def test_sharded_matches_unsharded():
    """Acceptance: every (backend, shards) pair releases identical values."""
    world, db, engine = _workload(size=8)
    reference = run_release_rounds_batched(world, db, engine, rng=7, shards=1)
    expected = list(reference.released_db.checkins())
    timings = {}
    for backend in BACKENDS:
        for shards in SHARD_COUNTS:
            start = time.perf_counter()
            server = run_release_rounds_batched(
                world, db, engine, rng=7, shards=shards, backend=backend
            )
            timings[(backend, shards)] = time.perf_counter() - start
            assert list(server.released_db.checkins()) == expected, (backend, shards)
    releases = len(db)
    print()
    for (backend, shards), seconds in timings.items():
        print(f"E15: {backend:<8} shards={shards}  {releases / seconds:>12,.0f} releases/s")
