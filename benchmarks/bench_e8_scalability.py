"""E8 — mechanism and filtering latency vs world size.

The demo runs interactively, so per-release latency is the system metric
that matters.  This file benchmarks the hot paths properly (multiple rounds,
real timing statistics): mechanism construction, a single release, a density
evaluation, and one HMM filtering step, at growing grid sizes.
"""

import numpy as np
import pytest

from repro.core.mechanisms import (
    GraphExponentialMechanism,
    PolicyLaplaceMechanism,
    PolicyPlanarIsotropicMechanism,
)
from repro.core.policies import grid_policy
from repro.geo.grid import GridWorld
from repro.mobility.hmm import BayesFilter
from repro.mobility.markov import MarkovModel

SIZES = [8, 16, 24]


@pytest.mark.parametrize("size", SIZES)
def test_bench_construct_laplace(benchmark, size):
    world = GridWorld(size, size)
    policy = grid_policy(world)
    benchmark(PolicyLaplaceMechanism, world, policy, 1.0)


@pytest.mark.parametrize("size", SIZES)
def test_bench_construct_pim(benchmark, size):
    world = GridWorld(size, size)
    policy = grid_policy(world)
    benchmark(PolicyPlanarIsotropicMechanism, world, policy, 1.0)


@pytest.mark.parametrize("size", SIZES)
def test_bench_release_laplace(benchmark, size):
    world = GridWorld(size, size)
    mech = PolicyLaplaceMechanism(world, grid_policy(world), 1.0)
    rng = np.random.default_rng(0)
    cell = world.cell_of(size // 2, size // 2)
    benchmark(mech.release, cell, rng)


@pytest.mark.parametrize("size", SIZES)
def test_bench_release_pim(benchmark, size):
    world = GridWorld(size, size)
    mech = PolicyPlanarIsotropicMechanism(world, grid_policy(world), 1.0)
    rng = np.random.default_rng(0)
    cell = world.cell_of(size // 2, size // 2)
    benchmark(mech.release, cell, rng)


@pytest.mark.parametrize("size", SIZES)
def test_bench_release_graph_exponential(benchmark, size):
    world = GridWorld(size, size)
    mech = GraphExponentialMechanism(world, grid_policy(world), 1.0)
    rng = np.random.default_rng(0)
    cell = world.cell_of(size // 2, size // 2)
    mech.pmf(cell)  # warm the cache: steady-state latency is what the app sees
    benchmark(mech.release, cell, rng)


@pytest.mark.parametrize("size", SIZES)
def test_bench_pdf_pim(benchmark, size):
    world = GridWorld(size, size)
    mech = PolicyPlanarIsotropicMechanism(world, grid_policy(world), 1.0)
    cell = world.cell_of(size // 2, size // 2)
    z = (0.1, 0.2)
    benchmark(mech.pdf, z, cell)


@pytest.mark.parametrize("size", [8, 16])
def test_bench_hmm_filter_step(benchmark, size):
    world = GridWorld(size, size)
    mech = PolicyLaplaceMechanism(world, grid_policy(world), 1.0)
    markov = MarkovModel.lazy_walk(world)
    release = mech.release(world.cell_of(1, 1), rng=0)

    def step():
        filt = BayesFilter(markov, prior=np.full(world.n_cells, 1.0 / world.n_cells))
        filt.step(release, mech)

    benchmark(step)
