"""E16 — distributed evaluation: sharded metric throughput, pool vs process.

The distributed-metric promise mirrors E15's: shard the evaluation freely
(throughput) without moving a single metric value (determinism).  These
benchmarks measure sharded :func:`~repro.epidemic.monitor.monitoring_utility`
across shard counts and backends, re-pin the bit-identity contract
(``test_distributed_matches_serial``), and measure the headline claim of the
``pool`` backend: on a *repeated-round* sweep — the shape of every epsilon
sweep and harness table — a long-lived worker pool with spec-hash engine
caching beats the per-call ``process`` backend, which pays worker startup
and engine pickling on every round (``test_pool_beats_process``).

``benchmarks/run_bench.py`` records the same sweep (plus the pool-vs-process
comparison) into ``BENCH_eval.json``; running this file directly writes the
standalone artifact CI uploads alongside it::

    PYTHONPATH=src python benchmarks/bench_e16_distributed_eval.py --smoke
    PYTHONPATH=src pytest benchmarks/bench_e16_distributed_eval.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import pytest

from repro.engine import PrivacyEngine, ensure_backend
from repro.epidemic.monitor import monitoring_utility
from repro.geo.grid import GridWorld
from repro.mobility.synthetic import geolife_like

SHARD_COUNTS = [1, 2, 4]
BACKENDS = ["serial", "thread", "process", "pool"]
N_USERS = 150
HORIZON = 16

#: CI-sized workload shared by ``--smoke`` here and ``run_bench.py --smoke``,
#: so both artifacts always measure the same configuration.
SMOKE_WORKLOAD = {"size": 8, "n_users": 40, "horizon": 10}


def _workload(size: int = 12, n_users: int = N_USERS, horizon: int = HORIZON):
    world = GridWorld(size, size)
    db = geolife_like(world, n_users=n_users, horizon=horizon, rng=1)
    engine = PrivacyEngine.from_spec(
        world, mechanism="planar_laplace", policy="G1", epsilon=1.0
    )
    return world, db, engine


def eval_sweep_records(
    size: int = 12,
    n_users: int = N_USERS,
    horizon: int = HORIZON,
    backends=tuple(BACKENDS),
    shard_counts=tuple(SHARD_COUNTS),
) -> list[dict]:
    """Sharded-E1 throughput per (backend, shards), with the determinism bit.

    One backend instance is opened per backend name and reused across its
    shard counts (the pool's amortisation shows up inside its row block).
    ``matches_serial`` compares the whole report bit-for-bit against the
    serial 1-shard baseline.
    """
    world, db, engine = _workload(size, n_users, horizon)
    reference = monitoring_utility(world, engine, db, rng=0, shards=1, backend="serial")
    records = []
    for name in backends:
        with ensure_backend(name) as backend:
            for shards in shard_counts:
                start = time.perf_counter()
                report = monitoring_utility(
                    world, engine, db, rng=0, shards=shards, backend=backend
                )
                seconds = time.perf_counter() - start
                records.append(
                    {
                        "metric": "e1_monitoring_utility",
                        "backend": name,
                        "shards": shards,
                        "seconds": round(seconds, 6),
                        "releases_per_sec": round(len(db) / seconds, 1),
                        "matches_serial": report == reference,
                    }
                )
    return records


def pool_vs_process(
    rounds: int = 5,
    shards: int = 4,
    size: int = 12,
    n_users: int = N_USERS,
    horizon: int = HORIZON,
) -> dict:
    """Repeated-round sweep timing ``pool`` against ``process``.

    Each backend scores ``rounds`` full sharded E1 metrics through one
    backend instance.  ``process`` spins up a fresh executor per metric
    call; ``pool`` forks its workers once and its workers resolve the
    engine's spec hash against their local cache after the first task —
    the repeated-round shape where the long-lived pool is designed to win.
    """
    world, db, engine = _workload(size, n_users, horizon)
    timings = {}
    for name in ("process", "pool"):
        with ensure_backend(name) as backend:
            start = time.perf_counter()
            for round_index in range(rounds):
                monitoring_utility(
                    world, engine, db, rng=round_index, shards=shards, backend=backend
                )
            timings[name] = time.perf_counter() - start
    return {
        "rounds": rounds,
        "shards": shards,
        "releases_per_round": len(db),
        "process_seconds": round(timings["process"], 6),
        "pool_seconds": round(timings["pool"], 6),
        "pool_speedup": round(timings["process"] / timings["pool"], 3),
    }


def distributed_eval_block(smoke: bool) -> dict:
    """The E16 payload (`sweep` + `pool_vs_process`) at either size.

    The single source of truth for both artifacts: ``run_bench.py`` embeds
    this block in ``BENCH_eval.json`` and ``main`` below writes it
    standalone, so the two always measure the same workload.
    """
    if smoke:
        return {
            "sweep": eval_sweep_records(
                backends=("serial", "thread", "pool"),
                shard_counts=(1, 2),
                **SMOKE_WORKLOAD,
            ),
            "pool_vs_process": pool_vs_process(rounds=3, shards=2, **SMOKE_WORKLOAD),
        }
    return {"sweep": eval_sweep_records(), "pool_vs_process": pool_vs_process()}


# ----------------------------------------------------------------------
# pytest-benchmark micro view
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_distributed_eval(benchmark, backend, shards):
    world, db, engine = _workload()
    with ensure_backend(backend) as live:
        benchmark(
            monitoring_utility, world, engine, db, rng=0, shards=shards, backend=live
        )


def test_distributed_matches_serial():
    """Acceptance: every (backend, shards) pair scores identical reports."""
    world, db, engine = _workload(size=8, n_users=60, horizon=10)
    reference = monitoring_utility(world, engine, db, rng=3, shards=1, backend="serial")
    for backend in BACKENDS:
        with ensure_backend(backend) as live:
            for shards in SHARD_COUNTS:
                report = monitoring_utility(
                    world, engine, db, rng=3, shards=shards, backend=live
                )
                assert report == reference, (backend, shards)


def test_pool_beats_process():
    """Acceptance: the long-lived pool wins the repeated-round sweep."""
    result = pool_vs_process(rounds=4, shards=4, size=8, n_users=60, horizon=10)
    print(f"\nE16: pool {result['pool_seconds']}s vs process "
          f"{result['process_seconds']}s ({result['pool_speedup']}x)")
    assert result["pool_seconds"] < result["process_seconds"], result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized configuration")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_e16_distributed.json",
        help="where to write the JSON artifact (default: repo root)",
    )
    args = parser.parse_args(argv)
    block = distributed_eval_block(args.smoke)
    sweep, comparison = block["sweep"], block["pool_vs_process"]
    payload = {"config": "smoke" if args.smoke else "full", **block}
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    for record in sweep:
        print(
            f"E16: {record['backend']:<8} shards={record['shards']}"
            f"  {record['releases_per_sec']:>12,.0f} releases/s"
            f"  matches_serial={record['matches_serial']}"
        )
    print(
        f"E16: pool {comparison['pool_seconds']}s vs process "
        f"{comparison['process_seconds']}s over {comparison['rounds']} rounds "
        f"({comparison['pool_speedup']}x) -> {args.output}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
