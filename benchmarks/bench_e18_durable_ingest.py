"""E18 — durable ingest: store-backed overhead and out-of-core populations.

PR 6 put a SQLite/WAL :class:`~repro.store.TraceStore` under the server
(``docs/persistence.md``).  This benchmark answers the two questions that
decide whether anyone turns it on:

* **overhead** — a store-backed sharded run (every shard committed
  transactionally with its ``(shard, round)`` recovery marks) against the
  identical in-memory run, with the bit-identity check alongside the
  timing.  ``within_budget`` (durable ≤ ``OVERHEAD_BUDGET`` x in-memory at
  CI scale) is a CI acceptance.  Since PR 10 every commit transaction also
  maintains the query-accelerator summary tables
  (``repro.store.accelerator``: per-round occupancy, cell-pair flows, user
  bounds — roughly 3x the upserted rows), so the budget is 3.5x where the
  durability-only store sat at 1.4–1.6x; E22
  (``bench_e22_queries.py``) gates the >= 10x query speedup that
  maintenance buys.
* **out_of_core** — a population far too large for an in-memory
  ``TraceDB``: chunked synthetic releases streamed through a store-backed
  ``Server(out_of_core=True)`` with a totals-only ledger, recording
  throughput, on-disk size, and the resident-set growth that stays bounded
  because no release row is ever retained in memory.

``benchmarks/run_bench.py`` embeds the same block in ``BENCH_eval.json``;
running this file directly writes the standalone artifact CI uploads::

    PYTHONPATH=src python benchmarks/bench_e18_durable_ingest.py --smoke
    PYTHONPATH=src pytest benchmarks/bench_e18_durable_ingest.py -q
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.core.accounting import BudgetLedger
from repro.core.mechanisms.base import ReleaseBatch
from repro.engine import PrivacyEngine
from repro.geo.grid import GridWorld
from repro.mobility.synthetic import geolife_like
from repro.server.pipeline import Server, run_release_rounds_batched
from repro.store import TraceStore

#: Acceptance ceiling for durable-vs-memory ingest.  The store-backed run
#: pays for the SQLite transactions *and* (since PR 10) the in-transaction
#: accelerator summary maintenance the windowed query surface reads
#: (docs/queries.md) — measured ~2.8-3.2x at CI scale, vs 1.4-1.6x for the
#: durability-only store.
OVERHEAD_BUDGET = 3.5

#: CI-sized workloads shared by ``--smoke`` here and ``run_bench.py --smoke``.
#: The overhead workload must be large enough that the store's fixed open
#: cost does not swamp the per-row cost it is meant to measure.
SMOKE_OVERHEAD = {"size": 8, "n_users": 120, "horizon": 24}
FULL_OVERHEAD = {"size": 12, "n_users": 300, "horizon": 48}

SMOKE_OUT_OF_CORE = {"n_users": 200_000, "chunk_users": 50_000}
FULL_OUT_OF_CORE = {"n_users": 10_000_000, "chunk_users": 200_000}


def _rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def durable_overhead(
    size: int = 12, n_users: int = 300, horizon: int = 48,
    shards: int = 4, backend: str = "serial",
) -> dict:
    """One sharded run in memory vs the same run committing to a store.

    The durable run pays for the SQLite transactions *and* still builds the
    in-memory server state, so the ratio is a worst case for the store —
    out-of-core mode drops the in-memory copy entirely.
    """
    world = GridWorld(size, size)
    db = geolife_like(world, n_users=n_users, horizon=horizon, rng=1)
    engine = PrivacyEngine.from_spec(world, mechanism="P-LM", policy="G1", epsilon=1.0)

    start = time.perf_counter()
    memory_server = run_release_rounds_batched(
        world, db, engine, rng=0, shards=shards, backend=backend
    )
    memory_seconds = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="bench-e18-") as tmp:
        start = time.perf_counter()
        durable_server = run_release_rounds_batched(
            world, db, engine, rng=0, shards=shards, backend=backend,
            store=str(Path(tmp) / "run.sqlite"),
        )
        durable_seconds = time.perf_counter() - start

    matches = list(durable_server.released_db.checkins()) == list(
        memory_server.released_db.checkins()
    ) and all(
        durable_server.ledger.spent(user) == memory_server.ledger.spent(user)
        for user in db.users()
    )
    ratio = durable_seconds / memory_seconds
    return {
        "backend": backend,
        "shards": shards,
        "releases": len(db),
        "memory_seconds": round(memory_seconds, 6),
        "durable_seconds": round(durable_seconds, 6),
        "memory_releases_per_sec": round(len(db) / memory_seconds, 1),
        "durable_releases_per_sec": round(len(db) / durable_seconds, 1),
        "overhead_ratio": round(ratio, 3),
        "within_budget": ratio <= OVERHEAD_BUDGET,
        "matches_memory": matches,
    }


def out_of_core_ingest(n_users: int = 10_000_000, chunk_users: int = 200_000) -> dict:
    """Stream a synthetic population through a store-backed out-of-core server.

    One release per user, ingested in ``chunk_users``-sized shards: each
    chunk is committed transactionally and then dropped, the ledger keeps
    totals only (``record_entries=False``), and the released "DB" is the
    store itself.  Resident memory is therefore one chunk's arrays plus
    the O(n_users) per-user ledger totals — independent of how many
    *rounds* are ingested, which is the bound an in-memory ``TraceDB``
    (O(rows)) cannot offer.  At 10M users the ledger dict is the dominant
    term (~100 bytes/user).
    """
    world = GridWorld(64, 64)
    rng = np.random.default_rng(7)
    rss_before = _rss_mb()
    with tempfile.TemporaryDirectory(prefix="bench-e18-ooc-") as tmp:
        store = TraceStore(Path(tmp) / "population.sqlite")
        server = Server(
            world,
            ledger=BudgetLedger(record_entries=False),
            store=store,
            out_of_core=True,
        )
        n_chunks = (n_users + chunk_users - 1) // chunk_users
        start = time.perf_counter()
        for shard in range(n_chunks):
            low = shard * chunk_users
            high = min(low + chunk_users, n_users)
            users = np.arange(low, high, dtype=np.int64)
            count = len(users)
            cells = rng.integers(0, world.n_cells, size=count, dtype=np.int64)
            points = world.coords_array(cells) + rng.random((count, 2)) - 0.5
            batch = ReleaseBatch(
                points=points,
                exact=np.zeros(count, dtype=bool),
                epsilons=np.full(count, 1.0),
                cells=cells,
                mechanism="synthetic",
            )
            server.ingest_shard(users, np.zeros(count, dtype=np.int64), batch, shard=shard)
        seconds = time.perf_counter() - start
        rows = len(server.released_db)
        db_size_mb = store.file_size_bytes() / 1e6
        store.close()
    return {
        "rows": rows,
        "chunk_users": chunk_users,
        "chunks": n_chunks,
        "seconds": round(seconds, 3),
        "rows_per_sec": round(rows / seconds, 1),
        "db_size_mb": round(db_size_mb, 1),
        "rss_before_mb": round(rss_before, 1),
        "rss_peak_mb": round(_rss_mb(), 1),
        "rss_growth_mb": round(_rss_mb() - rss_before, 1),
    }


def durable_ingest_block(smoke: bool) -> dict:
    """The E18 payload (`overhead` + `out_of_core`) at either size.

    Single source of truth for both artifacts: ``run_bench.py`` embeds this
    block in ``BENCH_eval.json`` and ``main`` below writes it standalone.
    """
    if smoke:
        return {
            "overhead": durable_overhead(**SMOKE_OVERHEAD),
            "out_of_core": out_of_core_ingest(**SMOKE_OUT_OF_CORE),
        }
    return {
        "overhead": durable_overhead(**FULL_OVERHEAD),
        "out_of_core": out_of_core_ingest(**FULL_OUT_OF_CORE),
    }


# ----------------------------------------------------------------------
# CI acceptance
# ----------------------------------------------------------------------
def test_durable_overhead_within_budget():
    """Acceptance: store-backed run ≤ the overhead budget, and bit-identical."""
    result = durable_overhead(**SMOKE_OVERHEAD)
    print(
        f"\nE18: durable {result['durable_seconds']}s vs memory "
        f"{result['memory_seconds']}s ({result['overhead_ratio']}x)"
    )
    assert result["matches_memory"], result
    assert result["within_budget"], result


def test_out_of_core_rss_stays_bounded():
    """Acceptance: ingest ≫ chunk-size rows with sub-chunk memory growth."""
    result = out_of_core_ingest(n_users=150_000, chunk_users=25_000)
    print(f"\nE18: {result['rows']:,} rows, rss growth {result['rss_growth_mb']}MB")
    assert result["rows"] == 150_000
    # An in-memory TraceDB of 150k check-ins costs tens of MB in dict/object
    # overhead alone; the out-of-core path must stay near one chunk's arrays.
    assert result["rss_growth_mb"] < 120.0, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized configuration")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_e18_durable.json",
        help="where to write the JSON artifact (default: repo root)",
    )
    args = parser.parse_args(argv)
    block = durable_ingest_block(args.smoke)
    payload = {"config": "smoke" if args.smoke else "full", **block}
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    overhead = block["overhead"]
    print(
        f"E18: durable {overhead['durable_releases_per_sec']:,.0f} releases/s vs "
        f"memory {overhead['memory_releases_per_sec']:,.0f} releases/s "
        f"({overhead['overhead_ratio']}x, matches={overhead['matches_memory']})"
    )
    ooc = block["out_of_core"]
    print(
        f"E18: out-of-core {ooc['rows']:,} rows at {ooc['rows_per_sec']:,.0f} rows/s, "
        f"{ooc['db_size_mb']}MB on disk, rss growth {ooc['rss_growth_mb']}MB "
        f"-> {args.output}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
