"""E20 — rpc scale-out: socket-backend throughput, pool parity, chaos smoke.

PR 8 added the socket ``rpc`` backend (``repro.engine.rpc``): worker
*processes* behind length-prefixed pickle frames, with deterministic retry
of shards whose worker dies.  This benchmark answers the three questions
that decide whether the cluster seam earns its keep:

* **sweep** — release-round throughput across (worker count x shard count),
  every cell checked bit-identical against the 1-shard serial reference
  (the E8 matrix, recorded as JSON).
* **rpc_vs_pool** — the localhost parity claim: the same repeated-round
  workload through a warm ``pool`` and a warm ``rpc`` cluster.  On one
  machine rpc pays sockets and frame pickling for the privilege of
  surviving worker death, so the acceptance is parity within a budget
  (rpc >= 0.7x pool throughput), not a win.
* **chaos** — a torn-result worker crash injected mid-sweep
  (``--chaos torn-result``): the run must record at least one worker loss
  *and* still merge bit-identical to serial.

``benchmarks/run_bench.py`` embeds the same block in ``BENCH_eval.json``;
running this file directly writes the standalone artifact CI uploads::

    PYTHONPATH=src python benchmarks/bench_e20_rpc.py --smoke
    PYTHONPATH=src pytest benchmarks/bench_e20_rpc.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.mechanisms.base import ReleaseBatch
from repro.engine import PrivacyEngine, ensure_backend
from repro.engine.rpc import RpcBackend
from repro.engine.sharding import ShardPlan, _execute_shard, _flatten_task_rows, _shard_tasks
from repro.geo.grid import GridWorld
from repro.mobility.synthetic import geolife_like
from repro.server.pipeline import Server, run_release_rounds_batched

#: Localhost parity budget: a warm rpc cluster must deliver at least this
#: fraction of the warm pool's throughput on the same repeated-round sweep.
PARITY_BUDGET = 0.7

#: CI-sized workloads shared by ``--smoke`` here and ``run_bench.py --smoke``.
SMOKE_WORKLOAD = {"size": 6, "n_users": 16, "horizon": 10}
FULL_WORKLOAD = {"size": 10, "n_users": 60, "horizon": 36}

SMOKE_SWEEP = {"worker_counts": (1, 2), "shard_counts": (1, 4)}
FULL_SWEEP = {"worker_counts": (1, 2, 4), "shard_counts": (1, 2, 4, 8)}


def _workload(size: int, n_users: int, horizon: int):
    world = GridWorld(size, size)
    db = geolife_like(world, n_users=n_users, horizon=horizon, rng=1)
    engine = PrivacyEngine.from_spec(world, mechanism="P-LM", policy="G1", epsilon=1.0)
    return world, db, engine


def _state(server):
    checkins = sorted((c.time, c.user, c.cell) for c in server.released_db.checkins())
    ledger = {u: server.ledger.spent(u) for u in server.released_db.users()}
    return checkins, ledger


def rpc_sweep_records(
    size: int = 10,
    n_users: int = 60,
    horizon: int = 36,
    worker_counts=(1, 2, 4),
    shard_counts=(1, 2, 4, 8),
) -> list[dict]:
    """Release throughput per (workers, shards), each cell checked vs serial.

    One rpc cluster per worker count, reused across its shard counts: the
    spawn cost (a fresh interpreter importing numpy per worker) is paid
    once per row block, exactly how the E8 harness runs the same sweep.
    """
    world, db, engine = _workload(size, n_users, horizon)
    reference = run_release_rounds_batched(world, db, engine, rng=0, shards=1, backend="serial")
    want = _state(reference)
    records = []
    for workers in worker_counts:
        with RpcBackend(workers=workers, worker_timeout=120.0) as backend:
            for shards in shard_counts:
                start = time.perf_counter()
                server = run_release_rounds_batched(
                    world, db, engine, rng=0, shards=shards, backend=backend
                )
                seconds = time.perf_counter() - start
                records.append(
                    {
                        "backend": "rpc",
                        "workers": workers,
                        "shards": shards,
                        "seconds": round(seconds, 6),
                        "releases_per_sec": round(len(db) / seconds, 1),
                        "matches_serial": _state(server) == want,
                    }
                )
    return records


def rpc_vs_pool(
    rounds: int = 3,
    shards: int = 4,
    size: int = 10,
    n_users: int = 60,
    horizon: int = 36,
    workers: int = 2,
) -> dict:
    """Repeated-round release sweep through a warm pool vs a warm rpc cluster.

    Both backends get one untimed warm-up round (pool forks + caches the
    engine spec hash; rpc spawns workers and does the same), then ``rounds``
    timed rounds.  The recorded ratio is what the socket hop really costs
    once clusters are warm — the number the ``PARITY_BUDGET`` acceptance
    gates on.
    """
    world, db, engine = _workload(size, n_users, horizon)
    timings = {}
    for name, params in (("pool", {}), ("rpc", {"workers": workers, "worker_timeout": 120.0})):
        with ensure_backend(name, **params) as backend:
            run_release_rounds_batched(world, db, engine, rng=0, shards=shards, backend=backend)
            start = time.perf_counter()
            for round_index in range(rounds):
                run_release_rounds_batched(
                    world, db, engine, rng=round_index, shards=shards, backend=backend
                )
            timings[name] = time.perf_counter() - start
    ratio = timings["pool"] / timings["rpc"]
    return {
        "rounds": rounds,
        "shards": shards,
        "rpc_workers": workers,
        "releases_per_round": len(db),
        "pool_seconds": round(timings["pool"], 6),
        "rpc_seconds": round(timings["rpc"], 6),
        "rpc_vs_pool": round(ratio, 3),
        "parity_budget": PARITY_BUDGET,
        "within_budget": ratio >= PARITY_BUDGET,
    }


def chaos_smoke(
    size: int = 10, n_users: int = 60, horizon: int = 36, shards: int = 4
) -> dict:
    """One torn-result worker crash mid-sweep; the merge must not notice.

    The first worker to finish a shard sends half its result frame and
    ``os._exit``\\ s (the ``--chaos torn-result`` injection from the
    fault-test suite).  The coordinator reschedules that shard, so the run
    records >= 1 worker loss and still matches the serial reference
    element-wise — the benchmark-shaped version of
    ``tests/test_rpc_failures.py``.
    """
    world, db, engine = _workload(size, n_users, horizon)
    reference = run_release_rounds_batched(world, db, engine, rng=0, shards=1, backend="serial")
    plan = ShardPlan.build(sorted(db.users()), shards, rng=0)
    tasks = _shard_tasks(engine, db, plan)
    losses: list[tuple[int, int]] = []
    server = Server(world)
    start = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="bench-e20-") as tmp:
        with RpcBackend(
            workers=2,
            worker_timeout=120.0,
            retry_backoff=0.01,
            worker_args=["--chaos", "torn-result", "--chaos-marker", str(Path(tmp) / "torn")],
        ) as backend:
            for index, (points, exact, epsilons, mechanism) in backend.run_unordered(
                _execute_shard,
                tasks,
                on_worker_lost=lambda index, attempt: losses.append((index, attempt)),
            ):
                users_rows, times_rows, cells_rows = _flatten_task_rows(tasks[index])
                server.ingest_shard(
                    users_rows,
                    times_rows,
                    ReleaseBatch(
                        points=points,
                        exact=exact,
                        epsilons=epsilons,
                        cells=cells_rows,
                        mechanism=mechanism,
                    ),
                )
    seconds = time.perf_counter() - start
    return {
        "shards": shards,
        "seconds": round(seconds, 6),
        "worker_losses": len(losses),
        "matches_serial": _state(server) == _state(reference),
    }


def rpc_block(smoke: bool) -> dict:
    """The E20 payload (`sweep` + `rpc_vs_pool` + `chaos`) at either size.

    Single source of truth for both artifacts: ``run_bench.py`` embeds this
    block in ``BENCH_eval.json`` and ``main`` below writes it standalone.
    """
    workload = SMOKE_WORKLOAD if smoke else FULL_WORKLOAD
    sweep = SMOKE_SWEEP if smoke else FULL_SWEEP
    return {
        "sweep": rpc_sweep_records(**workload, **sweep),
        "rpc_vs_pool": rpc_vs_pool(**workload, rounds=8 if smoke else 3),
        "chaos": chaos_smoke(**workload),
    }


# ----------------------------------------------------------------------
# CI acceptance
# ----------------------------------------------------------------------
def test_rpc_sweep_matches_serial():
    """Acceptance: every (workers, shards) cell is bit-identical to serial."""
    records = rpc_sweep_records(**SMOKE_WORKLOAD, **SMOKE_SWEEP)
    for record in records:
        print(
            f"\nE20: workers={record['workers']} shards={record['shards']} "
            f"{record['releases_per_sec']:,.0f} releases/s "
            f"matches={record['matches_serial']}"
        )
        assert record["matches_serial"], record


def test_rpc_within_pool_parity_budget():
    """Acceptance: warm rpc delivers >= 0.7x warm pool throughput locally."""
    # Warm per-round timings are single-digit milliseconds at smoke scale;
    # several rounds keep one scheduler hiccup from deciding the gate.
    result = rpc_vs_pool(**SMOKE_WORKLOAD, rounds=8)
    print(
        f"\nE20: rpc {result['rpc_seconds']}s vs pool {result['pool_seconds']}s "
        f"({result['rpc_vs_pool']}x, budget {result['parity_budget']}x)"
    )
    assert result["within_budget"], result


def test_chaos_run_matches_serial_with_losses():
    """Acceptance: a mid-sweep worker crash is retried, output unchanged."""
    result = chaos_smoke(**SMOKE_WORKLOAD)
    print(
        f"\nE20: chaos run lost {result['worker_losses']} worker(s), "
        f"matches={result['matches_serial']}"
    )
    assert result["worker_losses"] >= 1, result
    assert result["matches_serial"], result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized configuration")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_e20_rpc.json",
        help="where to write the JSON artifact (default: repo root)",
    )
    args = parser.parse_args(argv)
    block = rpc_block(args.smoke)
    payload = {"config": "smoke" if args.smoke else "full", **block}
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    for record in block["sweep"]:
        print(
            f"E20: workers={record['workers']} shards={record['shards']}"
            f"  {record['releases_per_sec']:>10,.0f} releases/s"
            f"  matches_serial={record['matches_serial']}"
        )
    versus = block["rpc_vs_pool"]
    print(
        f"E20: rpc {versus['rpc_seconds']}s vs pool {versus['pool_seconds']}s "
        f"over {versus['rounds']} rounds ({versus['rpc_vs_pool']}x pool, "
        f"within_budget={versus['within_budget']})"
    )
    chaos = block["chaos"]
    print(
        f"E20: chaos lost {chaos['worker_losses']} worker(s), "
        f"matches_serial={chaos['matches_serial']} -> {args.output}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
