"""E9 — ablation: practical mechanisms vs the LP-optimal baseline.

DESIGN.md calls out two design choices worth quantifying: calibrating noise
to the component's edge geometry (P-LM vs P-PIM) and choosing continuous vs
discrete output (P-PIM vs graph-exponential).  The LP-optimal discrete
mechanism gives the yardstick: its expected error is provably minimal, so
each row's ``optimality_gap`` shows how much utility each practical
mechanism leaves on the table — on the isotropic G1 policy and on a
corridor policy with a maximally anisotropic hull.
"""

from conftest import emit

from repro.experiments.harness import run_mechanism_ablation


def test_bench_e9_mechanism_ablation(benchmark, bench_config):
    table = benchmark.pedantic(
        run_mechanism_ablation,
        kwargs={"config": bench_config, "epsilon": 1.0, "ablation_world_size": 6},
        rounds=1,
        iterations=1,
    )
    emit(table)
    for policy_table in table.group_by("policy").values():
        errors = dict(zip(policy_table.column("mechanism"), policy_table.column("mean_empirical_error")))
        # The LP optimum is (statistically) the floor.
        assert errors["Optimal-LP"] <= min(errors["P-LM"], errors["P-PIM"]) + 0.15
    # Anisotropy is where hull-aware mechanisms pay off.
    corridor = table.where(policy="corridor")
    errors = dict(zip(corridor.column("mechanism"), corridor.column("mean_empirical_error")))
    assert errors["P-PIM"] < errors["P-LM"]
