"""E14 — evaluation-layer throughput: batched vs scalar E1/E4 runners.

PR 2's acceptance bar: at the default ``ExperimentConfig`` the batched
evaluation layer must run the E1 (monitoring utility) and E4 (adversary
error) sweeps >= 5x faster than the scalar per-release reference loops the
seed shipped with.  The scalar baselines below reproduce the seed's harness
loops verbatim via the metrics' ``batched=False`` reference paths, and both
paths consume identical seeded RNG streams (see
``tests/test_eval_batched.py`` for the element-wise equivalence proof).
"""

import time

from repro.adversary.metrics import adversary_error, utility_error
from repro.epidemic.monitor import monitoring_utility
from repro.experiments.configs import ExperimentConfig, build_mechanism, build_policy
from repro.experiments.harness import _dataset, run_adversary_error, run_monitoring_utility

SPEEDUP_FLOOR = 5.0


def _scalar_e1(config: ExperimentConfig) -> None:
    """The seed's E1 loop: scalar releases, Counter-loop flow aggregation."""
    world = config.make_world()
    db = _dataset(config, world)
    rng = config.rng()
    for policy_name in config.policies:
        policy = build_policy(policy_name, world)
        for mechanism_name in config.mechanisms:
            for epsilon in config.epsilons:
                mechanism = build_mechanism(mechanism_name, world, policy, epsilon)
                monitoring_utility(
                    world,
                    mechanism,
                    db,
                    block_rows=config.monitor_block[0],
                    block_cols=config.monitor_block[1],
                    rng=rng,
                    batched=False,
                )


def _scalar_e4(config: ExperimentConfig) -> None:
    """The seed's E4 loop: per-release attacker estimates and utility draws."""
    world = config.make_world()
    rng = config.rng()
    sample_size = min(20, world.n_cells)
    true_cells = rng.choice(world.n_cells, size=sample_size, replace=False).tolist()
    for policy_name in config.policies:
        policy = build_policy(policy_name, world)
        for mechanism_name in config.mechanisms:
            for epsilon in config.epsilons:
                mechanism = build_mechanism(mechanism_name, world, policy, epsilon)
                adversary_error(
                    world, mechanism, true_cells, rng=rng,
                    trials_per_cell=config.trials, batched=False,
                )
                utility_error(
                    world, mechanism, true_cells, rng=rng,
                    trials_per_cell=config.trials, batched=False,
                )


def _measure(label: str, batched, scalar) -> float:
    config = ExperimentConfig()
    batched(config)  # warm caches (datasets, policies, distance matrices)
    start = time.perf_counter()
    batched(config)
    batched_seconds = time.perf_counter() - start
    start = time.perf_counter()
    scalar(config)
    scalar_seconds = time.perf_counter() - start
    speedup = scalar_seconds / batched_seconds
    print(
        f"\n{label}: scalar={scalar_seconds:.2f}s batched={batched_seconds:.2f}s "
        f"speedup={speedup:.1f}x"
    )
    return speedup


def test_e1_monitoring_speedup():
    """Acceptance: E1 at default config >= 5x over the scalar-loop baseline."""
    assert _measure("E14/E1", run_monitoring_utility, _scalar_e1) >= SPEEDUP_FLOOR


def test_e4_adversary_speedup():
    """Acceptance: E4 at default config >= 5x over the scalar-loop baseline."""
    assert _measure("E14/E4", run_adversary_error, _scalar_e4) >= SPEEDUP_FLOOR


def test_bench_e1_batched(benchmark):
    benchmark.pedantic(run_monitoring_utility, args=(ExperimentConfig(),), rounds=1, iterations=1)


def test_bench_e4_batched(benchmark):
    benchmark.pedantic(run_adversary_error, args=(ExperimentConfig(),), rounds=1, iterations=1)
