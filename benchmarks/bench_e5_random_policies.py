"""E5 — random policy graph explorer (demo Fig. 5, "Random Policy Graph").

Regenerates the size x density sweep: utility error and adversary error of
P-LM under Erdos-Renyi policies, the panel attendees use to explore the
privacy-utility trade-off.
"""

from conftest import emit

from repro.experiments.harness import run_random_policy_tradeoff


def test_bench_e5_random_policies(benchmark, bench_config):
    table = benchmark.pedantic(
        run_random_policy_tradeoff,
        kwargs={
            "config": bench_config,
            "sizes": (20, 50),
            "densities": (0.05, 0.1, 0.3, 0.8),
            "epsilon": 1.0,
        },
        rounds=1,
        iterations=1,
    )
    emit(table)
    # Every sampled policy yields a measurable trade-off point.  (Monotonicity
    # in density is not asserted: each cell samples a fresh random node set,
    # and a sparse draw containing one long edge can out-noise a dense one —
    # exactly the exploration the demo panel is for.)
    assert len(table) >= 6
    for row in table.to_dicts():
        assert row["n_edges"] > 0
        assert row["utility_error"] > 0
        assert row["adversary_error"] >= 0
