"""E2 — accuracy of transmission-model (R0) estimation (demo evaluation 1b).

Regenerates the "difference between R0 estimated over accurate locations and
the perturbed locations" series for every policy x mechanism x epsilon.
"""

from conftest import emit

from repro.experiments.harness import run_r0_estimation


def test_bench_e2_r0_estimation(benchmark, bench_config):
    table = benchmark.pedantic(run_r0_estimation, args=(bench_config,), rounds=1, iterations=1)
    emit(table)
    for row in table.to_dicts():
        assert row["r0_true"] > 0
        assert row["abs_error"] >= 0
