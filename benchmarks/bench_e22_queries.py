"""E22 — windowed query surface: accelerator reads vs full-table scans.

PR 10 added ``repro.query``: windowed analytics (contact rate, flow
matrices, top-k hot cells, per-user epsilon spend, trajectories) served
from the accelerator summary tables the store maintains inside every
shard-commit transaction (``repro.store.accelerator``), instead of a full
pass over ``releases``.  This benchmark answers the two questions that
decide whether the commit-time maintenance earns its keep:

* **scaling** — per-window cost across population sizes: the accelerator
  bundle (contact rate + flow matrix + top-k over one window, O(answer))
  against the naive ``repro.query.reference`` full scans (O(rows)), every
  size bit-checked identical across every query type before anything is
  timed.  The acceptance gates the headline: at the largest configured
  population, the accelerator bundle must be >= 10x cheaper.
* **maintenance** — the commits that pay for it: durable shard-ingest
  throughput with the summaries being maintained, for context against the
  E18 durable-ingest numbers.

``benchmarks/run_bench.py`` embeds the same block in ``BENCH_eval.json``;
running this file directly writes the standalone artifact CI uploads::

    PYTHONPATH=src python benchmarks/bench_e22_queries.py --smoke
    PYTHONPATH=src pytest benchmarks/bench_e22_queries.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.engine import PrivacyEngine
from repro.engine.sharding import ShardPlan, stream_shard_releases
from repro.geo.grid import GridWorld
from repro.mobility.synthetic import geolife_like
from repro.query import QueryEngine, Window, tumbling_windows
from repro.query import reference
from repro.server.pipeline import Server
from repro.store import TraceStore

#: Headline acceptance: the accelerator window bundle >= this factor
#: cheaper than the same answers from full scans at the largest population.
SPEEDUP_FLOOR = 10.0

#: CI-sized workloads shared by ``--smoke`` here and ``run_bench.py --smoke``.
SMOKE_WORKLOAD = {"size": 10, "horizon": 6, "shards": 8, "populations": (250, 1000, 4000)}
FULL_WORKLOAD = {
    "size": 16,
    "horizon": 6,
    "shards": 16,
    "populations": (10_000, 40_000, 100_000),
}

#: The accelerator bundle is sub-millisecond; average repeats per chunk and
#: take the best of several chunks so a GC pause right after the ingest
#: phase cannot masquerade as population-dependent query cost.  The full
#: scans are O(rows), so they get one run per chunk.
QUERY_REPEATS = 50
QUERY_CHUNKS = 5
SCAN_CHUNKS = 3


def _workload(size: int, n_users: int, horizon: int):
    world = GridWorld(size, size)
    db = geolife_like(world, n_users=n_users, horizon=horizon, rng=1)
    engine = PrivacyEngine.from_spec(world, mechanism="P-LM", policy="G1", epsilon=1.0)
    return world, db, engine


def _populate(world, db, engine, shards):
    """A ``:memory:`` store fed through the real shard-commit path (timed)."""
    plan = ShardPlan.build(sorted(db.users()), shards, rng=0)
    captured = [
        (plan.shard_of(int(users[0])), users, times, batch)
        for users, times, batch in stream_shard_releases(engine, db, plan)
    ]
    store = TraceStore(":memory:")
    server = Server(world, store=store)
    start = time.perf_counter()
    for shard, users, times, batch in captured:
        server.ingest_shard(users, times, batch, shard=shard)
    return store, time.perf_counter() - start


def _true_resolver(db):
    lookup = {
        (checkin.user, checkin.time): checkin.cell
        for user in db.users()
        for checkin in db.user_history(user)
    }

    def resolve(users, times):
        return np.array(
            [lookup[(int(u), int(t))] for u, t in zip(users, times)], dtype=np.int64
        )

    return resolve


def _bit_check(engine_q: QueryEngine, store, world, db, horizon) -> bool:
    """Every query type equals its full-scan reference, both kinds."""
    resolve = _true_resolver(db)
    users = sorted(store.users())[:3]
    for window in tumbling_windows(0, horizon - 1, max(horizon // 2, 1)):
        for kind, resolver in (("observed", None), ("true", resolve)):
            if engine_q.contact_rate(window, kind=kind) != reference.full_scan_contact_rate(
                store, window, kind=kind, true_resolver=resolver
            ):
                return False
            if engine_q.flow_matrix(window, kind=kind) != reference.full_scan_flow_matrix(
                store, window, world, kind=kind, true_resolver=resolver
            ):
                return False
        if engine_q.top_cells(window, 10) != reference.full_scan_top_cells(
            store, window, 10
        ):
            return False
    for user in users:
        full = Window(0, horizon - 1)
        if engine_q.epsilon_spent(user, full) != reference.full_scan_epsilon_spent(
            store, user, full
        ):
            return False
        if engine_q.trajectory(user) != reference.full_scan_trajectory(store, user):
            return False
    return True


def _bundle(engine_q: QueryEngine, window: Window) -> None:
    """The timed accelerator bundle: one window's worth of analytics."""
    engine_q.contact_rate(window)
    engine_q.flow_matrix(window)
    engine_q.top_cells(window, 10)


def _scan_bundle(store, window: Window, world) -> None:
    """The same answers a reader without the accelerator computes."""
    reference.full_scan_contact_rate(store, window)
    reference.full_scan_flow_matrix(store, window, world)
    reference.full_scan_top_cells(store, window, 10)


def query_scaling_records(
    size: int = 16,
    horizon: int = 6,
    shards: int = 16,
    populations=(10_000, 40_000, 100_000),
    query_repeats: int = QUERY_REPEATS,
) -> list[dict]:
    """Accelerator window bundle vs full-scan bundle per population size.

    The full-scan side is what a reader without the summary tables pays per
    question: one O(rows) pass over ``releases`` per answer.  The
    accelerator side reads the per-(window, cell) summaries — O(answer),
    independent of the stored population.  Both are checked bit-identical
    across every query type before anything is timed.
    """
    records = []
    for n_users in populations:
        world, db, engine = _workload(size, n_users, horizon)
        store, ingest_seconds = _populate(world, db, engine, shards)
        engine_q = QueryEngine(store, world=world)
        window = tumbling_windows(0, horizon - 1, max(horizon // 2, 1))[-1]

        matches = _bit_check(engine_q, store, world, db, horizon)

        chunk_times = []
        for _ in range(QUERY_CHUNKS):
            start = time.perf_counter()
            for _ in range(query_repeats):
                _bundle(engine_q, window)
            chunk_times.append((time.perf_counter() - start) / query_repeats)
        query_seconds = min(chunk_times)

        scan_times = []
        for _ in range(SCAN_CHUNKS):
            start = time.perf_counter()
            _scan_bundle(store, window, world)
            scan_times.append(time.perf_counter() - start)
        full_scan_seconds = min(scan_times)

        records.append(
            {
                "n_users": n_users,
                "rows": len(db),
                "shards": shards,
                "window": [window.start, window.end],
                "matches_reference": matches,
                "query_seconds": round(query_seconds, 9),
                "full_scan_seconds": round(full_scan_seconds, 6),
                "query_speedup": round(full_scan_seconds / max(query_seconds, 1e-12), 1),
                "ingest_seconds": round(ingest_seconds, 6),
                "ingest_rows_per_sec": round(len(db) / max(ingest_seconds, 1e-12), 1),
            }
        )
        store.close()
    return records


def query_surface_block(smoke: bool) -> dict:
    """The E22 payload at either size.

    Single source of truth for both artifacts: ``run_bench.py`` embeds this
    block in ``BENCH_eval.json`` and ``main`` below writes it standalone.
    """
    workload = SMOKE_WORKLOAD if smoke else FULL_WORKLOAD
    records = query_scaling_records(**workload)
    largest = records[-1]
    return {
        "scaling": records,
        "headline": {
            "n_users": largest["n_users"],
            "query_speedup": largest["query_speedup"],
            "speedup_floor": SPEEDUP_FLOOR,
            "within_floor": largest["query_speedup"] >= SPEEDUP_FLOOR,
            "matches_reference": all(r["matches_reference"] for r in records),
        },
    }


# ----------------------------------------------------------------------
# CI acceptance
# ----------------------------------------------------------------------
def test_query_answers_match_full_scans():
    """Acceptance: every size's accelerator answers equal the scans bitwise."""
    records = query_scaling_records(**SMOKE_WORKLOAD)
    for record in records:
        print(
            f"\nE22: n={record['n_users']} rows={record['rows']} "
            f"matches_reference={record['matches_reference']}"
        )
        assert record["matches_reference"], record


def test_accelerated_queries_beat_full_scans_by_floor():
    """Acceptance: the window bundle >= 10x cheaper at the largest size."""
    records = query_scaling_records(**SMOKE_WORKLOAD)
    largest = records[-1]
    print(
        f"\nE22: n={largest['n_users']} accel {largest['query_seconds']}s "
        f"vs scan {largest['full_scan_seconds']}s "
        f"({largest['query_speedup']}x, floor {SPEEDUP_FLOOR}x)"
    )
    assert largest["query_speedup"] >= SPEEDUP_FLOOR, largest


def test_query_cost_does_not_scale_with_population():
    """Acceptance: O(answer) cost stays near-flat while the scans grow.

    The summary tables saturate at (distinct cells x window rounds), so the
    accelerator bundle's cost must stay within an order of magnitude across
    a 16x population spread, while the full scans provably grow.
    """
    records = query_scaling_records(**SMOKE_WORKLOAD)
    smallest, largest = records[0], records[-1]
    ratio = largest["query_seconds"] / max(smallest["query_seconds"], 1e-12)
    print(f"\nE22: accel bundle cost ratio largest/smallest = {ratio:.2f}")
    assert ratio < 10.0, records
    assert largest["full_scan_seconds"] > smallest["full_scan_seconds"], records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized configuration")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_e22_queries.json",
        help="where to write the JSON artifact (default: repo root)",
    )
    args = parser.parse_args(argv)
    block = query_surface_block(args.smoke)
    payload = {"config": "smoke" if args.smoke else "full", **block}
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    for record in block["scaling"]:
        print(
            f"E22: n={record['n_users']:>7,}"
            f"  accel {record['query_seconds'] * 1e3:>8.3f}ms/bundle"
            f"  scan {record['full_scan_seconds'] * 1e3:>9.1f}ms/bundle"
            f"  speedup {record['query_speedup']:>8,.0f}x"
            f"  ingest {record['ingest_rows_per_sec']:>10,.0f} rows/s"
            f"  matches_reference={record['matches_reference']}"
        )
    headline = block["headline"]
    print(
        f"E22: headline n={headline['n_users']:,} speedup "
        f"{headline['query_speedup']:,.0f}x (floor {headline['speedup_floor']}x, "
        f"within_floor={headline['within_floor']}) -> {args.output}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
