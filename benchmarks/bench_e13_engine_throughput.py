"""E13 — engine throughput: scalar vs batched releases/sec.

The PrivacyEngine's reason to exist is serving populations, so the metric
here is releases per second.  Each benchmark drives the same mechanism
through the scalar ``release`` loop and the vectorized ``release_batch``
call at growing batch sizes, on the standard pytest-benchmark harness (same
JSON shape as every other ``bench_e*`` script via ``--benchmark-json``).

``test_batched_speedup_at_10k`` pins the acceptance bar directly: at
n=10 000 cells the batched path must beat the scalar loop by >= 5x on at
least the planar-Laplace mechanism (in practice it clears 50x).
"""

import time

import numpy as np
import pytest

from repro.engine import PrivacyEngine
from repro.geo.grid import GridWorld

MECHANISMS = ["planar_laplace", "planar_isotropic", "graph_exponential"]
SIZES = [16, 32]
BATCH = 2048


def _engine(mechanism: str, size: int) -> PrivacyEngine:
    world = GridWorld(size, size)
    return PrivacyEngine.from_spec(world, mechanism=mechanism, policy="G1", epsilon=1.0)


def _cells(engine: PrivacyEngine, count: int) -> np.ndarray:
    return np.arange(count) % engine.world.n_cells


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_bench_release_scalar_loop(benchmark, mechanism, size):
    engine = _engine(mechanism, size)
    cells = _cells(engine, BATCH)
    rng = np.random.default_rng(0)

    def scalar_loop():
        return [engine.release(int(cell), rng=rng) for cell in cells]

    benchmark(scalar_loop)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_bench_release_batch(benchmark, mechanism, size):
    engine = _engine(mechanism, size)
    cells = _cells(engine, BATCH)
    rng = np.random.default_rng(0)
    benchmark(engine.release_batch, cells, rng)


@pytest.mark.parametrize("size", [16])
@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_bench_pdf_matrix(benchmark, mechanism, size):
    engine = _engine(mechanism, size)
    points = np.random.default_rng(1).uniform(0.0, float(size), size=(256, 2))
    benchmark(engine.pdf_matrix, points)


def test_batched_speedup_at_10k():
    """Acceptance: >= 5x releases/sec for the batched path at n=10k cells."""
    engine = _engine("planar_laplace", 32)
    cells = _cells(engine, 10_000)

    rng = np.random.default_rng(0)
    start = time.perf_counter()
    engine.release_batch(cells, rng)
    batched_seconds = time.perf_counter() - start

    rng = np.random.default_rng(0)
    start = time.perf_counter()
    for cell in cells:
        engine.release(int(cell), rng=rng)
    scalar_seconds = time.perf_counter() - start

    speedup = scalar_seconds / batched_seconds
    print(
        f"\nE13: n=10000 planar_laplace scalar={10_000 / scalar_seconds:,.0f}/s "
        f"batched={10_000 / batched_seconds:,.0f}/s speedup={speedup:.1f}x"
    )
    assert speedup >= 5.0
