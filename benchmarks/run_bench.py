#!/usr/bin/env python
"""Time every experiment entry point and write ``BENCH_eval.json``.

Each ``bench_eN_*.py`` in this directory wraps one experiment runner from
``repro.experiments.harness`` in the pytest-benchmark harness; this script
times the same entry points directly (one wall-clock run each, no pytest
overhead) and records them as one JSON artifact so CI and perf PRs can diff
evaluation-layer timings.

The artifact has four blocks (schema documented in ``docs/benchmarks.md``)::

    {
      "config": "full" | "smoke",
      "timings": {"e1_monitoring_utility": 0.061, ...},   # seconds per runner
      "sharded": [                                        # E15 sweep
        {"backend": "process", "shards": 4, "seconds": 0.21,
         "releases_per_sec": 34000.0, "matches_serial": true,
         "eval_seconds": 0.18, "eval_releases_per_sec": 39000.0,
         "eval_matches_serial": true},
        ...
      ],
      "distributed_eval": {                               # E16
        "sweep": [{"metric": "e1_monitoring_utility", "backend": "pool",
                   "shards": 4, "seconds": 0.12,
                   "releases_per_sec": 51000.0, "matches_serial": true}, ...],
        "pool_vs_process": {"rounds": 5, "shards": 4,
                            "process_seconds": 1.4, "pool_seconds": 0.6,
                            "pool_speedup": 2.3, ...}
      },
      "epidemic_eval": {                                  # E17
        "sweep": [{"metric": "e2_r0_estimation_error", "backend": "pool",
                   "shards": 4, "seconds": 0.08,
                   "releases_per_sec": 24000.0, "matches_serial": true}, ...],
        "async_ingest": {"backend": "process", "shards": 4,
                         "sync_seconds": 0.9, "async_seconds": 0.7,
                         "async_speedup": 1.3, "async_matches_sync": true, ...}
      },
      "durable_ingest": {                                 # E18
        "overhead": {"memory_seconds": 0.5, "durable_seconds": 0.6,
                     "overhead_ratio": 1.2, "within_budget": true,
                     "matches_memory": true, ...},
        "out_of_core": {"rows": 10000000, "rows_per_sec": 310000.0,
                        "db_size_mb": 760.2, "rss_peak_mb": 310.5,
                        "rss_growth_mb": 45.1, ...}
      },
      "fused_round": {                                    # E19
        "staged_vs_fused": {"staged_seconds": 0.79, "fused_seconds": 0.41,
                            "speedup": 1.9, "meets_target": true,
                            "bit_exact": true, "rss_peak_mb": 265.5, ...},
        "mega_round": {"releases": 10000000, "releases_per_sec": 5300000.0,
                       "workspace_mb": 123.0, "rss_peak_mb": 410.2, ...}
      },
      "rpc_backend": {                                    # E20
        "sweep": [{"backend": "rpc", "workers": 2, "shards": 4,
                   "seconds": 0.02, "releases_per_sec": 11500.0,
                   "matches_serial": true}, ...],
        "rpc_vs_pool": {"rounds": 8, "shards": 4, "rpc_workers": 2,
                        "pool_seconds": 0.032, "rpc_seconds": 0.036,
                        "rpc_vs_pool": 0.879, "parity_budget": 0.7,
                        "within_budget": true, ...},
        "chaos": {"shards": 4, "worker_losses": 1, "matches_serial": true, ...}
      },
      "live_metrics": {                                   # E21
        "scaling": [{"n_users": 4000, "rows": 24000, "shards": 8,
                     "matches_batch": true, "live_query_seconds": 1.5e-07,
                     "batch_recompute_seconds": 0.034,
                     "query_speedup": 238468.0,
                     "maintenance_overhead": 1.48, ...}, ...],
        "headline": {"n_users": 4000, "query_speedup": 238468.0,
                     "speedup_floor": 10.0, "within_floor": true,
                     "matches_batch": true}
      },
      "query_surface": {                                  # E22
        "scaling": [{"n_users": 4000, "rows": 24000, "shards": 8,
                     "window": [3, 5], "matches_reference": true,
                     "query_seconds": 0.0048, "full_scan_seconds": 0.086,
                     "query_speedup": 17.8,
                     "ingest_seconds": 0.19,
                     "ingest_rows_per_sec": 124700.0}, ...],
        "headline": {"n_users": 4000, "query_speedup": 17.8,
                     "speedup_floor": 10.0, "within_floor": true,
                     "matches_reference": true}
      }
    }

``sharded`` is the E15 sharded-release-rounds sweep: one entry per
``(backend, shard count)`` pair with release *and* sharded-E1 evaluation
throughput, each with its determinism check against the 1-shard serial
baseline.  ``distributed_eval`` is the E16 distributed-evaluation sweep
(sharded metric throughput per backend, plus the repeated-round
pool-vs-process comparison); ``epidemic_eval`` is the E17 epidemic sweep
(sharded R0 / metapop-flow throughput per backend, plus the async-vs-sync
shard-ingestion comparison with its state-equality bit).  E13 (engine micro
throughput) and the per-release latency half of E8 remain pytest-benchmark
micro-benchmarks::

    PYTHONPATH=src pytest benchmarks/bench_e15_sharded_rounds.py --benchmark-only

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py                # full config
    PYTHONPATH=src python benchmarks/run_bench.py --smoke        # CI-sized
    PYTHONPATH=src python benchmarks/run_bench.py --only e1_monitoring_utility
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_e16_distributed_eval as bench_e16  # noqa: E402
import bench_e17_epidemic_eval as bench_e17  # noqa: E402
import bench_e18_durable_ingest as bench_e18  # noqa: E402
import bench_e19_fused_round as bench_e19  # noqa: E402
import bench_e20_rpc as bench_e20  # noqa: E402
import bench_e21_live_metrics as bench_e21  # noqa: E402
import bench_e22_queries as bench_e22  # noqa: E402

from repro.experiments import harness  # noqa: E402
from repro.experiments.configs import ExperimentConfig  # noqa: E402

#: benchmark entry point -> harness runner (the callable each bench_eN times).
ENTRY_POINTS = {
    "e1_monitoring_utility": harness.run_monitoring_utility,
    "e2_r0_estimation": harness.run_r0_estimation,
    "e3_contact_tracing": harness.run_contact_tracing,
    "e4_adversary_error": harness.run_adversary_error,
    "e5_random_policies": harness.run_random_policy_tradeoff,
    "e6_theorem_bounds": harness.run_theorem_bounds,
    "e7_policy_matrix": harness.run_policy_matrix,
    # E8's runner (harness.run_scalability) is measured by the dedicated
    # e15 sharded entry below, which also records per-combination metadata.
    "e9_mechanism_ablation": harness.run_mechanism_ablation,
    "e10_temporal_privacy": harness.run_temporal_privacy,
    "e11_metapop_forecast": harness.run_metapop_forecast,
    "e12_dataset_sensitivity": harness.run_dataset_sensitivity,
}

SHARDED_ENTRY = "e15_sharded_rounds"
DISTRIBUTED_ENTRY = "e16_distributed_eval"
EPIDEMIC_ENTRY = "e17_epidemic_eval"
DURABLE_ENTRY = "e18_durable_ingest"
FUSED_ENTRY = "e19_fused_round"
RPC_ENTRY = "e20_rpc_backend"
LIVE_ENTRY = "e21_live_metrics"
QUERY_ENTRY = "e22_query_surface"


def make_config(smoke: bool) -> ExperimentConfig:
    """Default config, or a CI-sized one that keeps every runner sub-second."""
    if not smoke:
        return ExperimentConfig()
    return ExperimentConfig(
        world_size=8,
        n_users=8,
        horizon=24,
        epsilons=(0.5, 2.0),
        policies=("G1", "Gb"),
        mechanisms=("P-LM",),
        trials=2,
        tracing_window=24,
        shard_counts=(1, 2),
        backends=("serial", "thread"),
    )


def run_sharded(config: ExperimentConfig) -> list[dict]:
    """The E15 sweep: sharded round throughput with backend/shard metadata.

    Reuses the E8 harness runner (so CLI, pytest-benchmark, and this script
    all measure the same code path) and re-keys its table into JSON-ready
    records.  Since the E8 runner grew eval-throughput columns, each record
    also carries ``eval_seconds`` / ``eval_releases_per_sec`` /
    ``eval_matches_serial`` for the sharded E1 metric over the same plan.
    """
    return harness.run_scalability(config).to_dicts()


def run_distributed_eval(smoke: bool) -> dict:
    """The E16 block: sharded-metric sweep plus the pool-vs-process rounds.

    Delegates to ``bench_e16_distributed_eval.distributed_eval_block`` so
    the pytest benchmarks, the standalone artifact, and this script all
    measure the same code on the same workload.
    """
    return bench_e16.distributed_eval_block(smoke)


def run_epidemic_eval(smoke: bool) -> dict:
    """The E17 block: epidemic-evaluator sweep plus async-vs-sync ingestion.

    Delegates to ``bench_e17_epidemic_eval.epidemic_eval_block`` — the same
    single-source-of-truth arrangement as E16.
    """
    return bench_e17.epidemic_eval_block(smoke)


def run_durable_ingest(smoke: bool) -> dict:
    """The E18 block: durable-vs-memory overhead plus out-of-core ingest.

    Delegates to ``bench_e18_durable_ingest.durable_ingest_block`` — same
    single-source-of-truth arrangement as E16/E17.
    """
    return bench_e18.durable_ingest_block(smoke)


def run_fused_round(smoke: bool) -> dict:
    """The E19 block: staged-vs-fused speedup plus the mega round.

    Delegates to ``bench_e19_fused_round.fused_round_block`` — same
    single-source-of-truth arrangement as E16/E17/E18.
    """
    return bench_e19.fused_round_block(smoke)


def run_rpc_backend(smoke: bool) -> dict:
    """The E20 block: rpc sweep, pool-parity timing, and the chaos smoke.

    Delegates to ``bench_e20_rpc.rpc_block`` — same single-source-of-truth
    arrangement as E16-E19.
    """
    return bench_e20.rpc_block(smoke)


def run_live_metrics(smoke: bool) -> dict:
    """The E21 block: live snapshot query cost vs batch recompute.

    Delegates to ``bench_e21_live_metrics.live_metrics_block`` — same
    single-source-of-truth arrangement as E16-E20.
    """
    return bench_e21.live_metrics_block(smoke)


def run_query_surface(smoke: bool) -> dict:
    """The E22 block: accelerator window queries vs full-table scans.

    Delegates to ``bench_e22_queries.query_surface_block`` — same
    single-source-of-truth arrangement as E16-E21.
    """
    return bench_e22.query_surface_block(smoke)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized configuration")
    parser.add_argument(
        "--only",
        action="append",
        choices=sorted(ENTRY_POINTS)
        + [SHARDED_ENTRY, DISTRIBUTED_ENTRY, EPIDEMIC_ENTRY, DURABLE_ENTRY, FUSED_ENTRY, RPC_ENTRY, LIVE_ENTRY, QUERY_ENTRY],
        help="run only this entry point (repeatable)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_eval.json",
        help="where to write the JSON artifact (default: repo root)",
    )
    args = parser.parse_args(argv)

    config = make_config(args.smoke)
    names = args.only or sorted(ENTRY_POINTS) + [
        SHARDED_ENTRY,
        DISTRIBUTED_ENTRY,
        EPIDEMIC_ENTRY,
        DURABLE_ENTRY,
        FUSED_ENTRY,
        RPC_ENTRY,
        LIVE_ENTRY,
        QUERY_ENTRY,
    ]
    payload: dict = {"config": "smoke" if args.smoke else "full", "timings": {}}
    for name in names:
        if name in (
            SHARDED_ENTRY,
            DISTRIBUTED_ENTRY,
            EPIDEMIC_ENTRY,
            DURABLE_ENTRY,
            FUSED_ENTRY,
            RPC_ENTRY,
            LIVE_ENTRY,
            QUERY_ENTRY,
        ):
            continue
        runner = ENTRY_POINTS[name]
        start = time.perf_counter()
        runner(config)
        payload["timings"][name] = round(time.perf_counter() - start, 6)
        print(f"{name:<28} {payload['timings'][name]:>10.3f}s")
    if SHARDED_ENTRY in names:
        start = time.perf_counter()
        payload["sharded"] = run_sharded(config)
        payload["timings"][SHARDED_ENTRY] = round(time.perf_counter() - start, 6)
        print(f"{SHARDED_ENTRY:<28} {payload['timings'][SHARDED_ENTRY]:>10.3f}s")
        for record in payload["sharded"]:
            print(
                f"  {record['backend']:<8} shards={record['shards']}"
                f"  {record['releases_per_sec']:>12,.0f} releases/s"
                f"  matches_serial={record['matches_serial']}"
                f"  eval {record['eval_releases_per_sec']:>12,.0f}/s"
                f"  eval_matches={record['eval_matches_serial']}"
            )
    if DISTRIBUTED_ENTRY in names:
        start = time.perf_counter()
        payload["distributed_eval"] = run_distributed_eval(args.smoke)
        payload["timings"][DISTRIBUTED_ENTRY] = round(time.perf_counter() - start, 6)
        print(f"{DISTRIBUTED_ENTRY:<28} {payload['timings'][DISTRIBUTED_ENTRY]:>10.3f}s")
        for record in payload["distributed_eval"]["sweep"]:
            print(
                f"  {record['backend']:<8} shards={record['shards']}"
                f"  {record['releases_per_sec']:>12,.0f} releases/s"
                f"  matches_serial={record['matches_serial']}"
            )
        comparison = payload["distributed_eval"]["pool_vs_process"]
        print(
            f"  pool {comparison['pool_seconds']}s vs process "
            f"{comparison['process_seconds']}s over {comparison['rounds']} rounds "
            f"({comparison['pool_speedup']}x)"
        )
    if EPIDEMIC_ENTRY in names:
        start = time.perf_counter()
        payload["epidemic_eval"] = run_epidemic_eval(args.smoke)
        payload["timings"][EPIDEMIC_ENTRY] = round(time.perf_counter() - start, 6)
        print(f"{EPIDEMIC_ENTRY:<28} {payload['timings'][EPIDEMIC_ENTRY]:>10.3f}s")
        for record in payload["epidemic_eval"]["sweep"]:
            print(
                f"  {record['metric']:<24} {record['backend']:<8} shards={record['shards']}"
                f"  {record['releases_per_sec']:>12,.0f} releases/s"
                f"  matches_serial={record['matches_serial']}"
            )
        ingest = payload["epidemic_eval"]["async_ingest"]
        print(
            f"  async ingest {ingest['async_seconds']}s vs sync "
            f"{ingest['sync_seconds']}s ({ingest['async_speedup']}x, "
            f"matches={ingest['async_matches_sync']})"
        )
    if DURABLE_ENTRY in names:
        start = time.perf_counter()
        payload["durable_ingest"] = run_durable_ingest(args.smoke)
        payload["timings"][DURABLE_ENTRY] = round(time.perf_counter() - start, 6)
        print(f"{DURABLE_ENTRY:<28} {payload['timings'][DURABLE_ENTRY]:>10.3f}s")
        overhead = payload["durable_ingest"]["overhead"]
        print(
            f"  durable {overhead['durable_releases_per_sec']:>12,.0f} releases/s vs "
            f"memory {overhead['memory_releases_per_sec']:>12,.0f} releases/s "
            f"({overhead['overhead_ratio']}x, matches={overhead['matches_memory']})"
        )
        ooc = payload["durable_ingest"]["out_of_core"]
        print(
            f"  out-of-core {ooc['rows']:,} rows at {ooc['rows_per_sec']:,.0f} rows/s, "
            f"{ooc['db_size_mb']}MB on disk, rss peak {ooc['rss_peak_mb']}MB "
            f"(growth {ooc['rss_growth_mb']}MB)"
        )
    if FUSED_ENTRY in names:
        start = time.perf_counter()
        payload["fused_round"] = run_fused_round(args.smoke)
        payload["timings"][FUSED_ENTRY] = round(time.perf_counter() - start, 6)
        print(f"{FUSED_ENTRY:<28} {payload['timings'][FUSED_ENTRY]:>10.3f}s")
        versus = payload["fused_round"]["staged_vs_fused"]
        print(
            f"  fused {versus['fused_releases_per_sec']:>12,.0f} releases/s vs "
            f"staged {versus['staged_releases_per_sec']:>12,.0f} releases/s "
            f"({versus['speedup']}x, bit_exact={versus['bit_exact']}, "
            f"rss peak {versus['rss_peak_mb']}MB)"
        )
        mega = payload["fused_round"]["mega_round"]
        print(
            f"  mega round {mega['releases']:,} releases at "
            f"{mega['releases_per_sec']:,.0f} releases/s, workspace "
            f"{mega['workspace_mb']}MB, rss peak {mega['rss_peak_mb']}MB"
        )
    if RPC_ENTRY in names:
        start = time.perf_counter()
        payload["rpc_backend"] = run_rpc_backend(args.smoke)
        payload["timings"][RPC_ENTRY] = round(time.perf_counter() - start, 6)
        print(f"{RPC_ENTRY:<28} {payload['timings'][RPC_ENTRY]:>10.3f}s")
        for record in payload["rpc_backend"]["sweep"]:
            print(
                f"  rpc workers={record['workers']} shards={record['shards']}"
                f"  {record['releases_per_sec']:>12,.0f} releases/s"
                f"  matches_serial={record['matches_serial']}"
            )
        versus = payload["rpc_backend"]["rpc_vs_pool"]
        print(
            f"  rpc {versus['rpc_seconds']}s vs pool {versus['pool_seconds']}s "
            f"over {versus['rounds']} rounds ({versus['rpc_vs_pool']}x pool, "
            f"within_budget={versus['within_budget']})"
        )
        chaos = payload["rpc_backend"]["chaos"]
        print(
            f"  chaos lost {chaos['worker_losses']} worker(s), "
            f"matches_serial={chaos['matches_serial']}"
        )
    if LIVE_ENTRY in names:
        start = time.perf_counter()
        payload["live_metrics"] = run_live_metrics(args.smoke)
        payload["timings"][LIVE_ENTRY] = round(time.perf_counter() - start, 6)
        print(f"{LIVE_ENTRY:<28} {payload['timings'][LIVE_ENTRY]:>10.3f}s")
        for record in payload["live_metrics"]["scaling"]:
            print(
                f"  n={record['n_users']:>7,}"
                f"  live {record['live_query_seconds'] * 1e6:>8.1f}us/query"
                f"  batch {record['batch_recompute_seconds']:>9.4f}s/query"
                f"  speedup {record['query_speedup']:>10,.0f}x"
                f"  matches_batch={record['matches_batch']}"
            )
        headline = payload["live_metrics"]["headline"]
        print(
            f"  headline n={headline['n_users']:,} speedup "
            f"{headline['query_speedup']:,.0f}x (floor {headline['speedup_floor']}x, "
            f"within_floor={headline['within_floor']})"
        )
    if QUERY_ENTRY in names:
        start = time.perf_counter()
        payload["query_surface"] = run_query_surface(args.smoke)
        payload["timings"][QUERY_ENTRY] = round(time.perf_counter() - start, 6)
        print(f"{QUERY_ENTRY:<28} {payload['timings'][QUERY_ENTRY]:>10.3f}s")
        for record in payload["query_surface"]["scaling"]:
            print(
                f"  n={record['n_users']:>7,}"
                f"  accel {record['query_seconds'] * 1e3:>8.3f}ms/bundle"
                f"  scan {record['full_scan_seconds'] * 1e3:>9.1f}ms/bundle"
                f"  speedup {record['query_speedup']:>8,.0f}x"
                f"  matches_reference={record['matches_reference']}"
            )
        headline = payload["query_surface"]["headline"]
        print(
            f"  headline n={headline['n_users']:,} speedup "
            f"{headline['query_speedup']:,.0f}x (floor {headline['speedup_floor']}x, "
            f"within_floor={headline['within_floor']})"
        )

    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    total = sum(payload["timings"].values())
    print(f"{'total':<28} {total:>10.3f}s  -> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
