#!/usr/bin/env python
"""Time every experiment entry point and write ``BENCH_eval.json``.

Each ``bench_eN_*.py`` in this directory wraps one experiment runner from
``repro.experiments.harness`` in the pytest-benchmark harness; this script
times the same entry points directly (one wall-clock run each, no pytest
overhead) and records ``{name: seconds}`` so CI and perf PRs can diff
evaluation-layer timings as one JSON artifact.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py                # full config
    PYTHONPATH=src python benchmarks/run_bench.py --smoke        # CI-sized
    PYTHONPATH=src python benchmarks/run_bench.py --only e1_monitoring_utility

E8 (per-release latency) and E13 (engine throughput) are micro-benchmarks
with no harness runner; run them through pytest-benchmark instead::

    PYTHONPATH=src pytest benchmarks/bench_e8_scalability.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments import harness  # noqa: E402
from repro.experiments.configs import ExperimentConfig  # noqa: E402

#: benchmark entry point -> harness runner (the callable each bench_eN times).
ENTRY_POINTS = {
    "e1_monitoring_utility": harness.run_monitoring_utility,
    "e2_r0_estimation": harness.run_r0_estimation,
    "e3_contact_tracing": harness.run_contact_tracing,
    "e4_adversary_error": harness.run_adversary_error,
    "e5_random_policies": harness.run_random_policy_tradeoff,
    "e6_theorem_bounds": harness.run_theorem_bounds,
    "e7_policy_matrix": harness.run_policy_matrix,
    "e9_mechanism_ablation": harness.run_mechanism_ablation,
    "e10_temporal_privacy": harness.run_temporal_privacy,
    "e11_metapop_forecast": harness.run_metapop_forecast,
    "e12_dataset_sensitivity": harness.run_dataset_sensitivity,
}


def make_config(smoke: bool) -> ExperimentConfig:
    """Default config, or a CI-sized one that keeps every runner sub-second."""
    if not smoke:
        return ExperimentConfig()
    return ExperimentConfig(
        world_size=8,
        n_users=8,
        horizon=24,
        epsilons=(0.5, 2.0),
        policies=("G1", "Gb"),
        mechanisms=("P-LM",),
        trials=2,
        tracing_window=24,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized configuration")
    parser.add_argument(
        "--only",
        action="append",
        choices=sorted(ENTRY_POINTS),
        help="run only this entry point (repeatable)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_eval.json",
        help="where to write the {name: seconds} JSON (default: repo root)",
    )
    args = parser.parse_args(argv)

    config = make_config(args.smoke)
    names = args.only or sorted(ENTRY_POINTS)
    timings: dict[str, float] = {}
    for name in names:
        runner = ENTRY_POINTS[name]
        start = time.perf_counter()
        runner(config)
        timings[name] = round(time.perf_counter() - start, 6)
        print(f"{name:<28} {timings[name]:>10.3f}s")

    args.output.write_text(json.dumps(timings, indent=2, sort_keys=True) + "\n")
    total = sum(timings.values())
    print(f"{'total':<28} {total:>10.3f}s  -> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
