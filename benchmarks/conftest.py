"""Shared configuration for the benchmark suite.

Each ``bench_eN_*.py`` regenerates one evaluation artifact of the paper (see
DESIGN.md's experiment index): the benchmarked callable *is* the experiment
runner, and the resulting table is printed so that
``pytest benchmarks/ --benchmark-only -s`` reproduces the demo's panels as
text.  The printed rows are also what EXPERIMENTS.md records.
"""

from __future__ import annotations

import pytest

from repro.experiments.configs import ExperimentConfig


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Laptop-scale configuration shared by all experiment benchmarks."""
    return ExperimentConfig(
        world_size=10,
        n_users=24,
        horizon=60,
        epsilons=(0.1, 0.5, 1.0, 2.0),
        policies=("G1", "Gb", "Ga", "G2"),
        mechanisms=("P-LM", "P-PIM"),
        trials=3,
        tracing_window=60,
        seed=2020,
    )


def emit(table) -> None:
    """Print a result table under the benchmark output."""
    print()
    print(table.pretty())
