"""E10 — extension: streaming release with delta-location sets and repair.

The PGLP report's temporal story (and [19]'s): as releases accumulate, the
adversary's feasible set shrinks; the policy must be restricted to it (and
repaired) every step.  This bench follows a Markov-mobile user for 30 steps
and reports, per delta: the mean location-set size, how often the true
location drifted out of the set (surrogate rate), repair activity, release
utility, and the tracking adversary's mean localisation error.
"""

from conftest import emit

from repro.experiments.harness import run_temporal_privacy


def test_bench_e10_temporal_privacy(benchmark, bench_config):
    table = benchmark.pedantic(
        run_temporal_privacy,
        kwargs={
            "config": bench_config,
            "epsilon": 1.0,
            "deltas": (0.0, 0.05, 0.2),
            "horizon": 30,
        },
        rounds=1,
        iterations=1,
    )
    emit(table)
    sizes = dict(zip(table.column("delta"), table.column("mean_set_size")))
    # delta = 0 keeps the whole support; larger deltas shrink the set.
    assert sizes[0.0] >= sizes[0.05] >= sizes[0.2]
    surrogates = dict(zip(table.column("delta"), table.column("surrogate_rate")))
    assert surrogates[0.0] == 0.0
