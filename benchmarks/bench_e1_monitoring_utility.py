"""E1 — location-monitoring utility vs epsilon (demo evaluation 1a).

Regenerates the utility panel of Fig. 5: mean Euclidean error, coarse-area
accuracy, and flow error for every policy x mechanism x epsilon combination,
on the Geolife-like workload.
"""

from conftest import emit

from repro.experiments.harness import run_monitoring_utility


def test_bench_e1_monitoring_utility(benchmark, bench_config):
    table = benchmark.pedantic(
        run_monitoring_utility, args=(bench_config,), rounds=1, iterations=1
    )
    emit(table)
    # Sanity: the paper's shape — more budget, less error, for every policy.
    for policy in bench_config.policies:
        for mechanism in bench_config.mechanisms:
            rows = table.where(policy=policy, mechanism=mechanism)
            errors = dict(zip(rows.column("epsilon"), rows.column("mean_euclidean_error")))
            assert errors[2.0] < errors[0.1]
