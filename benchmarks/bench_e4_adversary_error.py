"""E4 — empirical privacy as adversary inference error (demo evaluation 3a).

Regenerates the privacy panel: the Bayesian attacker's mean inference error
[Shokri et al.] next to the utility error, for every policy x mechanism x
epsilon — the privacy/utility trade-off the demo visualises.
"""

from conftest import emit

from repro.experiments.harness import run_adversary_error


def test_bench_e4_adversary_error(benchmark, bench_config):
    table = benchmark.pedantic(run_adversary_error, args=(bench_config,), rounds=1, iterations=1)
    emit(table)
    # Privacy falls as budget grows, for every policy under P-LM.
    for policy in bench_config.policies:
        rows = table.where(policy=policy, mechanism="P-LM")
        privacy = dict(zip(rows.column("epsilon"), rows.column("adversary_error")))
        assert privacy[0.1] >= privacy[2.0]
