"""E19 — fused release rounds: staged pipeline vs the workspace kernel path.

PR 7 added the kernel layer (``docs/scaling.md``): an array-namespace seam
under the mechanism kernels and
:meth:`~repro.engine.PrivacyEngine.release_round_fused`, which runs
release -> snap -> area -> flow coding through one preallocated
:class:`~repro.engine.RoundWorkspace` instead of materialising a fresh
array per stage.  This benchmark answers the two questions that decide
whether the fused path earns its keep:

* **staged_vs_fused** — best-of-``repeats`` wall time for the staged
  three-stage pipeline against the fused pass on the same seeded stream,
  with the element-wise identity check alongside the timing (the fused
  numpy path must be *bit-exact*, not just statistically equivalent).
  ``meets_target`` (fused ≥ 1.5x staged at CI scale) is a CI acceptance.
* **mega_round** — a 10M-release single-node round streamed through one
  shared workspace in population chunks, with flow coding fused in,
  recording releases/s, peak RSS, and the steady-state workspace footprint
  (buffers stop growing after the first chunk).

``benchmarks/run_bench.py`` embeds the same block in ``BENCH_eval.json``;
running this file directly writes the standalone artifact CI uploads::

    PYTHONPATH=src python benchmarks/bench_e19_fused_round.py --smoke
    PYTHONPATH=src pytest benchmarks/bench_e19_fused_round.py -q
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.core.xp import array_backend_available
from repro.engine import PrivacyEngine, RoundWorkspace
from repro.geo.grid import GridWorld

#: CI-sized workloads shared by ``--smoke`` here and ``run_bench.py --smoke``.
#: The speedup workload must be big enough that the fused path's savings —
#: allocator traffic and RAM streaming — dominate the per-call Python cost;
#: at small n both paths fit in cache and the ratio collapses toward 1.
SMOKE_SPEEDUP = {"size": 32, "n_releases": 1_000_000, "rounds": 4, "repeats": 3}
FULL_SPEEDUP = {"size": 32, "n_releases": 2_000_000, "rounds": 4, "repeats": 5}

SMOKE_MEGA = {"n_releases": 1_000_000, "chunk": 250_000}
FULL_MEGA = {"n_releases": 10_000_000, "chunk": 1_000_000}

BLOCK = 4  # coarse-area tiling (block_rows = block_cols) for the area stage


def _rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _staged_round(engine: PrivacyEngine, cells: np.ndarray, rng) -> tuple:
    """The three-stage reference pipeline the fused pass replaces."""
    batch = engine.release_batch(cells, rng=rng)
    snapped = engine.world.snap_batch(batch.points)
    areas = engine.world.area_of_batch(snapped, BLOCK, BLOCK)
    return batch, snapped, areas


def staged_vs_fused(
    size: int = 32, n_releases: int = 1_000_000, rounds: int = 4, repeats: int = 3
) -> dict:
    """Best-of-``repeats`` staged vs fused timing on identical seeded streams.

    Both paths replay the same generator seed, so the identity check is not
    a separate run: the fused outputs must equal the staged outputs
    element-wise before any timing is trusted.
    """
    world = GridWorld(size, size)
    engine = PrivacyEngine.from_spec(world, mechanism="P-LM", policy="G1", epsilon=1.0)
    cells = np.random.default_rng(0).integers(0, world.n_cells, size=n_releases)

    workspace = RoundWorkspace.for_population(n_releases)
    fused = engine.release_round_fused(
        cells, rng=np.random.default_rng(7), workspace=workspace,
        block_rows=BLOCK, block_cols=BLOCK,
    )
    batch, snapped, areas = _staged_round(engine, cells, np.random.default_rng(7))
    bit_exact = (
        np.array_equal(fused.points, batch.points)
        and np.array_equal(fused.snapped, snapped)
        and np.array_equal(fused.areas, areas)
    )

    best_staged = best_fused = float("inf")
    for _ in range(repeats):
        rng = np.random.default_rng(1)
        start = time.perf_counter()
        for _ in range(rounds):
            _staged_round(engine, cells, rng)
        best_staged = min(best_staged, time.perf_counter() - start)

        rng = np.random.default_rng(1)
        start = time.perf_counter()
        for _ in range(rounds):
            engine.release_round_fused(
                cells, rng=rng, workspace=workspace, block_rows=BLOCK, block_cols=BLOCK
            )
        best_fused = min(best_fused, time.perf_counter() - start)

    releases = n_releases * rounds
    speedup = best_staged / best_fused
    return {
        "grid": f"{size}x{size}",
        "releases_per_round": n_releases,
        "rounds": rounds,
        "repeats": repeats,
        "staged_seconds": round(best_staged, 6),
        "fused_seconds": round(best_fused, 6),
        "staged_releases_per_sec": round(releases / best_staged, 1),
        "fused_releases_per_sec": round(releases / best_fused, 1),
        "speedup": round(speedup, 3),
        "meets_target": speedup >= 1.5,
        "bit_exact": bit_exact,
        "workspace_mb": round(workspace.nbytes() / 1e6, 1),
        "rss_peak_mb": round(_rss_mb(), 1),
    }


def mega_round(n_releases: int = 10_000_000, chunk: int = 1_000_000) -> dict:
    """One 10M-release single-node round through a single shared workspace.

    The round streams in ``chunk``-sized population slices, each a fused
    release -> snap -> area -> flow-coding pass.  Every slice reuses the
    same :class:`RoundWorkspace`, so after the first slice the steady state
    allocates nothing and the workspace footprint stops growing — the
    number recorded as ``workspace_mb``.  Flow coding is exercised with two
    consecutive steps per synthetic user, so the fused flow codes are
    non-trivial rather than fully masked out.
    """
    world = GridWorld(64, 64)
    engine = PrivacyEngine.from_spec(world, mechanism="P-LM", policy="G1", epsilon=1.0)
    workspace = RoundWorkspace.for_population(chunk)
    rng = np.random.default_rng(11)
    cell_rng = np.random.default_rng(3)
    rss_before = _rss_mb()

    released = 0
    flows_coded = 0
    n_chunks = (n_releases + chunk - 1) // chunk
    start = time.perf_counter()
    for _ in range(n_chunks):
        count = min(chunk, n_releases - released)
        cells = cell_rng.integers(0, world.n_cells, size=count)
        users = np.arange(count) // 2  # two consecutive steps per user
        times = np.arange(count) % 2
        fused = engine.release_round_fused(
            cells, rng=rng, workspace=workspace,
            block_rows=BLOCK, block_cols=BLOCK, users=users, times=times,
        )
        released += len(fused)
        flows_coded += int(fused.flow_mask.sum())
    seconds = time.perf_counter() - start

    return {
        "releases": released,
        "chunk": chunk,
        "chunks": n_chunks,
        "flows_coded": flows_coded,
        "seconds": round(seconds, 3),
        "releases_per_sec": round(released / seconds, 1),
        "workspace_mb": round(workspace.nbytes() / 1e6, 1),
        "rounds_served": workspace.rounds_served,
        "rss_before_mb": round(rss_before, 1),
        "rss_peak_mb": round(_rss_mb(), 1),
        "rss_growth_mb": round(_rss_mb() - rss_before, 1),
    }


def fused_round_block(smoke: bool) -> dict:
    """The E19 payload (`staged_vs_fused` + `mega_round`) at either size.

    Single source of truth for both artifacts: ``run_bench.py`` embeds this
    block in ``BENCH_eval.json`` and ``main`` below writes it standalone.
    """
    if smoke:
        return {
            "staged_vs_fused": staged_vs_fused(**SMOKE_SPEEDUP),
            "mega_round": mega_round(**SMOKE_MEGA),
        }
    return {
        "staged_vs_fused": staged_vs_fused(**FULL_SPEEDUP),
        "mega_round": mega_round(**FULL_MEGA),
    }


# ----------------------------------------------------------------------
# CI acceptance
# ----------------------------------------------------------------------
def test_fused_speedup_at_least_1_5x():
    """Acceptance: fused ≥ 1.5x staged at CI scale, and bit-exact."""
    result = staged_vs_fused(**SMOKE_SPEEDUP)
    print(
        f"\nE19: fused {result['fused_seconds']}s vs staged "
        f"{result['staged_seconds']}s ({result['speedup']}x)"
    )
    assert result["bit_exact"], result
    assert result["meets_target"], result


def test_mega_round_completes_through_one_workspace():
    """Acceptance: a CI-scale mega round completes with a bounded workspace."""
    result = mega_round(n_releases=500_000, chunk=125_000)
    print(
        f"\nE19: {result['releases']:,} releases at "
        f"{result['releases_per_sec']:,.0f}/s, workspace {result['workspace_mb']}MB"
    )
    assert result["releases"] == 500_000
    assert result["rounds_served"] == result["chunks"]
    assert result["flows_coded"] > 0
    # The shared workspace is sized by the chunk, not the round: a few
    # named buffers over 125k rows is well under 32MB.
    assert result["workspace_mb"] < 32.0, result


def test_accelerator_backends_if_installed():
    """Distributional check on CuPy/torch when present; clean skip when not.

    The container image does not ship either accelerator, so in stock CI
    this test *skips* — no pip install, no failure.  On a machine that has
    one, the fused round must run end-to-end on it and land snapped cells
    whose distribution matches numpy's (the non-numpy path is
    distributionally, not bit-wise, equivalent).
    """
    import pytest

    installed = [name for name in ("cupy", "torch") if array_backend_available(name)]
    if not installed:
        pytest.skip("no accelerator array backend installed (expected in stock CI)")
    world = GridWorld(16, 16)
    cells = np.random.default_rng(2).integers(0, world.n_cells, size=20_000)
    reference = PrivacyEngine.from_spec(world, mechanism="P-LM", policy="G1", epsilon=1.0)
    expected = np.bincount(
        world.snap_batch(reference.release_batch(cells, rng=5).points),
        minlength=world.n_cells,
    )
    for name in installed:
        engine = PrivacyEngine.from_spec(
            world, mechanism="P-LM", policy="G1", epsilon=1.0, array_backend=name
        )
        fused = engine.release_round_fused(cells, rng=np.random.default_rng(5))
        counts = np.bincount(fused.snapped, minlength=world.n_cells)
        # Loose chi-square-style bound: same mechanism, same epsilon, so the
        # per-cell counts should agree within sampling noise.
        assert np.abs(counts - expected).mean() < 0.1 * expected.mean() + 5.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized configuration")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_e19_fused.json",
        help="where to write the JSON artifact (default: repo root)",
    )
    args = parser.parse_args(argv)
    block = fused_round_block(args.smoke)
    payload = {"config": "smoke" if args.smoke else "full", **block}
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    versus = block["staged_vs_fused"]
    print(
        f"E19: fused {versus['fused_releases_per_sec']:,.0f} releases/s vs "
        f"staged {versus['staged_releases_per_sec']:,.0f} releases/s "
        f"({versus['speedup']}x, bit_exact={versus['bit_exact']}, "
        f"rss {versus['rss_peak_mb']}MB)"
    )
    mega = block["mega_round"]
    print(
        f"E19: mega round {mega['releases']:,} releases at "
        f"{mega['releases_per_sec']:,.0f}/s through one {mega['workspace_mb']}MB "
        f"workspace, rss peak {mega['rss_peak_mb']}MB -> {args.output}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
