"""E6 — analytic verification of Theorems 2.1 / 2.2 (paper Fig. 2).

Regenerates the indistinguishability bound check: the maximal log density
ratio of {eps, G1}-P-LM over Geo-I pairs and of {eps, G2}-P-PIM over
location-set pairs, against the theorem's bound, per epsilon.
"""

from conftest import emit

from repro.experiments.harness import run_theorem_bounds


def test_bench_e6_theorem_bounds(benchmark, bench_config):
    table = benchmark.pedantic(
        run_theorem_bounds,
        kwargs={"config": bench_config, "n_outputs": 40, "n_pairs": 60},
        rounds=1,
        iterations=1,
    )
    emit(table)
    assert all(table.column("holds"))
