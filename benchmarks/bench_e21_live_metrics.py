"""E21 — live metric views: O(1) snapshot queries vs O(population) recompute.

PR 9 added ``repro.server.live_metrics``: per-round metric snapshots (E1
monitoring utility, E2 contact rate / R0, E11 flow matrices) maintained
incrementally by folding each shard commit as it lands, instead of
re-scanning the population per query.  This benchmark answers the two
questions that decide whether the incremental fold earns its keep:

* **scaling** — per-query cost across population sizes: a live
  ``metrics_at(round)`` lookup (O(1), a dict read of a frozen snapshot)
  against a fresh :func:`~repro.server.live_metrics.batch_recompute` pass
  (O(population)), every size checked bit-identical between the two.
  The acceptance gates the headline: at the largest configured
  population, the live query must be >= 10x cheaper.
* **maintenance** — what the fold costs where it *does* run, the commit
  path: total shard-ingest time with the views attached vs without, at
  the largest population.  O(delta) work per commit, so the overhead is
  a bounded constant factor, not a population-dependent one.

``benchmarks/run_bench.py`` embeds the same block in ``BENCH_eval.json``;
running this file directly writes the standalone artifact CI uploads::

    PYTHONPATH=src python benchmarks/bench_e21_live_metrics.py --smoke
    PYTHONPATH=src pytest benchmarks/bench_e21_live_metrics.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.engine import PrivacyEngine
from repro.engine.sharding import ShardPlan, stream_shard_releases
from repro.geo.grid import GridWorld
from repro.mobility.synthetic import geolife_like
from repro.server.live_metrics import batch_recompute, default_views, expected_coverage
from repro.server.pipeline import Server

#: Headline acceptance: live per-round query >= this factor cheaper than a
#: fresh batch recompute at the largest configured population.
SPEEDUP_FLOOR = 10.0

#: CI-sized workloads shared by ``--smoke`` here and ``run_bench.py --smoke``.
SMOKE_WORKLOAD = {"size": 10, "horizon": 6, "shards": 8, "populations": (250, 1000, 4000)}
FULL_WORKLOAD = {
    "size": 16,
    "horizon": 6,
    "shards": 16,
    "populations": (10_000, 40_000, 100_000),
}

#: metrics_at is sub-microsecond; average this many lookups per chunk and
#: take the best of several chunks, so one GC pause right after the heavy
#: ingest phase cannot masquerade as population-dependent query cost.
QUERY_REPEATS = 2000
QUERY_CHUNKS = 5


def _workload(size: int, n_users: int, horizon: int):
    world = GridWorld(size, size)
    db = geolife_like(world, n_users=n_users, horizon=horizon, rng=1)
    engine = PrivacyEngine.from_spec(world, mechanism="P-LM", policy="G1", epsilon=1.0)
    return world, db, engine


def _captured_shards(world, engine, db, plan):
    """Each shard's committed rows, released once up front (untimed)."""
    shards = []
    for users, times, batch in stream_shard_releases(engine, db, plan):
        shards.append((plan.shard_of(int(users[0])), users, times, batch))
    return shards


def _raw_rows(world, shards):
    users = np.concatenate([np.asarray(u, dtype=int) for _, u, _, _ in shards])
    times = np.concatenate([np.asarray(t, dtype=int) for _, _, t, _ in shards])
    points = np.concatenate([b.points for _, _, _, b in shards])
    true_cells = np.concatenate([np.asarray(b.cells, dtype=int) for _, _, _, b in shards])
    snapped = np.asarray(world.snap_batch(points), dtype=int)
    return users, times, points, true_cells, snapped


def _timed_ingest(world, db, plan, shards, live: bool):
    """Seconds to commit every captured shard, with or without the views."""
    server = Server(world)
    if live:
        server.attach_metrics(default_views(world), expected_coverage(plan, db))
    start = time.perf_counter()
    for shard, users, times, batch in shards:
        server.ingest_shard(users, times, batch, shard=shard)
    return time.perf_counter() - start, server


def live_scaling_records(
    size: int = 16,
    horizon: int = 6,
    shards: int = 16,
    populations=(10_000, 40_000, 100_000),
    query_repeats: int = QUERY_REPEATS,
) -> list[dict]:
    """Live query vs fresh batch recompute per population size.

    The batch side is what a reader without live views pays per question:
    one full O(population) pass over the raw release rows.  The live side
    is the O(1) frozen-snapshot lookup.  Both are checked bit-identical at
    every round before anything is timed against the acceptance.
    """
    records = []
    for n_users in populations:
        world, db, engine = _workload(size, n_users, horizon)
        plan = ShardPlan.build(sorted(db.users()), shards, rng=0)
        captured = _captured_shards(world, engine, db, plan)
        rows = _raw_rows(world, captured)
        views = default_views(world)

        plain_seconds, _ = _timed_ingest(world, db, plan, captured, live=False)
        live_seconds, server = _timed_ingest(world, db, plan, captured, live=True)

        reference = batch_recompute(views, plan, *rows)  # untimed, for equality
        rounds = server.metrics.rounds
        matches = all(dict(server.metrics_at(r)) == reference[r] for r in rounds)

        final = rounds[-1]
        start = time.perf_counter()
        batch_recompute(views, plan, *rows, upto=final)
        batch_query_seconds = time.perf_counter() - start

        chunk_times = []
        for _ in range(QUERY_CHUNKS):
            start = time.perf_counter()
            for _ in range(query_repeats):
                server.metrics_at(final)
            chunk_times.append((time.perf_counter() - start) / query_repeats)
        live_query_seconds = min(chunk_times)

        records.append(
            {
                "n_users": n_users,
                "rows": len(db),
                "shards": shards,
                "rounds": len(rounds),
                "matches_batch": matches,
                "live_query_seconds": round(live_query_seconds, 9),
                "batch_recompute_seconds": round(batch_query_seconds, 6),
                "query_speedup": round(batch_query_seconds / max(live_query_seconds, 1e-12), 1),
                "plain_ingest_seconds": round(plain_seconds, 6),
                "live_ingest_seconds": round(live_seconds, 6),
                "maintenance_overhead": round(live_seconds / max(plain_seconds, 1e-12), 2),
            }
        )
    return records


def live_metrics_block(smoke: bool) -> dict:
    """The E21 payload at either size.

    Single source of truth for both artifacts: ``run_bench.py`` embeds this
    block in ``BENCH_eval.json`` and ``main`` below writes it standalone.
    """
    workload = SMOKE_WORKLOAD if smoke else FULL_WORKLOAD
    records = live_scaling_records(**workload)
    largest = records[-1]
    return {
        "scaling": records,
        "headline": {
            "n_users": largest["n_users"],
            "query_speedup": largest["query_speedup"],
            "speedup_floor": SPEEDUP_FLOOR,
            "within_floor": largest["query_speedup"] >= SPEEDUP_FLOOR,
            "matches_batch": all(r["matches_batch"] for r in records),
        },
    }


# ----------------------------------------------------------------------
# CI acceptance
# ----------------------------------------------------------------------
def test_live_snapshots_match_batch_recompute():
    """Acceptance: every size's live values equal the recompute bitwise."""
    records = live_scaling_records(**SMOKE_WORKLOAD)
    for record in records:
        print(
            f"\nE21: n={record['n_users']} rows={record['rows']} "
            f"matches_batch={record['matches_batch']}"
        )
        assert record["matches_batch"], record


def test_live_query_beats_recompute_by_floor():
    """Acceptance: live per-round query >= 10x cheaper at the largest size."""
    records = live_scaling_records(**SMOKE_WORKLOAD)
    largest = records[-1]
    print(
        f"\nE21: n={largest['n_users']} live {largest['live_query_seconds']}s "
        f"vs batch {largest['batch_recompute_seconds']}s "
        f"({largest['query_speedup']}x, floor {SPEEDUP_FLOOR}x)"
    )
    assert largest["query_speedup"] >= SPEEDUP_FLOOR, largest


def test_live_query_cost_is_flat_across_population():
    """Acceptance: the O(1) lookup does not grow with the population.

    Timing a dict read is noisy, so the gate is loose: the largest
    population's per-query cost stays within an order of magnitude of the
    smallest's, while the batch pass provably grows with the rows.
    """
    records = live_scaling_records(**SMOKE_WORKLOAD)
    smallest, largest = records[0], records[-1]
    ratio = largest["live_query_seconds"] / max(smallest["live_query_seconds"], 1e-12)
    print(f"\nE21: live query cost ratio largest/smallest = {ratio:.2f}")
    assert ratio < 10.0, records
    assert largest["batch_recompute_seconds"] > smallest["batch_recompute_seconds"], records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized configuration")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_e21_live.json",
        help="where to write the JSON artifact (default: repo root)",
    )
    args = parser.parse_args(argv)
    block = live_metrics_block(args.smoke)
    payload = {"config": "smoke" if args.smoke else "full", **block}
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    for record in block["scaling"]:
        print(
            f"E21: n={record['n_users']:>7,}"
            f"  live {record['live_query_seconds'] * 1e6:>8.1f}us/query"
            f"  batch {record['batch_recompute_seconds']:>9.4f}s/query"
            f"  speedup {record['query_speedup']:>10,.0f}x"
            f"  overhead {record['maintenance_overhead']}x"
            f"  matches_batch={record['matches_batch']}"
        )
    headline = block["headline"]
    print(
        f"E21: headline n={headline['n_users']:,} speedup "
        f"{headline['query_speedup']:,.0f}x (floor {headline['speedup_floor']}x, "
        f"within_floor={headline['within_floor']}) -> {args.output}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
