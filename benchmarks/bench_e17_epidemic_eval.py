"""E17 — distributed epidemic evaluators and async shard ingestion.

PR 4 distributed the E1/E4 metrics (bench_e16); this benchmark covers the
remaining trace-level evaluators and the write-side overlap:

* sharded :func:`~repro.epidemic.analysis.r0_estimation_error` (epoch-keyed
  occupancy counters) and :func:`~repro.epidemic.monitor.perturbed_flows`
  (E11's metapop flow matrices) across shard counts and backends, each with
  the bit-identity determinism bit against the serial 1-shard baseline;
* synchronous vs **async** shard ingestion
  (:class:`~repro.server.pipeline.AsyncShardCommitter` behind
  ``run_release_rounds_batched(async_ingest=True)``): commits overlap
  release computation, and per-user server state must stay element-wise
  identical (``async_matches_sync`` is a CI acceptance).

``benchmarks/run_bench.py`` records the same sweep into ``BENCH_eval.json``;
running this file directly writes the standalone artifact CI uploads::

    PYTHONPATH=src python benchmarks/bench_e17_epidemic_eval.py --smoke
    PYTHONPATH=src pytest benchmarks/bench_e17_epidemic_eval.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import pytest

from repro.engine import PrivacyEngine, ensure_backend
from repro.epidemic.analysis import r0_estimation_error
from repro.epidemic.monitor import perturbed_flows
from repro.geo.grid import GridWorld
from repro.mobility.synthetic import geolife_like
from repro.server.pipeline import run_release_rounds_batched

SHARD_COUNTS = [1, 2, 4]
BACKENDS = ["serial", "thread", "process", "pool"]
N_USERS = 120
HORIZON = 16

#: CI-sized workload shared by ``--smoke`` here and ``run_bench.py --smoke``,
#: so both artifacts always measure the same configuration.
SMOKE_WORKLOAD = {"size": 8, "n_users": 30, "horizon": 10}


def _workload(size: int = 12, n_users: int = N_USERS, horizon: int = HORIZON):
    world = GridWorld(size, size)
    db = geolife_like(world, n_users=n_users, horizon=horizon, rng=1)
    engine = PrivacyEngine.from_spec(
        world, mechanism="planar_laplace", policy="G1", epsilon=1.0
    )
    return world, db, engine


def _metric_calls(world, db, engine):
    """The two timed evaluators, as (name, call(shards, backend)) pairs."""
    return [
        (
            "e2_r0_estimation_error",
            lambda shards, backend: r0_estimation_error(
                world, engine, db, p_transmit=0.3, gamma=0.1, rng=0,
                shards=shards, backend=backend,
            ),
        ),
        (
            "e11_perturbed_flows",
            lambda shards, backend: perturbed_flows(
                world, engine, db, 4, 4, rng=0, shards=shards, backend=backend
            ),
        ),
    ]


def epidemic_sweep_records(
    size: int = 12,
    n_users: int = N_USERS,
    horizon: int = HORIZON,
    backends=tuple(BACKENDS),
    shard_counts=tuple(SHARD_COUNTS),
) -> list[dict]:
    """Sharded epidemic-evaluator throughput per (metric, backend, shards).

    One backend instance is opened per backend name and reused across its
    shard counts and both metrics (the pool's worker-side engine cache warms
    once per sweep).  ``matches_serial`` compares each value bit-for-bit
    against the serial 1-shard baseline.
    """
    world, db, engine = _workload(size, n_users, horizon)
    records = []
    for name, call in _metric_calls(world, db, engine):
        reference = call(1, "serial")
        for backend_name in backends:
            with ensure_backend(backend_name) as backend:
                for shards in shard_counts:
                    start = time.perf_counter()
                    value = call(shards, backend)
                    seconds = time.perf_counter() - start
                    records.append(
                        {
                            "metric": name,
                            "backend": backend_name,
                            "shards": shards,
                            "seconds": round(seconds, 6),
                            "releases_per_sec": round(len(db) / seconds, 1),
                            "matches_serial": value == reference,
                        }
                    )
    return records


def async_vs_sync_ingest(
    shards: int = 4,
    size: int = 12,
    n_users: int = N_USERS,
    horizon: int = HORIZON,
    backend: str = "process",
) -> dict:
    """Sharded release run with synchronous vs async (overlapped) commits.

    Async ingestion moves :meth:`Server.ingest_shard` onto the bounded
    committer thread, so worker processes keep releasing while the main
    thread commits.  ``async_matches_sync`` asserts the element-wise
    per-user state contract alongside the timing.
    """
    world, db, engine = _workload(size, n_users, horizon)
    with ensure_backend(backend) as live:
        start = time.perf_counter()
        sync_server = run_release_rounds_batched(
            world, db, engine, rng=0, shards=shards, backend=live
        )
        sync_seconds = time.perf_counter() - start
        start = time.perf_counter()
        async_server = run_release_rounds_batched(
            world, db, engine, rng=0, shards=shards, backend=live, async_ingest=True
        )
        async_seconds = time.perf_counter() - start
    matches = list(async_server.released_db.checkins()) == list(
        sync_server.released_db.checkins()
    ) and all(
        async_server.ledger.spent(user) == sync_server.ledger.spent(user)
        for user in db.users()
    )
    return {
        "backend": backend,
        "shards": shards,
        "releases": len(db),
        "sync_seconds": round(sync_seconds, 6),
        "async_seconds": round(async_seconds, 6),
        "async_speedup": round(sync_seconds / async_seconds, 3),
        "async_matches_sync": matches,
    }


def epidemic_eval_block(smoke: bool) -> dict:
    """The E17 payload (`sweep` + `async_ingest`) at either size.

    The single source of truth for both artifacts: ``run_bench.py`` embeds
    this block in ``BENCH_eval.json`` and ``main`` below writes it
    standalone, so the two always measure the same workload.
    """
    if smoke:
        return {
            "sweep": epidemic_sweep_records(
                backends=("serial", "thread", "pool"),
                shard_counts=(1, 2),
                **SMOKE_WORKLOAD,
            ),
            "async_ingest": async_vs_sync_ingest(
                shards=2, backend="thread", **SMOKE_WORKLOAD
            ),
        }
    return {"sweep": epidemic_sweep_records(), "async_ingest": async_vs_sync_ingest()}


# ----------------------------------------------------------------------
# pytest-benchmark micro view
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_sharded_r0(benchmark, backend, shards):
    world, db, engine = _workload()
    with ensure_backend(backend) as live:
        benchmark(
            r0_estimation_error, world, engine, db, p_transmit=0.3, gamma=0.1,
            rng=0, shards=shards, backend=live,
        )


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_sharded_flows(benchmark, backend, shards):
    world, db, engine = _workload()
    with ensure_backend(backend) as live:
        benchmark(
            perturbed_flows, world, engine, db, 4, 4, rng=0,
            shards=shards, backend=live,
        )


def test_epidemic_matches_serial():
    """Acceptance: every (metric, backend, shards) cell is bit-identical."""
    records = epidemic_sweep_records(
        size=8, n_users=40, horizon=10,
        backends=tuple(BACKENDS), shard_counts=(1, 2, 4),
    )
    failures = [r for r in records if not r["matches_serial"]]
    assert not failures, failures


def test_async_ingest_matches_sync():
    """Acceptance: overlapped commits reproduce synchronous server state."""
    result = async_vs_sync_ingest(shards=4, size=8, n_users=40, horizon=10, backend="thread")
    print(
        f"\nE17: async {result['async_seconds']}s vs sync {result['sync_seconds']}s "
        f"({result['async_speedup']}x)"
    )
    assert result["async_matches_sync"], result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized configuration")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_e17_epidemic.json",
        help="where to write the JSON artifact (default: repo root)",
    )
    args = parser.parse_args(argv)
    block = epidemic_eval_block(args.smoke)
    payload = {"config": "smoke" if args.smoke else "full", **block}
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    for record in block["sweep"]:
        print(
            f"E17: {record['metric']:<24} {record['backend']:<8} shards={record['shards']}"
            f"  {record['releases_per_sec']:>12,.0f} releases/s"
            f"  matches_serial={record['matches_serial']}"
        )
    ingest = block["async_ingest"]
    print(
        f"E17: async ingest {ingest['async_seconds']}s vs sync {ingest['sync_seconds']}s "
        f"({ingest['async_speedup']}x, matches={ingest['async_matches_sync']}) "
        f"-> {args.output}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
