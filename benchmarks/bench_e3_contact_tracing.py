"""E3 — the contact-tracing procedure with dynamic policies (demo eval 2).

Regenerates the tracing comparison: precision/recall/F1 and communication +
privacy cost of dynamic-Gc re-sends versus the static perturbed-data
baseline, across epsilon.
"""

from conftest import emit

from repro.experiments.harness import run_contact_tracing


def test_bench_e3_contact_tracing(benchmark, bench_config):
    table = benchmark.pedantic(run_contact_tracing, args=(bench_config,), rounds=1, iterations=1)
    emit(table)
    # Headline claim: full tracing utility under the dynamic policy.
    for epsilon in bench_config.epsilons:
        dynamic = table.where(method="dynamic-Gc", epsilon=epsilon).to_dicts()[0]
        static = table.where(method="static", epsilon=epsilon).to_dicts()[0]
        assert dynamic["f1"] >= static["f1"]
        assert dynamic["recall"] == 1.0
