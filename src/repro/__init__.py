"""PANDA: Policy-aware Location Privacy for Epidemic Surveillance.

A full reproduction of the VLDB 2020 demo by Cao, Takagi, Xiao, Xiong and
Yoshikawa: PGLP (policy-graph location privacy) mechanisms, the policy
menagerie of the paper's figures, a mobility + adversary + epidemic substrate,
and the client/server surveillance pipeline.

Quickstart::

    from repro import GridWorld, grid_policy, PolicyLaplaceMechanism

    world = GridWorld(10, 10)
    policy = grid_policy(world)          # G1: implies Geo-Indistinguishability
    mech = PolicyLaplaceMechanism(world, policy, epsilon=1.0)
    release = mech.release(world.cell_of(5, 5), rng=7)
    print(release.point, release.exact)
"""

from repro.errors import (
    ReproError,
    ValidationError,
    PolicyError,
    MechanismError,
    GeometryError,
    DataError,
    BudgetError,
    TracingError,
)
from repro.geo import GridWorld, ConvexPolygon, convex_hull, euclidean
from repro.core import (
    PolicyGraph,
    grid_policy,
    complete_policy,
    area_policy,
    contact_tracing_policy,
    random_policy,
    full_disclosure_policy,
    location_set_policy,
    Mechanism,
    Release,
    PolicyLaplaceMechanism,
    PolicyPlanarIsotropicMechanism,
    GraphExponentialMechanism,
    OptimalDiscreteMechanism,
    GeoIndistinguishabilityMechanism,
    LocationSetPIMechanism,
    restrict_policy,
    RepairReport,
    BudgetLedger,
    TemporalReleaser,
    TimestepRelease,
)
from repro.mobility import (
    CheckIn,
    Trajectory,
    TraceDB,
    MarkovModel,
    BayesFilter,
    delta_location_set,
    geolife_like,
    gowalla_like,
    random_waypoint,
    make_dataset,
)
from repro.adversary import (
    BayesianAttacker,
    TrajectoryAttacker,
    TrackingResult,
    adversary_error,
    utility_error,
)
from repro.epidemic import (
    SEIRModel,
    simulate_outbreak,
    LocationMonitor,
    monitoring_utility,
    contact_rate,
    estimate_r0_contacts,
    estimate_r0_seir,
    perturb_tracedb,
    r0_estimation_error,
    ContactTracingProtocol,
    static_tracing,
    HealthCode,
    HealthCodeReport,
    HealthCodeService,
)
from repro.server import (
    LocalLocationDB,
    PolicyConfigurator,
    PolicyProposal,
    Client,
    Server,
    run_release_rounds,
    TransparencyLog,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ValidationError",
    "PolicyError",
    "MechanismError",
    "GeometryError",
    "DataError",
    "BudgetError",
    "TracingError",
    # geo
    "GridWorld",
    "ConvexPolygon",
    "convex_hull",
    "euclidean",
    # core
    "PolicyGraph",
    "grid_policy",
    "complete_policy",
    "area_policy",
    "contact_tracing_policy",
    "random_policy",
    "full_disclosure_policy",
    "location_set_policy",
    "Mechanism",
    "Release",
    "PolicyLaplaceMechanism",
    "PolicyPlanarIsotropicMechanism",
    "GraphExponentialMechanism",
    "OptimalDiscreteMechanism",
    "GeoIndistinguishabilityMechanism",
    "LocationSetPIMechanism",
    "restrict_policy",
    "RepairReport",
    "BudgetLedger",
    "TemporalReleaser",
    "TimestepRelease",
    # mobility
    "CheckIn",
    "Trajectory",
    "TraceDB",
    "MarkovModel",
    "BayesFilter",
    "delta_location_set",
    "geolife_like",
    "gowalla_like",
    "random_waypoint",
    "make_dataset",
    # adversary
    "BayesianAttacker",
    "TrajectoryAttacker",
    "TrackingResult",
    "adversary_error",
    "utility_error",
    # epidemic
    "SEIRModel",
    "simulate_outbreak",
    "LocationMonitor",
    "monitoring_utility",
    "contact_rate",
    "estimate_r0_contacts",
    "estimate_r0_seir",
    "perturb_tracedb",
    "r0_estimation_error",
    "ContactTracingProtocol",
    "static_tracing",
    "HealthCode",
    "HealthCodeReport",
    "HealthCodeService",
    # server
    "LocalLocationDB",
    "PolicyConfigurator",
    "PolicyProposal",
    "Client",
    "Server",
    "run_release_rounds",
    "TransparencyLog",
]
