"""PANDA: Policy-aware Location Privacy for Epidemic Surveillance.

A full reproduction of the VLDB 2020 demo by Cao, Takagi, Xiao, Xiong and
Yoshikawa: PGLP (policy-graph location privacy) mechanisms, the policy
menagerie of the paper's figures, a mobility + adversary + epidemic substrate,
and the client/server surveillance pipeline — fronted by a batched,
spec-driven :class:`PrivacyEngine` built for population-scale workloads.

Quickstart::

    import numpy as np
    from repro import PrivacyEngine, GridWorld

    world = GridWorld(10, 10)
    engine = PrivacyEngine.from_spec(
        world, mechanism="planar_laplace", policy="G1", epsilon=1.0
    )

    # One call releases a whole population (structure-of-arrays batch);
    # a seeded batch reproduces sequential scalar releases exactly.
    cells = np.arange(world.n_cells)
    batch = engine.release_batch(cells, rng=7)
    print(batch.points.shape, int(batch.exact.sum()), batch.epsilons.sum())

    # The adversary/filtering stack consumes whole likelihood matrices.
    likelihood = engine.pdf_matrix(batch.points)     # (100, 100)

    # Scalar ergonomics remain for notebook use:
    release = engine.release(world.cell_of(5, 5), rng=7)
    print(release.point, release.exact)

Mechanism and policy names resolve through :mod:`repro.engine.registry`
(``planar_laplace`` / ``P-LM``, ``planar_isotropic`` / ``P-PIM``,
``graph_exponential``, ``geo_indistinguishability`` / ``Geo-I``,
``optimal_lp``; policies ``G1``, ``G2``, ``Ga``, ``Gb``, ``Gc``), so
experiments, the CLI and saved configs all describe engines the same way.
Lower-level building blocks (``grid_policy``, ``PolicyLaplaceMechanism``,
...) stay public for direct use.
"""

from repro.errors import (
    ReproError,
    ValidationError,
    PolicyError,
    MechanismError,
    GeometryError,
    DataError,
    BudgetError,
    TracingError,
)
from repro.geo import GridWorld, ConvexPolygon, convex_hull, euclidean
from repro.core import (
    PolicyGraph,
    grid_policy,
    complete_policy,
    area_policy,
    contact_tracing_policy,
    random_policy,
    full_disclosure_policy,
    location_set_policy,
    Mechanism,
    Release,
    ReleaseBatch,
    PolicyLaplaceMechanism,
    PolicyPlanarIsotropicMechanism,
    GraphExponentialMechanism,
    OptimalDiscreteMechanism,
    GeoIndistinguishabilityMechanism,
    LocationSetPIMechanism,
    restrict_policy,
    RepairReport,
    BudgetLedger,
    TemporalReleaser,
    TimestepRelease,
)
from repro.mobility import (
    CheckIn,
    Trajectory,
    TraceDB,
    MarkovModel,
    BayesFilter,
    delta_location_set,
    geolife_like,
    gowalla_like,
    random_waypoint,
    make_dataset,
)
from repro.adversary import (
    BayesianAttacker,
    TrajectoryAttacker,
    TrackingResult,
    adversary_error,
    utility_error,
)
from repro.epidemic import (
    SEIRModel,
    simulate_outbreak,
    LocationMonitor,
    monitoring_utility,
    contact_rate,
    estimate_r0_contacts,
    estimate_r0_seir,
    perturb_tracedb,
    r0_estimation_error,
    ContactTracingProtocol,
    static_tracing,
    HealthCode,
    HealthCodeReport,
    HealthCodeService,
)
from repro.server import (
    LocalLocationDB,
    PolicyConfigurator,
    PolicyProposal,
    Client,
    Server,
    run_release_rounds,
    run_release_rounds_batched,
    TransparencyLog,
)
from repro.engine import (
    PrivacyEngine,
    EngineSpec,
    MechanismSpec,
    PolicySpec,
    ExecutionSpec,
    ShardPlan,
    ExecutionBackend,
    sharded_release_rounds,
    register_mechanism,
    register_policy,
    register_backend,
    mechanism_names,
    policy_names,
    backend_names,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ValidationError",
    "PolicyError",
    "MechanismError",
    "GeometryError",
    "DataError",
    "BudgetError",
    "TracingError",
    # geo
    "GridWorld",
    "ConvexPolygon",
    "convex_hull",
    "euclidean",
    # core
    "PolicyGraph",
    "grid_policy",
    "complete_policy",
    "area_policy",
    "contact_tracing_policy",
    "random_policy",
    "full_disclosure_policy",
    "location_set_policy",
    "Mechanism",
    "Release",
    "ReleaseBatch",
    "PolicyLaplaceMechanism",
    "PolicyPlanarIsotropicMechanism",
    "GraphExponentialMechanism",
    "OptimalDiscreteMechanism",
    "GeoIndistinguishabilityMechanism",
    "LocationSetPIMechanism",
    "restrict_policy",
    "RepairReport",
    "BudgetLedger",
    "TemporalReleaser",
    "TimestepRelease",
    # mobility
    "CheckIn",
    "Trajectory",
    "TraceDB",
    "MarkovModel",
    "BayesFilter",
    "delta_location_set",
    "geolife_like",
    "gowalla_like",
    "random_waypoint",
    "make_dataset",
    # adversary
    "BayesianAttacker",
    "TrajectoryAttacker",
    "TrackingResult",
    "adversary_error",
    "utility_error",
    # epidemic
    "SEIRModel",
    "simulate_outbreak",
    "LocationMonitor",
    "monitoring_utility",
    "contact_rate",
    "estimate_r0_contacts",
    "estimate_r0_seir",
    "perturb_tracedb",
    "r0_estimation_error",
    "ContactTracingProtocol",
    "static_tracing",
    "HealthCode",
    "HealthCodeReport",
    "HealthCodeService",
    # server
    "LocalLocationDB",
    "PolicyConfigurator",
    "PolicyProposal",
    "Client",
    "Server",
    "run_release_rounds",
    "run_release_rounds_batched",
    "TransparencyLog",
    # engine
    "PrivacyEngine",
    "EngineSpec",
    "MechanismSpec",
    "PolicySpec",
    "ExecutionSpec",
    "ShardPlan",
    "ExecutionBackend",
    "sharded_release_rounds",
    "register_backend",
    "backend_names",
    "register_mechanism",
    "register_policy",
    "mechanism_names",
    "policy_names",
]
