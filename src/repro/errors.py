"""Exception hierarchy for the PANDA/PGLP reproduction.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything from this package with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad epsilon, malformed graph, ...)."""


class PolicyError(ReproError):
    """A location policy graph is malformed or used inconsistently."""


class MechanismError(ReproError):
    """A privacy mechanism cannot be constructed or applied."""


class GeometryError(ReproError):
    """A computational-geometry routine received degenerate input."""


class DataError(ReproError):
    """A trajectory / trace database operation failed."""


class BudgetError(ReproError):
    """A privacy-budget ledger constraint was violated."""


class TracingError(ReproError):
    """The contact-tracing protocol was driven into an invalid state."""


class StoreError(ReproError):
    """A durable trace-store operation failed (I/O, schema, misuse)."""


class ResumeMismatchError(StoreError):
    """A resume was attempted against a store recorded for a different run.

    Raised when the engine spec hash or the shard plan's seed material does
    not match what the store recorded at ingest time — resuming would
    silently produce a *different* trace than the interrupted run, so the
    mismatch aborts with the differing fields named instead.
    """
