"""Exception hierarchy for the PANDA/PGLP reproduction.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything from this package with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad epsilon, malformed graph, ...)."""


class PolicyError(ReproError):
    """A location policy graph is malformed or used inconsistently."""


class MechanismError(ReproError):
    """A privacy mechanism cannot be constructed or applied."""


class GeometryError(ReproError):
    """A computational-geometry routine received degenerate input."""


class DataError(ReproError):
    """A trajectory / trace database operation failed."""


class BudgetError(ReproError):
    """A privacy-budget ledger constraint was violated."""


class TracingError(ReproError):
    """The contact-tracing protocol was driven into an invalid state."""


class WorkerLostError(ReproError):
    """A remote execution worker died and the task exhausted its retries.

    The ``rpc`` backend treats worker death (process exit, heartbeat
    timeout, torn frame) as "re-run the shard elsewhere" — every shard is a
    pure function of its seeds, so a retry is bit-identical.  Only when the
    *same* task has lost its worker more than ``max_retries`` times does the
    coordinator give up and raise this, naming the task and the failure
    reason, so a systematically crashing shard surfaces as an error instead
    of an infinite respawn loop.
    """


class CommitStalledError(ReproError):
    """An async shard committer failed to drain within its close timeout.

    Raised by :meth:`~repro.server.pipeline.AsyncShardCommitter.close` when
    the drain thread is still alive after the join deadline — e.g. a commit
    wedged inside a dead store handle, or a producer died mid-submit leaving
    the queue full.  The message names the shard ids still pending so the
    operator knows exactly which commits never landed.
    """


class SnapshotUnavailableError(ReproError):
    """A live-metric snapshot was requested for a round not yet frozen.

    Raised by :meth:`~repro.server.pipeline.Server.metrics_at` when some
    shard owning rows at (or before) the requested round has not committed
    yet: the registry refuses to serve partial aggregates, because a value
    folded over half a round would differ from the batch recomputation the
    live-metric contract promises bit-identity with.  The message names the
    shards still missing so the caller knows what it is waiting on.
    """


class StoreError(ReproError):
    """A durable trace-store operation failed (I/O, schema, misuse)."""


class ResumeMismatchError(StoreError):
    """A resume was attempted against a store recorded for a different run.

    Raised when the engine spec hash or the shard plan's seed material does
    not match what the store recorded at ingest time — resuming would
    silently produce a *different* trace than the interrupted run, so the
    mismatch aborts with the differing fields named instead.
    """
