"""Bayesian location-inference attacker (Shokri et al. [15]).

The attacker knows the mechanism (including its policy graph — the paper
makes policies public for transparency), holds a prior over cells, and upon
observing a release computes the posterior and the Bayes-optimal location
estimate under Euclidean loss.
"""

from __future__ import annotations

import numpy as np

from repro.core.mechanisms.base import Mechanism, Release, ReleaseBatch
from repro.errors import ValidationError
from repro.geo.grid import GridWorld

__all__ = ["BayesianAttacker"]


class BayesianAttacker:
    """Posterior inference and optimal estimation against a mechanism.

    Parameters
    ----------
    world:
        The location universe (supplies coordinates for the loss).
    mechanism:
        The attacked mechanism; its closed-form density is the likelihood.
    prior:
        Attacker's prior over all cells.  Defaults to uniform; experiments
        pass Markov-filtered or empirical priors.
    float32:
        Opt-in single-precision mode for the *batched* linear algebra: the
        likelihood matrix is stored as float32 (densities are still
        evaluated in float64 and rounded once, so each entry is within one
        float32 ulp of the reference) and the posterior/loss GEMMs run in
        single precision.  Batched errors then agree with the float64
        reference distributionally, not bitwise — relative tolerance about
        ``1e-3`` on expected/inference errors (documented in
        ``docs/scaling.md``).  Scalar methods (:meth:`posterior`,
        :meth:`estimate`, :meth:`expected_error`) always stay float64, so
        the bit-exact reference path is never affected.
    """

    def __init__(
        self,
        world: GridWorld,
        mechanism: Mechanism,
        prior: np.ndarray | None = None,
        *,
        float32: bool = False,
    ) -> None:
        self.world = world
        self.mechanism = mechanism
        self.float32 = bool(float32)
        self._dtype = np.dtype(np.float32 if self.float32 else np.float64)
        n = world.n_cells
        if prior is None:
            self.prior = np.full(n, 1.0 / n)
        else:
            probs = np.asarray(prior, dtype=float)
            if probs.shape != (n,):
                raise ValidationError(f"prior must have shape ({n},), got {probs.shape}")
            if np.any(probs < 0) or probs.sum() <= 0:
                raise ValidationError("prior must be non-negative with positive mass")
            self.prior = probs / probs.sum()
        # The prior participates in the batched GEMMs, so the float32 mode
        # keeps a single-precision copy (the float64 ``self.prior`` is the
        # scalar-path reference either way).
        self._typed_prior = (
            self.prior.astype(np.float32) if self.float32 else self.prior
        )
        self._coords = world.coords_array()
        self._distance_matrix: np.ndarray | None = None

    # ------------------------------------------------------------------
    def posterior(self, release: Release) -> np.ndarray:
        """Posterior over cells given one observed release.

        Exact releases identify the cell (the policy disclosed it).  For
        noisy releases the posterior is ``prior x likelihood`` with the
        mechanism density; disclosable cells get zero likelihood because
        their releases are point masses that a continuous observation almost
        surely does not match.

        Parameters
        ----------
        release:
            One observed :class:`~repro.core.mechanisms.Release` (point,
            exactness flag, spent epsilon).

        Returns
        -------
        numpy.ndarray
            ``(n_cells,)`` probability vector summing to 1.  Raises
            :class:`~repro.errors.ValidationError` when the observation is
            impossible under every cell.  Deterministic — inference draws
            no randomness, so batched and scalar attacks agree wherever the
            releases do.
        """
        n = self.world.n_cells
        if release.exact:
            out = np.zeros(n)
            out[self.world.snap(release.point)] = 1.0
            return out
        likelihood = self.mechanism.pdf_matrix(np.asarray(release.point, dtype=float))[0]
        unnormalised = self.prior * likelihood
        total = unnormalised.sum()
        if total <= 0:
            # Prior excludes every cell compatible with the observation;
            # fall back to likelihood-only inference.
            total = likelihood.sum()
            if total <= 0:
                raise ValidationError("release impossible under every cell")
            return likelihood / total
        return unnormalised / total

    def posterior_batch(self, batch: ReleaseBatch) -> np.ndarray:
        """``(len(batch), n_cells)`` posteriors, one row per release.

        The batched counterpart of :meth:`posterior`: one
        :meth:`~repro.core.mechanisms.Mechanism.pdf_matrix` call supplies all
        likelihoods, exact releases collapse to one-hot rows, and rows whose
        prior excludes the observation fall back to likelihood-only
        inference — the same semantics as the scalar path, row by row.

        Parameters
        ----------
        batch:
            A :class:`~repro.core.mechanisms.ReleaseBatch` (rows are
            independent; the batch may mix exact and noisy releases).

        Returns
        -------
        numpy.ndarray
            ``(len(batch), n_cells)``; row ``i`` equals
            ``posterior(batch[i])`` (asserted in
            ``tests/test_eval_batched.py``).
        """
        n = self.world.n_cells
        out = np.empty((len(batch), n), dtype=self._dtype)
        noisy = np.flatnonzero(~batch.exact)
        exact = np.flatnonzero(batch.exact)
        if exact.size:
            out[exact] = 0.0
            out[exact, self.world.snap_batch(batch.points[exact])] = 1.0
        if noisy.size:
            likelihood = self.mechanism.pdf_matrix(
                batch.points[noisy], dtype=self._dtype if self.float32 else None
            )
            unnormalised = self._typed_prior[None, :] * likelihood
            totals = unnormalised.sum(axis=1)
            starved = totals <= 0
            if starved.any():
                fallback_totals = likelihood[starved].sum(axis=1)
                if np.any(fallback_totals <= 0):
                    raise ValidationError("release impossible under every cell")
                unnormalised[starved] = likelihood[starved]
                totals[starved] = fallback_totals
            out[noisy] = unnormalised / totals[:, None]
        return out

    def estimate_batch(self, batch: ReleaseBatch) -> np.ndarray:
        """Bayes-optimal cell estimates for a whole batch: ``(len(batch),)``.

        The expected-loss matrix comes from one GEMM; rows whose two best
        candidates are within numerical noise of each other (symmetric
        posteriors produce exact ties) are re-resolved with the scalar
        path's matrix-vector product, so batched estimates break ties
        exactly like sequential :meth:`estimate` calls.
        """
        posteriors = self.posterior_batch(batch)
        distances = self._typed_distances()
        expected_losses = posteriors @ distances
        estimates = np.argmin(expected_losses, axis=1)
        if expected_losses.shape[1] > 1:
            best_two = np.partition(expected_losses, 1, axis=1)[:, :2]
            margin = best_two[:, 1] - best_two[:, 0]
            # Ties within numerical noise are re-resolved in float64 either
            # way; the detection threshold scales with the working precision
            # (float32 GEMMs accumulate ~1e3x more round-off).
            tie_tol = 1e-4 if self.float32 else 1e-8
            unstable = np.flatnonzero(margin <= tie_tol * (np.abs(best_two[:, 0]) + 1.0))
            reference = self._distances()
            for row in unstable:
                estimates[row] = int(
                    np.argmin(reference @ posteriors[row].astype(np.float64))
                )
        return estimates

    def expected_error_batch(self, batch: ReleaseBatch) -> np.ndarray:
        """Residual uncertainty per release: ``(len(batch),)`` min expected loss.

        The batched counterpart of :meth:`expected_error` — one posterior
        matrix and one GEMM against the cached all-pairs distance matrix
        cover the whole batch; row ``i`` matches the scalar call on
        ``batch[i]`` to float round-off.
        """
        posteriors = self.posterior_batch(batch)
        losses = (posteriors @ self._typed_distances()).min(axis=1)
        # Callers sum/average these; hand back float64 so downstream
        # aggregation does not silently continue in single precision.
        return np.asarray(losses, dtype=float)

    def inference_error_batch(self, batch: ReleaseBatch, true_cells) -> np.ndarray:
        """Realised attack error per release against ``true_cells``: ``(len(batch),)``.

        Element ``i`` equals :meth:`inference_error` on the ``i``-th release
        (same estimates, same ``np.hypot`` distance), computed for the whole
        batch with one posterior matrix.

        Parameters
        ----------
        batch:
            The observed releases.
        true_cells:
            One ground-truth cell per batch row (shape-checked; raises
            :class:`~repro.errors.ValidationError` on mismatch).
        """
        true_arr = self.world.cells_array(true_cells, context="inference_error_batch")
        if true_arr.shape != (len(batch),):
            raise ValidationError(
                f"true_cells must have shape ({len(batch)},), got {true_arr.shape}"
            )
        estimated = self._coords[self.estimate_batch(batch)]
        truth = self._coords[true_arr]
        return np.hypot(estimated[:, 0] - truth[:, 0], estimated[:, 1] - truth[:, 1])

    def estimate(self, release: Release) -> int:
        """Bayes-optimal cell estimate under expected Euclidean loss.

        Evaluates ``sum_s posterior(s) * d_E(candidate, s)`` for every
        candidate cell and returns the minimiser (the discrete geometric
        median of the posterior).
        """
        posterior = self.posterior(release)
        expected_losses = self._distances() @ posterior
        return int(np.argmin(expected_losses))

    def expected_error(self, release: Release) -> float:
        """The attacker's residual uncertainty: min expected Euclidean loss.

        ``min_x E_posterior[d_E(x, s)]`` for one observed ``release`` — the
        quantity Shokri et al. call the expected estimation error.  Scalar
        reference for :meth:`expected_error_batch`.
        """
        posterior = self.posterior(release)
        expected_losses = self._distances() @ posterior
        return float(expected_losses.min())

    def inference_error(self, release: Release, true_cell: int) -> float:
        """Realised attack error: distance from the estimate to the truth.

        Parameters
        ----------
        release:
            The observed release.
        true_cell:
            Ground-truth cell the release came from (validated against the
            world).  Scalar reference for :meth:`inference_error_batch`.
        """
        estimate = self.estimate(release)
        return self.world.distance(estimate, self.world.check_cell(true_cell))

    # ------------------------------------------------------------------
    def _distances(self) -> np.ndarray:
        if self._distance_matrix is None:
            # The all-pairs matrix depends only on the world, so it is cached
            # on the world instance and shared by every attacker built
            # against it (one O(n^2) allocation per world, not per epsilon).
            cached = getattr(self.world, "_pairwise_distance_cache", None)
            if cached is None:
                diff = self._coords[:, None, :] - self._coords[None, :, :]
                cached = np.sqrt((diff**2).sum(axis=2))
                self.world._pairwise_distance_cache = cached
            self._distance_matrix = cached
        return self._distance_matrix

    def _typed_distances(self) -> np.ndarray:
        """The distance matrix in this attacker's working precision.

        The float32 copy is cached on the world alongside the float64
        reference, so mixed fleets of float32 attackers share one cast.
        """
        if not self.float32:
            return self._distances()
        cached = getattr(self.world, "_pairwise_distance_cache_f32", None)
        if cached is None:
            cached = self._distances().astype(np.float32)
            self.world._pairwise_distance_cache_f32 = cached
        return cached
