"""Monte-Carlo privacy and utility metrics over mechanisms.

These are the quantities plotted in the demo's privacy-utility panels:

* :func:`utility_error`   — mean Euclidean distance between released and true
  locations (evaluation 1 of Sec. 3.2);
* :func:`adversary_error` — mean realised error of the Bayesian attacker [15]
  (evaluation 3);
* :func:`expected_inference_error` — the attacker's own expected loss,
  a sample-free lower-variance companion to :func:`adversary_error`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.adversary.inference import BayesianAttacker
from repro.core.mechanisms.base import Mechanism
from repro.errors import ValidationError
from repro.geo.distance import euclidean
from repro.geo.grid import GridWorld
from repro.utils.rng import ensure_rng

__all__ = ["utility_error", "adversary_error", "expected_inference_error"]


def _check_cells(world: GridWorld, cells: Sequence[int]) -> list[int]:
    if len(cells) == 0:
        raise ValidationError("need at least one true cell")
    return [world.check_cell(cell) for cell in cells]


def utility_error(
    world: GridWorld,
    mechanism: Mechanism,
    true_cells: Sequence[int],
    rng=None,
    trials_per_cell: int = 1,
) -> float:
    """Mean Euclidean error of releases over ``true_cells``.

    Exact (policy-disclosed) releases contribute zero error, matching the
    demo's utility display where disclosable locations pass through.
    """
    generator = ensure_rng(rng)
    cells = _check_cells(world, true_cells)
    total = 0.0
    count = 0
    for cell in cells:
        for _ in range(trials_per_cell):
            release = mechanism.release(cell, rng=generator)
            total += euclidean(release.point, world.coords(cell))
            count += 1
    return total / count


def adversary_error(
    world: GridWorld,
    mechanism: Mechanism,
    true_cells: Sequence[int],
    prior: np.ndarray | None = None,
    rng=None,
    trials_per_cell: int = 1,
    attacker: BayesianAttacker | None = None,
) -> float:
    """Mean realised inference error of the Bayesian attacker.

    For each true cell, draws releases, lets the attacker estimate, and
    averages the Euclidean distance between estimate and truth.  Higher is
    more private.  Exact releases give the attacker the truth (error 0 at
    that cell) — by policy design, e.g. infected cells under Gc.
    """
    generator = ensure_rng(rng)
    cells = _check_cells(world, true_cells)
    if attacker is None:
        attacker = BayesianAttacker(world, mechanism, prior=prior)
    total = 0.0
    count = 0
    for cell in cells:
        for _ in range(trials_per_cell):
            release = mechanism.release(cell, rng=generator)
            total += attacker.inference_error(release, cell)
            count += 1
    return total / count


def expected_inference_error(
    world: GridWorld,
    mechanism: Mechanism,
    true_cells: Sequence[int],
    prior: np.ndarray | None = None,
    rng=None,
    trials_per_cell: int = 1,
    attacker: BayesianAttacker | None = None,
) -> float:
    """Mean of the attacker's *expected* loss (its residual uncertainty).

    Unlike :func:`adversary_error`, this does not compare to the truth; it
    averages ``min_x E_posterior[d_E(x, s)]`` over observed releases, the
    quantity Shokri et al. call the adversary's expected estimation error.
    """
    generator = ensure_rng(rng)
    cells = _check_cells(world, true_cells)
    if attacker is None:
        attacker = BayesianAttacker(world, mechanism, prior=prior)
    total = 0.0
    count = 0
    for cell in cells:
        for _ in range(trials_per_cell):
            release = mechanism.release(cell, rng=generator)
            total += attacker.expected_error(release)
            count += 1
    return total / count
