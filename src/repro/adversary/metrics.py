"""Monte-Carlo privacy and utility metrics over mechanisms.

These are the quantities plotted in the demo's privacy-utility panels:

* :func:`utility_error`   — mean Euclidean distance between released and true
  locations (evaluation 1 of Sec. 3.2);
* :func:`adversary_error` — mean realised error of the Bayesian attacker [15]
  (evaluation 3);
* :func:`expected_inference_error` — the attacker's own expected loss,
  a sample-free lower-variance companion to :func:`adversary_error`.

Each metric is batch-first: the ``len(cells) * trials_per_cell`` releases are
drawn in one :meth:`~repro.core.mechanisms.Mechanism.release_batch` call (the
cell-major order of the scalar loops, so the seeded RNG stream is identical)
and scored through the attacker's batched posterior machinery.
``batched=False`` keeps the scalar per-release reference loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.adversary.inference import BayesianAttacker
from repro.core.mechanisms.base import Mechanism
from repro.errors import ValidationError
from repro.geo.distance import euclidean
from repro.geo.grid import GridWorld
from repro.utils.rng import ensure_rng

__all__ = ["utility_error", "adversary_error", "expected_inference_error"]


def _check_cells(world: GridWorld, cells: Sequence[int]) -> list[int]:
    if len(cells) == 0:
        raise ValidationError("need at least one true cell")
    return [world.check_cell(cell) for cell in cells]


def _trial_cells(cells: list[int], trials_per_cell: int) -> np.ndarray:
    """The scalar loops' draw order — each cell repeated ``trials_per_cell``x."""
    return np.repeat(np.asarray(cells, dtype=int), trials_per_cell)


def utility_error(
    world: GridWorld,
    mechanism: Mechanism,
    true_cells: Sequence[int],
    rng=None,
    trials_per_cell: int = 1,
    batched: bool = True,
) -> float:
    """Mean Euclidean error of releases over ``true_cells``.

    Exact (policy-disclosed) releases contribute zero error, matching the
    demo's utility display where disclosable locations pass through.
    """
    generator = ensure_rng(rng)
    cells = _check_cells(world, true_cells)
    if not batched:
        total = 0.0
        count = 0
        for cell in cells:
            for _ in range(trials_per_cell):
                release = mechanism.release(cell, rng=generator)
                total += euclidean(release.point, world.coords(cell))
                count += 1
        return total / count
    trial_cells = _trial_cells(cells, trials_per_cell)
    batch = mechanism.release_batch(trial_cells, rng=generator)
    centres = world.coords_array(trial_cells)
    errors = np.hypot(
        batch.points[:, 0] - centres[:, 0], batch.points[:, 1] - centres[:, 1]
    )
    return float(errors.sum()) / len(errors)


def adversary_error(
    world: GridWorld,
    mechanism: Mechanism,
    true_cells: Sequence[int],
    prior: np.ndarray | None = None,
    rng=None,
    trials_per_cell: int = 1,
    attacker: BayesianAttacker | None = None,
    batched: bool = True,
) -> float:
    """Mean realised inference error of the Bayesian attacker.

    For each true cell, draws releases, lets the attacker estimate, and
    averages the Euclidean distance between estimate and truth.  Higher is
    more private.  Exact releases give the attacker the truth (error 0 at
    that cell) — by policy design, e.g. infected cells under Gc.
    """
    generator = ensure_rng(rng)
    cells = _check_cells(world, true_cells)
    if attacker is None:
        attacker = BayesianAttacker(world, mechanism, prior=prior)
    if not batched:
        total = 0.0
        count = 0
        for cell in cells:
            for _ in range(trials_per_cell):
                release = mechanism.release(cell, rng=generator)
                total += attacker.inference_error(release, cell)
                count += 1
        return total / count
    trial_cells = _trial_cells(cells, trials_per_cell)
    batch = mechanism.release_batch(trial_cells, rng=generator)
    errors = attacker.inference_error_batch(batch, trial_cells)
    return float(errors.sum()) / len(errors)


def expected_inference_error(
    world: GridWorld,
    mechanism: Mechanism,
    true_cells: Sequence[int],
    prior: np.ndarray | None = None,
    rng=None,
    trials_per_cell: int = 1,
    attacker: BayesianAttacker | None = None,
    batched: bool = True,
) -> float:
    """Mean of the attacker's *expected* loss (its residual uncertainty).

    Unlike :func:`adversary_error`, this does not compare to the truth; it
    averages ``min_x E_posterior[d_E(x, s)]`` over observed releases, the
    quantity Shokri et al. call the adversary's expected estimation error.
    """
    generator = ensure_rng(rng)
    cells = _check_cells(world, true_cells)
    if attacker is None:
        attacker = BayesianAttacker(world, mechanism, prior=prior)
    if not batched:
        total = 0.0
        count = 0
        for cell in cells:
            for _ in range(trials_per_cell):
                release = mechanism.release(cell, rng=generator)
                total += attacker.expected_error(release)
                count += 1
        return total / count
    trial_cells = _trial_cells(cells, trials_per_cell)
    batch = mechanism.release_batch(trial_cells, rng=generator)
    errors = attacker.expected_error_batch(batch)
    return float(errors.sum()) / len(errors)
