"""Monte-Carlo privacy and utility metrics over mechanisms.

These are the quantities plotted in the demo's privacy-utility panels:

* :func:`utility_error`   — mean Euclidean distance between released and true
  locations (evaluation 1 of Sec. 3.2);
* :func:`adversary_error` — mean realised error of the Bayesian attacker [15]
  (evaluation 3);
* :func:`expected_inference_error` — the attacker's own expected loss,
  a sample-free lower-variance companion to :func:`adversary_error`.

Each metric is batch-first: the ``len(cells) * trials_per_cell`` releases are
drawn in one :meth:`~repro.core.mechanisms.Mechanism.release_batch` call (the
cell-major order of the scalar loops, so the seeded RNG stream is identical)
and scored through the attacker's batched posterior machinery.
``batched=False`` keeps the scalar per-release reference loop.

Each metric also scales *across cells*: passing ``shards=`` / ``backend=``
routes the trial grid over a deterministic
:class:`~repro.engine.sharding.ShardPlan` whose work keys are the **trial
slots** (positions in ``true_cells``) — one RNG stream per slot, spawned
over the global slot order — executed on any registered
:class:`~repro.engine.backends.ExecutionBackend` and folded with the exact
merge of :mod:`repro.engine.distributed`.  Sharded results are therefore
bit-identical for every shard count and backend (and match the sharded
scalar reference to float round-off), though not equal to the unsharded
single-stream draw — the two layouts consume ``rng`` differently, exactly
as in the sharded release pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.adversary.inference import BayesianAttacker
from repro.core.mechanisms.base import Mechanism, ReleaseBatch
from repro.errors import ValidationError
from repro.geo.distance import euclidean
from repro.geo.grid import GridWorld
from repro.utils.rng import ensure_rng

__all__ = ["utility_error", "adversary_error", "expected_inference_error"]


def _check_cells(world: GridWorld, cells: Sequence[int]) -> list[int]:
    if len(cells) == 0:
        raise ValidationError("need at least one true cell")
    return [world.check_cell(cell) for cell in cells]


def _trial_cells(cells: list[int], trials_per_cell: int) -> np.ndarray:
    """The scalar loops' draw order — each cell repeated ``trials_per_cell``x."""
    return np.repeat(np.asarray(cells, dtype=int), trials_per_cell)


# ----------------------------------------------------------------------
# Shard-parallel path (E4-class metrics over ShardPlan + ExecutionBackend)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _TrialShardTask:
    """One shard of the trial grid: its slots' cells, streams, and scoring kind.

    Plain data plus the release source, so process backends can pickle it;
    ``source`` is an :class:`~repro.engine.EngineRef` for spec-built engines
    (workers rebuild and cache by spec hash) or the live mechanism.
    ``kind`` selects the scorer: ``"utility"`` (Euclidean error to the true
    centre), ``"adversary"`` (attacker's realised inference error), or
    ``"expected"`` (attacker's expected loss).
    """

    source: object
    kind: str
    prior: np.ndarray | None
    cells: tuple[int, ...]
    seeds: tuple[int, ...]
    trials: int
    batched: bool
    float32: bool = False


def _score_trial_shard(task: _TrialShardTask):
    """Score one shard's trial slots on their own streams (module-level for pickling).

    Each slot draws its ``trials`` releases from its own seed stream — one
    vectorized ``release_batch`` call per slot when ``task.batched``, the
    scalar ``release`` loop otherwise (same stream, so the same points to
    float identity).  Batched scoring then runs over the whole shard at
    once: the per-slot draws are concatenated into a single
    :class:`~repro.core.mechanisms.ReleaseBatch` and pushed through the
    attacker's batched posterior machinery in one matrix pass (scoring is
    row-independent, so this cannot change any value).  Returns per-slot
    error sums as a :class:`~repro.engine.distributed.MetricShardResult`.
    """
    from repro.engine import resolve_release_source
    from repro.engine.distributed import MetricShardResult

    source = resolve_release_source(task.source)
    world = source.world
    n_slots, trials = len(task.cells), task.trials
    n = n_slots * trials
    cells_rows = np.repeat(np.asarray(task.cells, dtype=int), trials)
    attacker = None
    if task.kind != "utility":
        attacker = BayesianAttacker(
            world, source, prior=task.prior, float32=task.float32
        )

    errors = np.empty(n, dtype=float)
    if task.batched:
        points = np.empty((n, 2), dtype=float)
        exact = np.empty(n, dtype=bool)
        epsilons = np.empty(n, dtype=float)
        mechanism = ""
        for index, (cell, seed) in enumerate(zip(task.cells, task.seeds)):
            batch = source.release_batch(
                [cell] * trials, rng=np.random.default_rng(seed)
            )
            start = index * trials
            points[start : start + trials] = batch.points
            exact[start : start + trials] = batch.exact
            epsilons[start : start + trials] = batch.epsilons
            mechanism = batch.mechanism
        merged = ReleaseBatch(
            points=points, exact=exact, epsilons=epsilons, cells=cells_rows, mechanism=mechanism
        )
        if task.kind == "utility":
            centres = world.coords_array(cells_rows)
            errors = np.hypot(points[:, 0] - centres[:, 0], points[:, 1] - centres[:, 1])
        elif task.kind == "adversary":
            errors = attacker.inference_error_batch(merged, cells_rows)
        else:
            errors = attacker.expected_error_batch(merged)
    else:  # scalar reference: per-release draws *and* per-release scoring
        for index, (cell, seed) in enumerate(zip(task.cells, task.seeds)):
            generator = np.random.default_rng(seed)
            for trial in range(trials):
                release = source.release(cell, rng=generator)
                row = index * trials + trial
                if task.kind == "utility":
                    errors[row] = euclidean(release.point, world.coords(cell))
                elif task.kind == "adversary":
                    errors[row] = attacker.inference_error(release, cell)
                else:
                    errors[row] = attacker.expected_error(release)

    return MetricShardResult(
        sums={"error": errors.reshape(n_slots, trials).sum(axis=1)},
        counts=np.full(n_slots, trials, dtype=int),
        flows={},
    )


def _sharded_trial_metric(
    kind: str,
    world: GridWorld,
    mechanism,
    cells: list[int],
    prior: np.ndarray | None,
    rng,
    trials_per_cell: int,
    batched: bool,
    shards: int | None,
    backend,
    float32: bool = False,
) -> float:
    """Common driver for the three sharded trial metrics (see module docs)."""
    from repro.engine import EngineRef
    from repro.engine.distributed import sharded_metric, slot_plan

    # Workers score against the release source's own world; refuse a
    # mismatched explicit world instead of silently diverging from the
    # unsharded path (which uses the passed world throughout).
    if mechanism.world != world:
        raise ValidationError("mechanism was built for a different world")
    plan = slot_plan(len(cells), 1 if shards is None else int(shards), rng=rng)
    source = EngineRef.wrap(mechanism)
    tasks = [
        _TrialShardTask(
            source=source,
            kind=kind,
            prior=prior,
            cells=tuple(cells[slot] for slot in slots),
            seeds=seeds,
            trials=int(trials_per_cell),
            batched=batched,
            float32=bool(float32),
        )
        for _, slots, seeds in plan.iter_shards()
    ]
    merged = sharded_metric(_score_trial_shard, tasks, backend=backend)
    return merged.weighted_mean("error")


def _attacker_prior(
    prior: np.ndarray | None, attacker: BayesianAttacker | None
) -> np.ndarray | None:
    """The prior a sharded run forwards to its per-shard attackers.

    Sharded execution builds one attacker per shard *inside the workers*
    (the distance-matrix cache then lives — and persists, under the pool
    backend — in each worker process), so a caller-supplied ``attacker``
    instance cannot be used directly; its prior is forwarded instead.
    """
    if prior is not None:
        return prior
    if attacker is not None:
        return attacker.prior
    return None


def utility_error(
    world: GridWorld,
    mechanism: Mechanism,
    true_cells: Sequence[int],
    rng=None,
    trials_per_cell: int = 1,
    batched: bool = True,
    shards: int | None = None,
    backend=None,
) -> float:
    """Mean Euclidean error of releases over ``true_cells``.

    Exact (policy-disclosed) releases contribute zero error, matching the
    demo's utility display where disclosable locations pass through.

    Parameters
    ----------
    world:
        Location universe supplying cell centres.
    mechanism:
        The release mechanism to score (a spec-built
        :class:`~repro.engine.PrivacyEngine` is also accepted; with
        ``backend="pool"`` shard tasks then travel as spec hashes).
    true_cells:
        Cells to evaluate; each is released ``trials_per_cell`` times.
    rng:
        Seed source.  Unsharded runs draw all trials from one stream in
        cell-major order; sharded runs spawn one child stream per trial
        slot (position in ``true_cells``) from it.
    trials_per_cell:
        Monte-Carlo repetitions per cell.
    batched:
        ``True`` scores vectorized draws; ``False`` runs the scalar
        per-release reference loop on the same stream(s) — the two agree to
        float round-off in either layout.
    shards / backend:
        ``None`` / ``None`` keeps the single-process paths.  Providing
        either shards the trial grid over a
        :class:`~repro.engine.sharding.ShardPlan` + backend; sharded output
        is bit-identical for every shard count and registered backend.

    Returns
    -------
    float
        Mean Euclidean error over all ``len(true_cells) * trials_per_cell``
        releases.
    """
    cells = _check_cells(world, true_cells)
    if shards is not None or backend is not None:
        return _sharded_trial_metric(
            "utility", world, mechanism, cells, None, rng,
            trials_per_cell, batched, shards, backend,
        )
    generator = ensure_rng(rng)
    if not batched:
        total = 0.0
        count = 0
        for cell in cells:
            for _ in range(trials_per_cell):
                release = mechanism.release(cell, rng=generator)
                total += euclidean(release.point, world.coords(cell))
                count += 1
        return total / count
    trial_cells = _trial_cells(cells, trials_per_cell)
    batch = mechanism.release_batch(trial_cells, rng=generator)
    centres = world.coords_array(trial_cells)
    errors = np.hypot(
        batch.points[:, 0] - centres[:, 0], batch.points[:, 1] - centres[:, 1]
    )
    return float(errors.sum()) / len(errors)


def adversary_error(
    world: GridWorld,
    mechanism: Mechanism,
    true_cells: Sequence[int],
    prior: np.ndarray | None = None,
    rng=None,
    trials_per_cell: int = 1,
    attacker: BayesianAttacker | None = None,
    batched: bool = True,
    shards: int | None = None,
    backend=None,
    float32: bool = False,
) -> float:
    """Mean realised inference error of the Bayesian attacker.

    For each true cell, draws releases, lets the attacker estimate, and
    averages the Euclidean distance between estimate and truth.  Higher is
    more private.  Exact releases give the attacker the truth (error 0 at
    that cell) — by policy design, e.g. infected cells under Gc.

    Parameters
    ----------
    world / mechanism / true_cells / rng / trials_per_cell / batched / shards / backend:
        As in :func:`utility_error` (same RNG-stream layouts, same sharded
        bit-identity contract).
    prior:
        Attacker prior over cells (uniform when omitted).
    attacker:
        Prebuilt attacker to reuse across calls (so its cached distance
        matrix survives a sweep).  Sharded runs construct per-shard
        attackers inside the workers instead and only forward this
        attacker's prior.
    float32:
        Run the attacker's batched GEMMs in single precision (see
        :class:`~repro.adversary.inference.BayesianAttacker`); the returned
        mean then matches the float64 reference to about ``1e-3`` relative
        tolerance.  Ignored when a prebuilt ``attacker`` is supplied.

    Returns
    -------
    float
        Mean realised attack error over all trials.
    """
    cells = _check_cells(world, true_cells)
    if shards is not None or backend is not None:
        return _sharded_trial_metric(
            "adversary",
            world,
            mechanism,
            cells,
            _attacker_prior(prior, attacker),
            rng,
            trials_per_cell,
            batched,
            shards,
            backend,
            float32=float32,
        )
    generator = ensure_rng(rng)
    if attacker is None:
        attacker = BayesianAttacker(world, mechanism, prior=prior, float32=float32)
    if not batched:
        total = 0.0
        count = 0
        for cell in cells:
            for _ in range(trials_per_cell):
                release = mechanism.release(cell, rng=generator)
                total += attacker.inference_error(release, cell)
                count += 1
        return total / count
    trial_cells = _trial_cells(cells, trials_per_cell)
    batch = mechanism.release_batch(trial_cells, rng=generator)
    errors = attacker.inference_error_batch(batch, trial_cells)
    return float(errors.sum()) / len(errors)


def expected_inference_error(
    world: GridWorld,
    mechanism: Mechanism,
    true_cells: Sequence[int],
    prior: np.ndarray | None = None,
    rng=None,
    trials_per_cell: int = 1,
    attacker: BayesianAttacker | None = None,
    batched: bool = True,
    shards: int | None = None,
    backend=None,
    float32: bool = False,
) -> float:
    """Mean of the attacker's *expected* loss (its residual uncertainty).

    Unlike :func:`adversary_error`, this does not compare to the truth; it
    averages ``min_x E_posterior[d_E(x, s)]`` over observed releases, the
    quantity Shokri et al. call the adversary's expected estimation error.

    Parameters
    ----------
    world / mechanism / true_cells / rng / trials_per_cell / batched / shards / backend:
        As in :func:`utility_error` (same RNG-stream layouts, same sharded
        bit-identity contract).
    prior / attacker / float32:
        As in :func:`adversary_error` (sharded runs build per-shard
        attackers and forward only the prior; ``float32`` runs the
        attacker GEMMs in single precision, ~``1e-3`` relative tolerance).

    Returns
    -------
    float
        Mean expected estimation error over all trials.
    """
    cells = _check_cells(world, true_cells)
    if shards is not None or backend is not None:
        return _sharded_trial_metric(
            "expected",
            world,
            mechanism,
            cells,
            _attacker_prior(prior, attacker),
            rng,
            trials_per_cell,
            batched,
            shards,
            backend,
            float32=float32,
        )
    generator = ensure_rng(rng)
    if attacker is None:
        attacker = BayesianAttacker(world, mechanism, prior=prior, float32=float32)
    if not batched:
        total = 0.0
        count = 0
        for cell in cells:
            for _ in range(trials_per_cell):
                release = mechanism.release(cell, rng=generator)
                total += attacker.expected_error(release)
                count += 1
        return total / count
    trial_cells = _trial_cells(cells, trials_per_cell)
    batch = mechanism.release_batch(trial_cells, rng=generator)
    errors = attacker.expected_error_batch(batch)
    return float(errors.sum()) / len(errors)
