"""Empirical privacy quantification via Bayesian inference attacks.

Implements the adversary model of Shokri et al., "Quantifying Location
Privacy" (S&P 2011), which the demo uses as its empirical privacy metric
(Sec. 3.2, evaluation 3): the attacker observes a release, combines it with a
prior (mobility) model through the mechanism's density, and outputs the
location estimate minimising expected Euclidean error.  The user's privacy is
the attacker's expected error.

Everything here is batch-first with scalar reference paths
(``batched=False``) and — for the metric functions — an optional
shard-parallel execution mode (``shards=`` / ``backend=``) riding the
distributed evaluation layer (:mod:`repro.engine.distributed`).
"""

from repro.adversary.inference import BayesianAttacker
from repro.adversary.metrics import (
    adversary_error,
    expected_inference_error,
    utility_error,
)
from repro.adversary.tracking import TrackingResult, TrajectoryAttacker

__all__ = [
    "BayesianAttacker",
    "adversary_error",
    "expected_inference_error",
    "utility_error",
    "TrackingResult",
    "TrajectoryAttacker",
]
