"""Trajectory-level tracking attack (the temporal extension of [15]).

A single-release attacker underestimates risk when locations are streamed:
an adversary with the public Markov mobility model can *filter* — combine
every past release with motion dynamics — and localise the user far better
than any one release allows.  :class:`TrajectoryAttacker` implements that
forward-filtering attack and the per-step localisation error metric used by
the temporal-privacy experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mechanisms.base import Mechanism, Release, ReleaseBatch
from repro.errors import ValidationError
from repro.geo.grid import GridWorld
from repro.mobility.hmm import BayesFilter
from repro.mobility.markov import MarkovModel

__all__ = ["TrackingResult", "TrajectoryAttacker"]


@dataclass(frozen=True)
class TrackingResult:
    """Outcome of a tracking attack over a released trajectory.

    Attributes
    ----------
    estimates:
        The attacker's Bayes-optimal cell estimate after each release, in
        stream order.
    errors:
        Euclidean distance from each estimate to the true cell at that
        step (``len(errors) == len(estimates)``).
    """

    estimates: tuple[int, ...]
    errors: tuple[float, ...]

    @property
    def mean_error(self) -> float:
        """Average per-step localisation error — E10's ``tracking_error``."""
        return float(np.mean(self.errors))

    @property
    def final_error(self) -> float:
        """Localisation error after the last release (fully filtered belief)."""
        return self.errors[-1]


class TrajectoryAttacker:
    """Forward-filtering adversary over a stream of releases.

    Parameters
    ----------
    world:
        Location universe.
    markov:
        The attacker's mobility model (assumed public, as in [19]).
    prior:
        Initial belief; defaults to the Markov stationary distribution.
    """

    def __init__(self, world: GridWorld, markov: MarkovModel, prior: np.ndarray | None = None) -> None:
        self.world = world
        self.markov = markov
        self._initial_prior = prior
        self._coords = world.coords_array()
        self._distances: np.ndarray | None = None

    # ------------------------------------------------------------------
    def track(
        self,
        releases: list[Release] | ReleaseBatch,
        mechanisms: list[Mechanism] | Mechanism,
        true_cells: list[int],
    ) -> TrackingResult:
        """Filter over ``releases`` and score localisation error per step.

        Parameters
        ----------
        releases:
            The observed stream — a list of scalar
            :class:`~repro.core.mechanisms.Release` records or a whole
            :class:`~repro.core.mechanisms.ReleaseBatch` (e.g. the output
            of one engine round over a trajectory); a batch is expanded to
            its scalar rows, so both forms attack identically.
        mechanisms:
            A single mechanism (static policy) or one per release (dynamic
            policies, e.g. the temporal releaser's per-step repaired
            graphs); supplies the likelihood at each filter update.
        true_cells:
            Ground truth per step, for scoring only — the filter never
            sees it.

        Returns
        -------
        TrackingResult
            Per-step estimates and errors.  Deterministic: filtering draws
            no randomness, so the result depends only on the releases (and
            therefore inherits whatever RNG-stream contract produced them).
        """
        if isinstance(releases, ReleaseBatch):
            releases = releases.to_releases()
        if len(releases) != len(true_cells):
            raise ValidationError("releases and true_cells must have equal length")
        if not releases:
            raise ValidationError("need at least one release to track")
        if isinstance(mechanisms, Mechanism):
            mechanisms = [mechanisms] * len(releases)
        if len(mechanisms) != len(releases):
            raise ValidationError("need one mechanism per release")

        filt = BayesFilter(self.markov, prior=self._initial_prior)
        estimates: list[int] = []
        errors: list[float] = []
        for release, mechanism, truth in zip(releases, mechanisms, true_cells):
            filt.predict()
            posterior = filt.update(release, mechanism)
            estimate = self._bayes_estimate(posterior)
            estimates.append(estimate)
            errors.append(self.world.distance(estimate, self.world.check_cell(truth)))
        return TrackingResult(estimates=tuple(estimates), errors=tuple(errors))

    # ------------------------------------------------------------------
    def _bayes_estimate(self, posterior: np.ndarray) -> int:
        """Cell minimising expected Euclidean loss under ``posterior``."""
        if self._distances is None:
            diff = self._coords[:, None, :] - self._coords[None, :, :]
            self._distances = np.sqrt((diff**2).sum(axis=2))
        return int(np.argmin(self._distances @ posterior))
