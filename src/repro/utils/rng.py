"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts an optional ``rng``
argument that may be ``None`` (fresh nondeterministic generator), an integer
seed, or an existing :class:`numpy.random.Generator`.  Centralising the
coercion here keeps experiments reproducible with a single seed while letting
interactive users ignore seeding entirely.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_seeds", "spawn_rngs"]


def ensure_rng(rng: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for a fresh OS-seeded generator, an ``int`` seed, or an
        existing generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, int, or numpy Generator, got {type(rng)!r}")


def spawn_seeds(rng: int | np.random.Generator | None, count: int) -> list[int]:
    """Derive ``count`` child-stream seeds from ``rng``.

    Parameters
    ----------
    rng:
        Parent source, coerced through :func:`ensure_rng`; the seeds are one
        ``integers`` draw from it, so the same parent seed always yields the
        same seed list.
    count:
        Number of seeds (must be non-negative).

    Returns
    -------
    list[int]
        Plain-int seeds, one per child stream.  Seeds (rather than live
        generators) are what crosses process boundaries: the sharded release
        path ships them to worker processes, which reconstruct each stream
        with ``np.random.default_rng(seed)``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [int(seed) for seed in seeds]


def spawn_rngs(rng: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Used by multi-user simulations so that each simulated client owns an
    independent stream and results do not depend on iteration order (or, in
    the sharded pipeline, on how the population is partitioned).  Equivalent
    to seeding generators from :func:`spawn_seeds` — both consume the same
    single draw from the parent, so seed-level and generator-level callers
    interoperate deterministically.
    """
    return [np.random.default_rng(seed) for seed in spawn_seeds(rng, count)]
