"""Shared utilities: RNG handling and argument validation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_epsilon,
    check_probability,
    check_positive,
    check_non_negative,
    check_in_range,
    check_integer,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_epsilon",
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_integer",
]
