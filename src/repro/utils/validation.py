"""Argument validation helpers shared across the library.

All helpers raise :class:`repro.errors.ValidationError` (a ``ValueError``
subclass) with a message naming the offending parameter, and return the
validated value so they can be used inline::

    self.epsilon = check_epsilon(epsilon)
"""

from __future__ import annotations

import math

from repro.errors import ValidationError

__all__ = [
    "check_epsilon",
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_integer",
]


def check_epsilon(epsilon: float) -> float:
    """Validate a differential-privacy budget: finite and strictly positive."""
    value = _as_float("epsilon", epsilon)
    if value <= 0:
        raise ValidationError(f"epsilon must be > 0, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate a probability in the closed interval [0, 1]."""
    result = _as_float(name, value)
    if not 0.0 <= result <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {result}")
    return result


def check_positive(name: str, value: float) -> float:
    """Validate a finite, strictly positive float."""
    result = _as_float(name, value)
    if result <= 0:
        raise ValidationError(f"{name} must be > 0, got {result}")
    return result


def check_non_negative(name: str, value: float) -> float:
    """Validate a finite float that is >= 0."""
    result = _as_float(name, value)
    if result < 0:
        raise ValidationError(f"{name} must be >= 0, got {result}")
    return result


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Validate that ``low <= value <= high``."""
    result = _as_float(name, value)
    if not low <= result <= high:
        raise ValidationError(f"{name} must be in [{low}, {high}], got {result}")
    return result


def check_integer(name: str, value: int, minimum: int | None = None) -> int:
    """Validate an integer, optionally bounded below by ``minimum``."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def _as_float(name: str, value: float) -> float:
    try:
        result = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a number, got {value!r}") from exc
    if math.isnan(result) or math.isinf(result):
        raise ValidationError(f"{name} must be finite, got {result}")
    return result
