"""System glue: clients, the untrusted server, and policy configuration.

Implements the message flow of Fig. 1 / Fig. 3: clients keep a local 14-day
location database, approve or reject policies pushed by the server's Location
Policy Configuration module, and release perturbed locations; the semi-honest
server accumulates the releases and can request history re-sends under an
updated policy (contact tracing).
"""

from repro.server.localdb import LocalLocationDB
from repro.server.policy_config import PolicyConfigurator, PolicyProposal
from repro.server.pipeline import (
    AsyncShardCommitter,
    Client,
    PartitionedShardCommitters,
    Server,
    run_release_rounds,
    run_release_rounds_batched,
)
from repro.server.audit import PolicyRecord, ReleaseRecord, TransparencyLog
from repro.server.live_metrics import (
    ContactRateView,
    ContactSnapshot,
    FlowMatrixView,
    FlowSnapshot,
    LiveMetricRegistry,
    LiveMetricView,
    MonitoringUtilityView,
    batch_recompute,
    default_views,
    expected_coverage,
)

__all__ = [
    "LocalLocationDB",
    "PolicyConfigurator",
    "PolicyProposal",
    "AsyncShardCommitter",
    "Client",
    "PartitionedShardCommitters",
    "Server",
    "run_release_rounds",
    "run_release_rounds_batched",
    "PolicyRecord",
    "ReleaseRecord",
    "TransparencyLog",
    "ContactRateView",
    "ContactSnapshot",
    "FlowMatrixView",
    "FlowSnapshot",
    "LiveMetricRegistry",
    "LiveMetricView",
    "MonitoringUtilityView",
    "batch_recompute",
    "default_views",
    "expected_coverage",
]
