"""Client / untrusted-server release pipeline (Fig. 1).

``Client`` owns a true-location stream, a local rolling database, a consented
policy and a mechanism; ``Server`` accumulates snapped releases and pushes
policy updates.  :func:`run_release_rounds` drives a whole population through
a time window — the loop every experiment's "server view" comes from.

For throughput work there is a second, population-level path:
:func:`run_release_rounds_batched` releases every user's location for a
timestep in *one* :meth:`~repro.engine.PrivacyEngine.release_batch` call and
ingests the whole round via :meth:`Server.ingest_batch`.  It models the
server-side aggregate view (no per-user ``Client`` objects), which is what
the monitoring / analysis apps consume at scale.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.accounting import BudgetLedger
from repro.core.mechanisms.base import Mechanism, Release, ReleaseBatch
from repro.core.policy_graph import PolicyGraph
from repro.errors import DataError, PolicyError
from repro.geo.grid import GridWorld
from repro.mobility.trajectory import TraceDB
from repro.server.localdb import LocalLocationDB
from repro.utils.rng import ensure_rng, spawn_rngs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports core)
    from repro.engine import PrivacyEngine

__all__ = ["Client", "Server", "run_release_rounds", "run_release_rounds_batched"]

MechanismFactory = Callable[[GridWorld, PolicyGraph, float], Mechanism]


class Client:
    """A user's device: local DB, consented policy, PGLP mechanism.

    Parameters
    ----------
    user:
        User id.
    world:
        Shared location universe.
    mechanism_factory:
        Builds the PGLP mechanism for whatever policy is currently consented.
    epsilon:
        Per-release budget.
    policy:
        Initially consented policy graph.
    window:
        Local retention window (the paper's two weeks).
    """

    def __init__(
        self,
        user: int,
        world: GridWorld,
        mechanism_factory: MechanismFactory,
        epsilon: float,
        policy: PolicyGraph,
        window: int = 14 * 24,
        rng=None,
    ) -> None:
        self.user = int(user)
        self.world = world
        self.mechanism_factory = mechanism_factory
        self.epsilon = float(epsilon)
        self.local_db = LocalLocationDB(window=window)
        self.rng = ensure_rng(rng)
        self._policy: PolicyGraph | None = None
        self._mechanism: Mechanism | None = None
        self.accept_policy(policy)

    # ------------------------------------------------------------------
    @property
    def policy(self) -> PolicyGraph:
        if self._policy is None:
            raise PolicyError(f"client {self.user} has no consented policy")
        return self._policy

    @property
    def mechanism(self) -> Mechanism:
        if self._mechanism is None:
            raise PolicyError(f"client {self.user} has no consented policy")
        return self._mechanism

    def accept_policy(self, policy: PolicyGraph) -> None:
        """Consent to ``policy`` and rebuild the mechanism."""
        self._policy = policy
        self._mechanism = self.mechanism_factory(self.world, policy, self.epsilon)

    def reject_policy(self) -> None:
        """Withdraw consent: no further locations are released."""
        self._policy = None
        self._mechanism = None

    # ------------------------------------------------------------------
    def observe(self, time: int, cell: int) -> None:
        """Record the true location locally (never leaves the device raw)."""
        self.local_db.record(time, self.world.check_cell(cell))

    def release(self, time: int) -> Release:
        """Perturb and share the location observed at ``time``."""
        cell = self.local_db.location_at(time)
        if cell is None:
            raise DataError(f"client {self.user} has no observation at time {time}")
        return self.mechanism.release(cell, rng=self.rng)

    def resend_history(self, policy: PolicyGraph, start: int, end: int) -> list[tuple[int, Release]]:
        """Re-release the stored window under an updated (tracing) policy."""
        self.accept_policy(policy)
        return [
            (time, self.mechanism.release(cell, rng=self.rng))
            for time, cell in self.local_db.history(start=start, end=end)
        ]


class Server:
    """The semi-honest collector: snapped releases plus a budget ledger."""

    def __init__(self, world: GridWorld, ledger: BudgetLedger | None = None) -> None:
        self.world = world
        self.released_db = TraceDB()
        self.ledger = ledger if ledger is not None else BudgetLedger()

    def ingest(self, user: int, time: int, release: Release, purpose: str = "stream") -> int:
        """Store one release; returns the snapped cell recorded server-side."""
        cell = self.world.snap(release.point)
        self.released_db.record(user, time, cell)
        self.ledger.charge(user, time, release.epsilon, purpose=purpose)
        return cell

    def ingest_batch(
        self,
        users: Sequence[int],
        time: int,
        batch: ReleaseBatch,
        purpose: str = "stream",
    ):
        """Store a whole release round; returns the snapped cells.

        One row per user: ``batch[i]`` is user ``users[i]``'s release at
        ``time``.  Snapping is vectorized; budget charges land in the same
        ledger entries scalar :meth:`ingest` would have produced.
        """
        if len(users) != len(batch):
            raise DataError(
                f"batch of {len(batch)} releases does not match {len(users)} users"
            )
        cells = self.world.snap_batch(batch.points)
        for user, cell, epsilon in zip(users, cells, batch.epsilons):
            self.released_db.record(int(user), time, int(cell))
            self.ledger.charge(int(user), time, float(epsilon), purpose=purpose)
        return cells

    def push_policy(self, client: Client, policy: PolicyGraph) -> None:
        """Offer a policy update; the demo's clients always consent."""
        client.accept_policy(policy)


def run_release_rounds(
    world: GridWorld,
    true_db: TraceDB,
    policy: PolicyGraph,
    mechanism_factory: MechanismFactory,
    epsilon: float,
    rng=None,
    window: int = 14 * 24,
) -> tuple[Server, dict[int, Client]]:
    """Simulate the full population releasing its trace to a fresh server.

    Every user in ``true_db`` becomes a :class:`Client` under ``policy``;
    each of their check-ins is observed locally, released, and ingested.
    Returns the server (with its released TraceDB and ledger) and the
    clients, keyed by user id.
    """
    users = sorted(true_db.users())
    if not users:
        raise DataError("true trace database has no users")
    rngs = spawn_rngs(rng, len(users))
    clients = {
        user: Client(
            user,
            world,
            mechanism_factory,
            epsilon,
            policy,
            window=window,
            rng=user_rng,
        )
        for user, user_rng in zip(users, rngs)
    }
    server = Server(world)
    for checkin in true_db.checkins():
        client = clients[checkin.user]
        client.observe(checkin.time, checkin.cell)
        release = client.release(checkin.time)
        server.ingest(checkin.user, checkin.time, release)
    return server, clients


def run_release_rounds_batched(
    world: GridWorld,
    true_db: TraceDB,
    engine: "PrivacyEngine",
    rng=None,
) -> Server:
    """Release the whole population through the engine, one round per timestep.

    The population-scale counterpart of :func:`run_release_rounds`: instead
    of simulating a ``Client`` per user, each timestep's ``{user: cell}``
    snapshot becomes a single :meth:`~repro.engine.PrivacyEngine.release_batch`
    call, and the server ingests the round in bulk.  This is the hot path a
    collector serving millions of users runs; the per-client loop remains the
    reference for protocol-level behaviour (local DBs, consent, re-sends).
    """
    if not true_db.users():
        raise DataError("true trace database has no users")
    generator = ensure_rng(rng)
    server = Server(world)
    for time in true_db.times():
        snapshot = true_db.at_time(time)
        users = sorted(snapshot)
        batch = engine.release_batch([snapshot[user] for user in users], rng=generator)
        server.ingest_batch(users, time, batch)
    return server
