"""Client / untrusted-server release pipeline (Fig. 1).

``Client`` owns a true-location stream, a local rolling database, a consented
policy and a mechanism; ``Server`` accumulates snapped releases and pushes
policy updates.  :func:`run_release_rounds` drives a whole population through
a time window — the loop every experiment's "server view" comes from.

For throughput work there is a second, population-level path:
:func:`run_release_rounds_batched` releases every user's location for a
timestep in *one* :meth:`~repro.engine.PrivacyEngine.release_batch` call and
ingests the whole round via :meth:`Server.ingest_batch`.  It models the
server-side aggregate view (no per-user ``Client`` objects), which is what
the monitoring / analysis apps consume at scale.

The batched path also scales *across users*: pass ``shards=`` / ``backend=``
(or build the engine from a spec carrying an
:class:`~repro.engine.specs.ExecutionSpec`) and the population is split by a
deterministic :class:`~repro.engine.sharding.ShardPlan` whose per-user RNG
streams make the output invariant under shard count and execution backend —
a k-shard multiprocess run reproduces the 1-shard run, which itself
reproduces the per-client reference :func:`run_release_rounds`.  Sharded
runs ingest *streamingly*: each shard's releases are committed via
:meth:`Server.ingest_shard` as the shard completes, rather than waiting on
a full population merge.

Commits can additionally run *asynchronously*: :class:`AsyncShardCommitter`
(``server.async_committer(max_pending=k)``) moves :meth:`Server.ingest_shard`
onto a background committer thread behind a bounded queue, so the producer —
the release computation draining :func:`stream_shard_releases` — overlaps
with commit work instead of alternating with it.  The queue bound is the
backpressure contract: at most ``max_pending`` completed shards wait
uncommitted, and a producer that outruns the committer blocks on ``submit``
instead of buffering the whole population.  Ordering is unchanged — shards
commit one at a time, each ``(time, user)``-ordered within itself, in
submission order — so per-user server state is element-wise identical to
synchronous ingestion (``run_release_rounds_batched(..., async_ingest=True)``
is the wired-up form).
"""

from __future__ import annotations

import queue
import threading
import time as _time
from bisect import bisect_right
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.accounting import BudgetLedger
from repro.core.mechanisms.base import Mechanism, Release, ReleaseBatch
from repro.core.workspace import RoundWorkspace
from repro.core.policy_graph import PolicyGraph
from repro.errors import CommitStalledError, DataError, PolicyError, ValidationError
from repro.geo.grid import GridWorld
from repro.mobility.trajectory import TraceDB
from repro.server.localdb import LocalLocationDB
from repro.utils.rng import ensure_rng, spawn_rngs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports core)
    from repro.engine import PrivacyEngine

__all__ = [
    "AsyncShardCommitter",
    "Client",
    "PartitionedShardCommitters",
    "Server",
    "run_release_rounds",
    "run_release_rounds_batched",
]

MechanismFactory = Callable[[GridWorld, PolicyGraph, float], Mechanism]


class Client:
    """A user's device: local DB, consented policy, PGLP mechanism.

    Parameters
    ----------
    user:
        User id.
    world:
        Shared location universe.
    mechanism_factory:
        Builds the PGLP mechanism for whatever policy is currently consented.
    epsilon:
        Per-release budget.
    policy:
        Initially consented policy graph.
    window:
        Local retention window (the paper's two weeks).
    """

    def __init__(
        self,
        user: int,
        world: GridWorld,
        mechanism_factory: MechanismFactory,
        epsilon: float,
        policy: PolicyGraph,
        window: int = 14 * 24,
        rng=None,
    ) -> None:
        self.user = int(user)
        self.world = world
        self.mechanism_factory = mechanism_factory
        self.epsilon = float(epsilon)
        self.local_db = LocalLocationDB(window=window)
        self.rng = ensure_rng(rng)
        self._policy: PolicyGraph | None = None
        self._mechanism: Mechanism | None = None
        self.accept_policy(policy)

    # ------------------------------------------------------------------
    @property
    def policy(self) -> PolicyGraph:
        if self._policy is None:
            raise PolicyError(f"client {self.user} has no consented policy")
        return self._policy

    @property
    def mechanism(self) -> Mechanism:
        if self._mechanism is None:
            raise PolicyError(f"client {self.user} has no consented policy")
        return self._mechanism

    def accept_policy(self, policy: PolicyGraph) -> None:
        """Consent to ``policy`` and rebuild the mechanism."""
        self._policy = policy
        self._mechanism = self.mechanism_factory(self.world, policy, self.epsilon)

    def reject_policy(self) -> None:
        """Withdraw consent: no further locations are released."""
        self._policy = None
        self._mechanism = None

    # ------------------------------------------------------------------
    def observe(self, time: int, cell: int) -> None:
        """Record the true location locally (never leaves the device raw)."""
        self.local_db.record(time, self.world.check_cell(cell))

    def release(self, time: int) -> Release:
        """Perturb and share the location observed at ``time``."""
        cell = self.local_db.location_at(time)
        if cell is None:
            raise DataError(f"client {self.user} has no observation at time {time}")
        return self.mechanism.release(cell, rng=self.rng)

    def resend_history(self, policy: PolicyGraph, start: int, end: int) -> list[tuple[int, Release]]:
        """Re-release the stored window under an updated (tracing) policy."""
        self.accept_policy(policy)
        return [
            (time, self.mechanism.release(cell, rng=self.rng))
            for time, cell in self.local_db.history(start=start, end=end)
        ]


class Server:
    """The semi-honest collector: snapped releases plus a budget ledger.

    Parameters
    ----------
    world:
        The snapping grid shared with the clients.
    ledger:
        Budget ledger (a fresh uncapped one by default).
    store:
        Optional :class:`~repro.store.TraceStore`.  When set, every
        :meth:`ingest_shard` call durably commits the shard — release rows
        plus its ``(shard, round)`` recovery marks — in one SQLite
        transaction *before* touching in-memory state, so a crash at any
        point leaves only whole shards behind (the resume contract of
        ``docs/persistence.md``).
    out_of_core:
        Requires ``store``.  The released trace then lives *only* on disk:
        ``released_db`` becomes a read-only
        :class:`~repro.store.StoredTraceDB` view and shard ingestion skips
        the in-memory mirror, bounding server RSS by the largest single
        shard instead of the population.
    """

    def __init__(
        self,
        world: GridWorld,
        ledger: BudgetLedger | None = None,
        store=None,
        out_of_core: bool = False,
    ) -> None:
        self.world = world
        self.store = store
        self.out_of_core = bool(out_of_core)
        if self.out_of_core:
            if store is None:
                raise ValidationError("out_of_core=True requires a TraceStore")
            from repro.store.outofcore import StoredTraceDB

            self.released_db = StoredTraceDB(store)
        else:
            self.released_db = TraceDB()
        self.ledger = ledger if ledger is not None else BudgetLedger()
        # Serializes the commit/mutate section of ingest_shard so several
        # partitioned committer threads can ingest concurrently: the store's
        # single SQLite connection must not interleave transactions, and
        # TraceDB/BudgetLedger bookkeeping is not atomic under free
        # threading.  Snapping and lexsort stay outside the lock.
        self._ingest_lock = threading.Lock()
        self._metrics = None

    # ------------------------------------------------------------------
    # Live metric views (HTAP incremental analytics)
    # ------------------------------------------------------------------
    @property
    def metrics(self):
        """The attached :class:`~repro.server.live_metrics.LiveMetricRegistry`, if any."""
        return self._metrics

    def attach_metrics(self, views, expected):
        """Maintain ``views`` live from this server's shard commit path.

        Every subsequent :meth:`ingest_shard` (including commits arriving
        through :class:`AsyncShardCommitter` and
        :class:`PartitionedShardCommitters` — all three funnel through the
        same choke point) folds its shard into a
        :class:`~repro.server.live_metrics.LiveMetricRegistry` built over
        ``expected`` (``shard -> rounds``, see
        :func:`~repro.server.live_metrics.expected_coverage`).  Read the
        live values with :meth:`metrics_at`.

        Live views ride the *sharded* ingest path: attaching makes the
        ``shard=`` argument to :meth:`ingest_shard` mandatory (it keys the
        registry's deltas, exactly like the store's commit marks) and makes
        :meth:`ingest_batch` refuse — the round-major path carries no shard
        identity to fold under.

        Returns the registry.  Attaching twice is a
        :class:`~repro.errors.ValidationError`: the first registry's folded
        state would be silently lost.
        """
        from repro.server.live_metrics import LiveMetricRegistry

        if self._metrics is not None:
            raise ValidationError("live metric views are already attached to this server")
        self._metrics = LiveMetricRegistry(views, expected)
        return self._metrics

    def metrics_at(self, round: int):
        """Snapshot-consistent live metric values covering rows ≤ ``round``.

        Delegates to :meth:`LiveMetricRegistry.at
        <repro.server.live_metrics.LiveMetricRegistry.at>`: a lock-free
        O(1) lookup of the frozen per-round value map, safe to call while
        commits are in flight.  Raises
        :class:`~repro.errors.SnapshotUnavailableError` for a round whose
        coverage has not fully committed yet.
        """
        if self._metrics is None:
            raise ValidationError(
                "no live metric views attached; call attach_metrics() first"
            )
        return self._metrics.at(round)

    def ingest(self, user: int, time: int, release: Release, purpose: str = "stream") -> int:
        """Store one release; returns the snapped cell recorded server-side."""
        cell = self.world.snap(release.point)
        self.released_db.record(user, time, cell)
        self.ledger.charge(user, time, release.epsilon, purpose=purpose)
        return cell

    def ingest_batch(
        self,
        users: Sequence[int],
        time: int,
        batch: ReleaseBatch,
        purpose: str = "stream",
        snapped=None,
    ):
        """Store a whole release round in bulk.

        Parameters
        ----------
        users:
            One user id per batch row: ``batch[i]`` is user ``users[i]``'s
            release at ``time``.
        time:
            The round's timestep.
        batch:
            The round's releases (``len(batch) == len(users)``, else
            :class:`~repro.errors.DataError`).
        purpose:
            Ledger purpose tag (defaults to the streaming feed).
        snapped:
            Optional precomputed snapped cells for the batch (one per row) —
            the fused pipeline already snapped during
            :meth:`~repro.engine.PrivacyEngine.release_round_fused`, so
            passing ``FusedRound.snapped`` here skips a second
            :meth:`~repro.geo.grid.GridWorld.snap_batch` pass.  Snapping is
            deterministic, so supplying it never changes recorded state.

        Returns
        -------
        numpy.ndarray
            The snapped cell per row.  Snapping is vectorized; recorded
            trace rows and budget charges are identical to what per-row
            scalar :meth:`ingest` calls would have produced.
        """
        if self._metrics is not None:
            raise DataError(
                "live metric views ride the sharded ingest path "
                "(ingest_shard with shard=); ingest_batch carries no shard "
                "identity to fold under"
            )
        if len(users) != len(batch):
            raise DataError(
                f"batch of {len(batch)} releases does not match {len(users)} users"
            )
        if snapped is None:
            cells = self.world.snap_batch(batch.points)
        else:
            cells = np.asarray(snapped)
            if cells.shape != (len(batch),):
                raise DataError(
                    f"snapped cells of shape {cells.shape} do not match "
                    f"batch of {len(batch)} releases"
                )
        for user, cell, epsilon in zip(users, cells, batch.epsilons):
            self.released_db.record(int(user), time, int(cell))
            self.ledger.charge(int(user), time, float(epsilon), purpose=purpose)
        return cells

    def ingest_shard(
        self,
        users,
        times,
        batch: ReleaseBatch,
        purpose: str = "stream",
        shard: int | None = None,
    ):
        """Stream one population shard's releases into the server.

        The streaming counterpart of :meth:`ingest_batch`: where that method
        takes one *round* (one timestep, many users), this takes one
        *shard* (many users, their whole traces) the moment the shard's
        worker finishes — which is how the sharded pipeline ingests results
        as they complete instead of holding every shard for a full
        merge-and-lexsort barrier.

        Parameters
        ----------
        users / times:
            One user id and timestep per batch row (row ``i`` of ``batch``
            is user ``users[i]``'s release at ``times[i]``), in whatever
            order the shard produced them.
        batch:
            The shard's releases (``len(batch)`` must match, else
            :class:`~repro.errors.DataError`).
        purpose:
            Ledger purpose tag (defaults to the streaming feed).
        shard:
            The shard's index in the run's plan.  Required when the server
            is store-backed (it keys the durable ``(shard, round)`` commit
            marks); ignored otherwise, so existing callers and subclasses
            need not pass it.

        Returns
        -------
        numpy.ndarray
            The snapped cell per input row (input order, not commit order).

        Durability
        ----------
        On a store-backed server the whole shard — snapped release rows
        plus one commit mark per round it contains — is written in a single
        SQLite transaction *before* any in-memory mutation.  A crash
        therefore never leaves the store ahead of or torn relative to what
        a resume can rebuild: either the shard is fully durable (and will
        be replayed / skipped) or absent (and will be re-derived).

        Commit order and determinism
        ----------------------------
        Rows are committed in ``(time, user)`` order *within the shard*.
        Across shards the arrival order follows backend scheduling, but
        every user lives in exactly one shard, so all per-user state — the
        released trace rows, and each user's ledger total (charges arrive
        in that user's time order) — is identical to what the barrier path
        (:func:`~repro.engine.sharding.sharded_release_rounds` +
        :meth:`ingest_batch` per round) produces.  Only the interleaving of
        *different* users' ledger entries can vary with scheduling.
        """
        users = np.asarray(users, dtype=int)
        times = np.asarray(times, dtype=int)
        if len(users) != len(batch) or len(times) != len(batch):
            raise DataError(
                f"shard of {len(batch)} releases does not match "
                f"{len(users)} users / {len(times)} times"
            )
        cells = self.world.snap_batch(batch.points)
        if self.store is not None and shard is None:
            raise DataError(
                "store-backed ingest_shard requires the shard index "
                "(pass shard=) to key its durable commit marks"
            )
        if self._metrics is not None:
            if shard is None:
                raise DataError(
                    "live metric views require the shard index (pass shard=) "
                    "to key their delta partials"
                )
            if batch.cells is None:
                raise DataError(
                    "live metric views require batch.cells to carry the "
                    "ground-truth cells (the shard streaming contract)"
                )
        order = np.lexsort((users, times))  # commit by (time, user)
        with self._ingest_lock:
            if self.store is not None:
                # batch.cells carry the ground-truth cells (the shard
                # streaming contract): the store keeps only their aggregate
                # accelerator summaries, never the per-row values.
                self.store.commit_shard(
                    int(shard),
                    users,
                    times,
                    ReleaseBatch(
                        points=batch.points,
                        exact=batch.exact,
                        epsilons=batch.epsilons,
                        cells=np.asarray(cells, dtype=np.int64),
                        mechanism=batch.mechanism,
                    ),
                    true_cells=(
                        None
                        if batch.cells is None
                        else np.asarray(batch.cells, dtype=np.int64)
                    ),
                )
            if not self.out_of_core:
                self.released_db.record_many(users[order], times[order], cells[order])
            self.ledger.charge_many(
                users[order], times[order], batch.epsilons[order], purpose=purpose
            )
            if self._metrics is not None:
                # Fold inside the commit section: the registry sees exactly
                # the committed rows, once, no matter which committer
                # (sync / async / partitioned) delivered them.  batch.cells
                # are the ground-truth cells (the shard streaming
                # contract); `cells` the server-side snapped view.
                self._metrics.ingest(
                    int(shard),
                    users,
                    times,
                    batch.points,
                    np.asarray(batch.cells, dtype=int),
                    np.asarray(cells, dtype=int),
                )
        return cells

    def replay_shard(
        self,
        low_user: int,
        high_user: int,
        purpose: str = "stream",
        shard: int | None = None,
        true_cells: "Callable | None" = None,
    ):
        """Rebuild in-memory state for one durably committed shard.

        The resume counterpart of :meth:`ingest_shard`: reads the shard's
        rows back from the store (shards own contiguous user ranges, so
        ``[low_user, high_user]`` identifies one) in the same ``(time,
        user)`` order the original commit used, and re-applies the
        in-memory effects — trace rows (unless ``out_of_core``, where the
        view already serves them) and ledger charges.  Per-user server
        state after a replay is element-wise identical to a fresh commit.

        When live metric views are attached, the replay also rebuilds the
        registry's folded state: the store additionally yields the released
        points (SQLite REALs round-trip float64 exactly), and ``shard`` /
        ``true_cells`` become mandatory — ``true_cells(users, times)`` must
        resolve the ground-truth cells, which the store deliberately never
        persists.  Because delta folds canonicalise row order, a replayed
        fold is bit-identical to the original commit's, which is how a
        killed-and-resumed run converges to the uninterrupted run's live
        values.

        Returns the number of rows replayed.
        """
        if self.store is None:
            raise DataError("replay_shard requires a store-backed server")
        if self._metrics is not None:
            if shard is None or true_cells is None:
                raise DataError(
                    "replaying into live metric views requires shard= and "
                    "true_cells= (a resolver mapping row (users, times) to "
                    "ground-truth cells)"
                )
            users, times, cells, points, _exact, epsilons = self.store.shard_release_rows(
                low_user, high_user
            )
        else:
            users, times, cells, epsilons = self.store.shard_rows(low_user, high_user)
        if not self.out_of_core:
            self.released_db.record_many(users, times, cells)
        self.ledger.charge_many(users, times, epsilons, purpose=purpose)
        if self._metrics is not None:
            self._metrics.ingest(
                int(shard),
                users,
                times,
                points,
                np.asarray(true_cells(users, times), dtype=int),
                cells,
            )
        return len(users)

    def push_policy(self, client: Client, policy: PolicyGraph) -> None:
        """Offer a policy update; the demo's clients always consent."""
        client.accept_policy(policy)

    def async_committer(
        self, max_pending: int = 2, purpose: str = "stream"
    ) -> "AsyncShardCommitter":
        """A bounded background committer feeding :meth:`ingest_shard`.

        See :class:`AsyncShardCommitter` for the ordering and backpressure
        contract.  Use as a context manager so the queue is always drained
        (and any commit error re-raised) when the producing loop ends.
        """
        return AsyncShardCommitter(self, max_pending=max_pending, purpose=purpose)

    def partitioned_committers(
        self,
        partitions: int,
        users: Sequence[int],
        max_pending: int = 2,
        purpose: str = "stream",
        close_timeout: float | None = 60.0,
    ) -> "PartitionedShardCommitters":
        """``partitions`` user-range committer partitions over ``users``.

        Each partition owns a contiguous range of the sorted population and
        its own :class:`AsyncShardCommitter` thread, so ingest scales out
        with the release workers instead of funnelling every shard through
        one commit thread (LSST-style partitioned ingest).  Valid because
        per-user server state is scheduling-independent — see
        :class:`PartitionedShardCommitters` for the routing and ordering
        rules.
        """
        return PartitionedShardCommitters(
            self,
            users=users,
            partitions=partitions,
            max_pending=max_pending,
            purpose=purpose,
            close_timeout=close_timeout,
        )


class AsyncShardCommitter:
    """Commit population shards on a background thread, bounded by backpressure.

    The synchronous streaming path alternates between computing shards and
    committing them: the main thread blocks inside
    :meth:`Server.ingest_shard` while backend workers sit idle.  This
    committer moves commits onto one daemon thread behind a
    ``queue.Queue(maxsize=max_pending)``, so release computation and commit
    work overlap.

    Contract
    --------
    * **Ordering** — shards commit strictly in submission order, one at a
      time, each ordered by ``(time, user)`` within itself (the
      :meth:`Server.ingest_shard` contract).  Since every user lives in
      exactly one shard, all per-user server state is element-wise identical
      to synchronous ingestion; only the interleaving of *different* users'
      ledger entries can differ, exactly as in the synchronous streaming
      path.
    * **Backpressure** — at most ``max_pending`` completed shards wait
      uncommitted; :meth:`submit` blocks once the bound is reached, so a
      fast producer cannot buffer an unbounded population in memory.
    * **Atomicity / failure** — a shard is committed whole or not at all:
      after a commit error the committer stops committing (it keeps
      consuming, so blocked producers always unblock, and discards the
      remainder) and re-raises the original exception from :meth:`submit`
      or :meth:`close`.  A producer that dies mid-stream leaves only whole,
      fully-committed shards behind.
    * **Liveness** — :meth:`close` never blocks forever: the drain thread is
      joined against ``close_timeout`` (default 60s) and a committer that
      fails to drain — e.g. a commit wedged on a dead store handle — raises
      :class:`~repro.errors.CommitStalledError` naming the shard ids still
      pending, so a stalled pipeline surfaces as a diagnosable error.

    Use as a context manager; on normal exit :meth:`close` drains every
    queued shard before returning, so the server is fully caught up.
    """

    def __init__(
        self,
        server: Server,
        max_pending: int = 2,
        purpose: str = "stream",
        close_timeout: float | None = 60.0,
    ) -> None:
        if int(max_pending) < 1:
            raise ValidationError(f"max_pending must be >= 1, got {max_pending}")
        if close_timeout is not None and float(close_timeout) <= 0:
            raise ValidationError(f"close_timeout must be > 0 or None, got {close_timeout}")
        self._server = server
        self._purpose = purpose
        self._close_timeout = None if close_timeout is None else float(close_timeout)
        self._queue: queue.Queue = queue.Queue(maxsize=int(max_pending))
        self._error: BaseException | None = None
        self._closed = False
        #: submission seq -> shard label, removed as each commit finishes;
        #: what survives here is exactly what a stalled close() reports.
        self._pending_labels: dict[int, object] = {}
        self._seq = 0
        self._thread = threading.Thread(
            target=self._drain, name="shard-committer", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            seq, users, times, batch, shard = item
            if self._error is None:
                try:
                    if shard is None:
                        # Keep the historical 3-arg call shape so Server
                        # subclasses that predate store-backed ingestion
                        # (and accept no shard kwarg) keep working.
                        self._server.ingest_shard(users, times, batch, purpose=self._purpose)
                    else:
                        self._server.ingest_shard(
                            users, times, batch, purpose=self._purpose, shard=shard
                        )
                except BaseException as exc:  # re-raised on submit/close
                    self._error = exc
            self._pending_labels.pop(seq, None)

    def submit(self, users, times, batch: ReleaseBatch, shard: int | None = None) -> None:
        """Queue one shard for commit, blocking while ``max_pending`` wait.

        Raises the first commit error (if any) instead of queueing more work
        on a server whose stream already failed — including when the
        committer was already closed, where the pending worker error still
        wins over the "closed" misuse report (a caller that races a failed
        shutdown should see the real failure, not a
        :class:`~repro.errors.ValidationError` masking it).

        ``shard`` is forwarded to :meth:`Server.ingest_shard` for
        store-backed servers; omit it for in-memory ingestion.
        """
        if self._error is not None:
            self.close()  # re-raises the pending commit error
        if self._closed:
            raise ValidationError("cannot submit to a closed committer")
        self._seq += 1
        seq = self._seq
        self._pending_labels[seq] = seq if shard is None else int(shard)
        self._queue.put((seq, users, times, batch, shard))

    def close(self, timeout: float | None = None) -> None:
        """Drain pending commits, stop the thread, re-raise any commit error.

        Idempotent; after closing, :meth:`submit` refuses further shards.

        The drain thread is joined with a deadline (``timeout``, defaulting
        to the constructor's ``close_timeout``; ``None`` waits forever).  If
        the thread is still alive when the deadline passes — a commit wedged
        inside a dead store handle, a producer that died mid-submit with the
        queue full — :class:`~repro.errors.CommitStalledError` is raised
        naming the shard ids still pending, instead of blocking the caller
        forever.  A later :meth:`close` call retries the join, so a
        committer that eventually drains can still report its commit error.
        """
        limit = self._close_timeout if timeout is None else float(timeout)
        self._closed = True
        if self._thread.is_alive():
            deadline = None if limit is None else _time.monotonic() + limit
            try:
                # The sentinel has to queue behind whatever is pending; a
                # full queue under a wedged drain thread must not block
                # close() forever.
                self._queue.put(None, timeout=limit)
            except queue.Full:
                pass
            remaining = None if deadline is None else max(0.0, deadline - _time.monotonic())
            self._thread.join(timeout=remaining)
            if self._thread.is_alive():
                pending = list(self._pending_labels.values())
                raise CommitStalledError(
                    f"shard committer failed to drain within {limit:g}s; "
                    f"{len(pending)} shard(s) still pending commit: "
                    f"{pending if pending else '(sentinel only)'}"
                )
        if self._error is not None:
            raise self._error

    @property
    def pending(self) -> int:
        """Shards queued but not yet committed (approximate, for monitoring)."""
        return self._queue.qsize()

    def __enter__(self) -> "AsyncShardCommitter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
            return
        try:
            # The producer already failed; finish whole queued shards but let
            # the producer's exception win over any commit error.
            self.close()
        except BaseException as commit_error:
            # Keep the suppressed commit failure visible on the surviving
            # exception (PEP 678 notes; no-op on interpreters without them).
            if exc is not None and hasattr(exc, "add_note"):
                exc.add_note(
                    f"shard committer also failed while draining: {commit_error!r}"
                )

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"pending={self.pending}"
        return f"AsyncShardCommitter(max_pending={self._queue.maxsize}, {state})"


class PartitionedShardCommitters:
    """Per-user-range committer partitions: parallel ingest, one owner per user.

    ``partitions`` independent :class:`AsyncShardCommitter` threads, each
    owning a contiguous range of the sorted user population (the same
    balanced split rule :class:`~repro.engine.sharding.ShardPlan` uses for
    shards).  :meth:`submit` routes a **whole shard** to the partition that
    owns the shard's lowest user id, so partitions commit concurrently while
    per-user guarantees survive intact.

    Routing and ordering rules
    --------------------------
    * Routing granularity is a whole shard: all rows submitted together stay
      together.  A shard belongs to the partition owning its first (lowest)
      user — shards and partitions are both contiguous ranges of the same
      sorted user list, so this keeps each partition's shard set contiguous.
    * Every user lives in exactly one shard, and every shard is routed to
      exactly one partition, so all of one user's rows flow through a single
      committer in submission order — per-user server state (trace rows,
      ledger totals in time order) is element-wise identical to synchronous
      or single-committer ingestion.  Only the interleaving of *different*
      users' ledger entries varies with scheduling, exactly as in the
      single-committer contract.
    * Commits from different partitions are serialized at the server by its
      ingest lock (one SQLite transaction / bookkeeping section at a time);
      partitioning buys overlap of the pre-commit work (snap, lexsort,
      pickling) and bounded per-partition backpressure, not torn state.

    Failure semantics follow :class:`AsyncShardCommitter`: :meth:`close`
    closes every partition (bounded by each one's ``close_timeout``), then
    re-raises the first error with any other partitions' failures attached
    as PEP 678 notes.
    """

    def __init__(
        self,
        server: Server,
        users: Sequence[int],
        partitions: int,
        max_pending: int = 2,
        purpose: str = "stream",
        close_timeout: float | None = 60.0,
    ) -> None:
        population = sorted({int(user) for user in users})
        if not population:
            raise ValidationError("partitioned committers need a non-empty user population")
        if int(partitions) < 1:
            raise ValidationError(f"partitions must be >= 1, got {partitions}")
        requested = int(partitions)
        n = len(population)
        k = min(requested, n)  # empty partitions would never receive a shard
        base, extra = divmod(n, k)
        self._starts: list[int] = []
        cursor = 0
        for index in range(k):
            self._starts.append(population[cursor])
            cursor += base + (1 if index < extra else 0)
        self._low = population[0]
        self._high = population[-1]
        self._committers = [
            AsyncShardCommitter(
                server,
                max_pending=max_pending,
                purpose=purpose,
                close_timeout=close_timeout,
            )
            for _ in range(k)
        ]

    @property
    def partitions(self) -> int:
        """Number of live partitions (capped at the population size)."""
        return len(self._committers)

    def partition_of(self, user: int) -> int:
        """Index of the partition owning ``user``'s contiguous range."""
        user = int(user)
        if not self._low <= user <= self._high:
            raise ValidationError(
                f"user {user} is outside the partitioned population "
                f"[{self._low}, {self._high}]"
            )
        return max(0, bisect_right(self._starts, user) - 1)

    def submit(self, users, times, batch: ReleaseBatch, shard: int | None = None) -> None:
        """Route one whole shard to its owning partition's committer.

        Blocks on that partition's ``max_pending`` bound; re-raises the
        first commit error of *that* partition, like
        :meth:`AsyncShardCommitter.submit`.
        """
        if len(users) == 0:
            return
        owner = self.partition_of(int(users[0]))
        self._committers[owner].submit(users, times, batch, shard=shard)

    @property
    def pending(self) -> int:
        """Shards queued but uncommitted across all partitions (approximate)."""
        return sum(committer.pending for committer in self._committers)

    def close(self, timeout: float | None = None) -> None:
        """Close every partition; first error wins, the rest become notes."""
        errors: list[BaseException] = []
        for committer in self._committers:
            try:
                committer.close(timeout=timeout)
            except BaseException as exc:  # noqa: BLE001 - collected, re-raised
                errors.append(exc)
        if errors:
            primary = errors[0]
            for extra in errors[1:]:
                if hasattr(primary, "add_note"):
                    primary.add_note(f"another partition also failed: {extra!r}")
            raise primary

    def __enter__(self) -> "PartitionedShardCommitters":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
            return
        try:
            # The producer already failed; drain whole queued shards but let
            # the producer's exception win over any commit error.
            self.close()
        except BaseException as commit_error:  # noqa: BLE001
            if exc is not None and hasattr(exc, "add_note"):
                exc.add_note(
                    f"partitioned shard committers also failed while draining: "
                    f"{commit_error!r}"
                )

    def __repr__(self) -> str:
        return (
            f"PartitionedShardCommitters(partitions={self.partitions}, "
            f"pending={self.pending})"
        )


def run_release_rounds(
    world: GridWorld,
    true_db: TraceDB,
    policy: PolicyGraph,
    mechanism_factory: MechanismFactory,
    epsilon: float,
    rng=None,
    window: int = 14 * 24,
) -> tuple[Server, dict[int, Client]]:
    """Simulate the full population releasing its trace to a fresh server.

    Every user in ``true_db`` becomes a :class:`Client` under ``policy``;
    each of their check-ins is observed locally, released, and ingested.

    Parameters
    ----------
    world / true_db / policy:
        The universe, the ground-truth traces, and the consented policy.
    mechanism_factory:
        ``factory(world, policy, epsilon) -> Mechanism`` used per client.
    epsilon:
        Per-release budget.
    rng:
        Seed source; each client gets an independent child stream via
        :func:`~repro.utils.rng.spawn_rngs` over the *sorted* user list, so
        results do not depend on iteration order — and the sharded batched
        path (:func:`run_release_rounds_batched` with ``shards=``) spawns
        the very same streams, making this loop its element-wise reference.
    window:
        Clients' local retention window (the paper's two weeks).

    Returns
    -------
    (Server, dict[int, Client])
        The server (with its released TraceDB and ledger) and the clients,
        keyed by user id.
    """
    users = sorted(true_db.users())
    if not users:
        raise DataError("true trace database has no users")
    rngs = spawn_rngs(rng, len(users))
    clients = {
        user: Client(
            user,
            world,
            mechanism_factory,
            epsilon,
            policy,
            window=window,
            rng=user_rng,
        )
        for user, user_rng in zip(users, rngs)
    }
    server = Server(world)
    for checkin in true_db.checkins():
        client = clients[checkin.user]
        client.observe(checkin.time, checkin.cell)
        release = client.release(checkin.time)
        server.ingest(checkin.user, checkin.time, release)
    return server, clients


def run_release_rounds_batched(
    world: GridWorld,
    true_db: TraceDB,
    engine: "PrivacyEngine",
    rng=None,
    shards: int | None = None,
    backend=None,
    async_ingest: "bool | int" = False,
    ingest_partitions: int | None = None,
    store=None,
    resume: bool = False,
    out_of_core: bool = False,
    live_metrics=False,
) -> Server:
    """Release the whole population through the engine, one round per timestep.

    The population-scale counterpart of :func:`run_release_rounds`: instead
    of simulating a ``Client`` per user, whole rounds go through
    :meth:`~repro.engine.PrivacyEngine.release_batch` and the server ingests
    them in bulk via :meth:`Server.ingest_batch`.  This is the hot path a
    collector serving millions of users runs; the per-client loop remains the
    reference for protocol-level behaviour (local DBs, consent, re-sends).

    Parameters
    ----------
    world:
        Shared location universe (also the server's snapping grid).
    true_db:
        Ground-truth traces to release (must have at least one user).
    engine:
        The :class:`~repro.engine.PrivacyEngine` every release goes through.
    rng:
        Seed source (``None`` / int / generator, per
        :func:`~repro.utils.rng.ensure_rng`).
    shards:
        Number of population shards (>= 1).  Selecting sharding switches the
        randomness layout from one shared stream to *per-user* streams
        (spawned :func:`~repro.utils.rng.spawn_rngs`-style from ``rng`` over
        the sorted user list), so the result is identical for every shard
        count and backend — and element-wise equal to the seeded
        :func:`run_release_rounds` client reference.
    backend:
        Execution backend for the shards — a registry name (``"serial"``,
        ``"thread"``, ``"process"``) or a live
        :class:`~repro.engine.backends.ExecutionBackend` instance.  When
        only one of ``shards`` / ``backend`` is given, the other falls back
        to the engine spec's execution block (if any) before the serial /
        1-shard defaults.
    async_ingest:
        ``False`` (default) commits each shard synchronously on the
        producing thread.  ``True`` (or an ``int`` queue depth; ``True``
        means 2) commits through an :class:`AsyncShardCommitter` instead,
        overlapping commit work with release computation behind a bounded
        backpressure queue — per-user server state is element-wise
        unchanged (see the committer's contract).  Requires the sharded
        path: the single-stream layout has no shard commits to overlap, so
        requesting async ingestion without ``shards`` / ``backend`` (or a
        spec execution block) raises :class:`~repro.errors.ValidationError`
        rather than silently switching RNG layouts.
    ingest_partitions:
        Scale ingestion itself out: commit through ``n`` per-user-range
        committer partitions (:meth:`Server.partitioned_committers`) instead
        of one committer thread, each shard routed to the partition owning
        its lowest user.  Implies asynchronous ingestion (``async_ingest``
        then only sets the per-partition queue depth) and, like it,
        requires the sharded path.  Per-user server state is element-wise
        unchanged — see :class:`PartitionedShardCommitters`.
    store:
        Optional durable store — a live :class:`~repro.store.TraceStore`,
        a path, or ``None``.  When set, every shard commits transactionally
        with its ``(shard, round)`` recovery marks, and the run can be
        resumed after a crash (see ``resume``).  Falls back to the engine
        spec's execution block (``ExecutionSpec.store``).  Durability rides
        the sharded streaming path only: the single-stream layout advances
        one shared RNG sequentially and therefore cannot skip committed
        work, so a store without ``shards`` / ``backend`` raises
        :class:`~repro.errors.ValidationError`.
    resume:
        Continue an interrupted run recorded in ``store``.  The store's
        manifest (engine spec hash, shard-plan fingerprint, world shape)
        must match this run — :class:`~repro.errors.ResumeMismatchError`
        otherwise — after which fully committed shards are *replayed* from
        disk (not re-derived) and only the missing shards execute.  Because
        every shard is a pure function of its users' seed streams, the
        resumed result is bit-identical to the uninterrupted run.
    out_of_core:
        With ``store``: keep the released trace on disk only.  The returned
        server's ``released_db`` is a read-only
        :class:`~repro.store.StoredTraceDB` view and ingestion skips the
        in-memory mirror, bounding memory by the largest single shard.
    live_metrics:
        Maintain analytical aggregates *while commits continue* (the HTAP
        incremental path, see :mod:`repro.server.live_metrics`).  ``True``
        attaches the default E1 + E2 + E11 view set
        (:func:`~repro.server.live_metrics.default_views`); a sequence of
        :class:`~repro.server.live_metrics.LiveMetricView` instances
        attaches those.  Read with ``server.metrics_at(round=r)`` — every
        frozen value is bit-identical to the batch recomputation.  On a
        resumed run the replayed shards are folded back in, so the rebuilt
        live state equals a never-killed run's.  Rides the sharded
        streaming path only (deltas are keyed by shard), like ``store``;
        falls back to the engine spec's execution block
        (``ExecutionSpec.live_metrics``).

    Returns
    -------
    Server
        Fresh server holding the released (snapped) TraceDB and the budget
        ledger for the whole run.

    Determinism notes
    -----------------
    When neither ``shards`` nor ``backend`` is given (and the engine's spec
    carries no :class:`~repro.engine.specs.ExecutionSpec`), the original
    single-stream path runs: one generator drawn time-major across rounds,
    element-wise equal to scalar ``engine.release`` calls in (time, user)
    order.  Any sharding request switches to the per-user-stream contract
    above; the two layouts consume ``rng`` differently, so their outputs
    differ from each other (each is individually reproducible).
    """
    if not true_db.users():
        raise DataError("true trace database has no users")
    execution = engine.spec.execution if engine.spec is not None else None
    if execution is not None:
        # The spec's execution block supplies store defaults the same way it
        # supplies shards/backend: explicit arguments win, spec fills gaps.
        if store is None and getattr(execution, "store", None):
            store = execution.store
        resume = bool(resume or getattr(execution, "resume", False))
        if live_metrics is False and getattr(execution, "live_metrics", False):
            live_metrics = True
    if ingest_partitions is not None and int(ingest_partitions) < 1:
        raise ValidationError(f"ingest_partitions must be >= 1, got {ingest_partitions}")
    if shards is None and backend is None and execution is None:
        if async_ingest or ingest_partitions is not None:
            raise ValidationError(
                "async ingestion rides the sharded streaming path; "
                "pass shards= and/or backend= to enable it"
            )
        if store is not None or resume or out_of_core:
            raise ValidationError(
                "a durable store rides the sharded streaming path (shard "
                "commits are its recovery unit); pass shards= and/or "
                "backend= to enable it"
            )
        if live_metrics:
            raise ValidationError(
                "live metric views ride the sharded streaming path (deltas "
                "are keyed by shard commits); pass shards= and/or backend= "
                "to enable them"
            )
        generator = ensure_rng(rng)
        server = Server(world)
        # One fused release->snap pass per round over a single reused
        # workspace: zero allocations per round from the second round on,
        # element-wise identical to the staged release_batch + snap_batch
        # path (same RNG stream, same floating-op order).  Bare mechanisms
        # (accepted by some callers in place of an engine) take the staged
        # path unchanged.
        fused_round = getattr(engine, "release_round_fused", None)
        workspace = (
            RoundWorkspace.for_population(len(true_db.users()))
            if fused_round is not None
            else None
        )
        for time in true_db.times():
            snapshot = true_db.at_time(time)
            users = sorted(snapshot)
            cells = [snapshot[user] for user in users]
            if fused_round is not None:
                fused = fused_round(cells, rng=generator, workspace=workspace)
                server.ingest_batch(users, time, fused.batch, snapped=fused.snapped)
            else:
                batch = engine.release_batch(cells, rng=generator)
                server.ingest_batch(users, time, batch)
        return server

    from contextlib import ExitStack

    from repro.engine.sharding import ShardPlan, stream_shard_releases

    # Each half of the spec's execution block is an independent default, so
    # overriding just the backend keeps the spec's shard count (and vice
    # versa) instead of silently discarding it.
    if shards is None:
        shards = int(execution.shards) if execution is not None else 1
    plan = ShardPlan.build(sorted(true_db.users()), int(shards), rng=rng)
    live_store = None
    owned_store = False
    if store is not None:
        from repro.store.store import open_store

        live_store, owned_store = open_store(store)
    elif out_of_core:
        raise ValidationError("out_of_core=True requires a store")
    try:
        only_shards = None
        committed: "frozenset[tuple[int, int]]" = frozenset()
        if live_store is not None:
            from repro.store.resume import RunManifest

            committed = live_store.begin_run(
                RunManifest.for_run(engine, plan, world), resume=resume
            )
            server = Server(world, store=live_store, out_of_core=out_of_core)
        else:
            server = Server(world)
        true_cells_of = None
        if live_metrics:
            # Attached before any replay so a resumed run folds its
            # replayed shards back into the registry — the rebuilt live
            # state then equals the uninterrupted run's at every round.
            from repro.server.live_metrics import default_views, expected_coverage

            views = default_views(world) if live_metrics is True else list(live_metrics)
            server.attach_metrics(views, expected_coverage(plan, true_db))

            def true_cells_of(row_users, row_times):
                # The store never persists ground-truth cells; resolve them
                # from the true trace at replay time.
                lookup = {
                    (int(user), checkin.time): checkin.cell
                    for user in np.unique(np.asarray(row_users, dtype=int)).tolist()
                    for checkin in true_db.user_history(int(user))
                }
                try:
                    return np.array(
                        [
                            lookup[(int(user), int(time))]
                            for user, time in zip(row_users, row_times)
                        ],
                        dtype=int,
                    )
                except KeyError as exc:
                    raise DataError(
                        f"stored release row {exc.args[0]} has no ground-truth "
                        "check-in; the store does not belong to this trace "
                        "database"
                    ) from exc

        if committed:
            # A shard is recoverable iff every (shard, round) pair it
            # would produce is durably marked; partially committed
            # shards cannot exist (marks travel in the shard's own
            # transaction), and a shard whose rounds are all marked is
            # replayed from disk instead of re-derived.
            committed_rounds: dict[int, set[int]] = {}
            for shard_id, round_time in committed:
                committed_rounds.setdefault(shard_id, set()).add(round_time)
            remaining = set()
            for shard_id, shard_users, _ in plan.iter_shards():
                expected = {
                    checkin.time
                    for user in shard_users
                    for checkin in true_db.user_history(user)
                }
                if expected and expected <= committed_rounds.get(shard_id, set()):
                    server.replay_shard(
                        shard_users[0],
                        shard_users[-1],
                        shard=shard_id,
                        true_cells=true_cells_of,
                    )
                else:
                    remaining.add(shard_id)
            only_shards = frozenset(remaining)
        # Streaming ingestion: each shard is committed the moment its worker
        # finishes (ordered by (time, user) within the shard) instead of
        # holding all shards for a merge barrier.  Per-user server state is
        # scheduling-independent — see Server.ingest_shard.  An empty
        # only_shards set means every shard was already durable (pure
        # replay), so there is nothing left to stream.
        if only_shards is None or only_shards:
            with ExitStack() as stack:
                if backend is None and execution is not None:
                    # A backend built here from the spec is owned here:
                    # close it when the run ends (or raises), exactly like
                    # a named backend.
                    backend = stack.enter_context(execution.build())
                if ingest_partitions is not None:
                    # Partitioned ingest implies async; async_ingest (when
                    # given as an int) sets the per-partition queue depth.
                    committer = stack.enter_context(
                        server.partitioned_committers(
                            int(ingest_partitions),
                            users=plan.users,
                            max_pending=2 if async_ingest in (False, True) else int(async_ingest),
                        )
                    )
                    commit = committer.submit
                elif async_ingest:
                    # Entered after the backend, so on exit the committer
                    # drains (committing every whole queued shard) before
                    # the backend closes.
                    committer = stack.enter_context(
                        server.async_committer(
                            max_pending=2 if async_ingest is True else int(async_ingest)
                        )
                    )
                    commit = committer.submit
                else:
                    commit = server.ingest_shard
                for shard_users, shard_times, batch in stream_shard_releases(
                    engine, true_db, plan, backend=backend, only_shards=only_shards
                ):
                    if live_store is not None or server.metrics is not None:
                        # Shards own contiguous blocks of the sorted user
                        # list, so any member identifies the shard (it keys
                        # the durable commit and the live metric deltas).
                        commit(
                            shard_users,
                            shard_times,
                            batch,
                            shard=plan.shard_of(int(shard_users[0])),
                        )
                    else:
                        # Historical 3-arg shape: Server subclasses
                        # predating store-backed ingestion accept no shard
                        # kwarg.
                        commit(shard_users, shard_times, batch)
    except BaseException:
        if owned_store:
            live_store.close()
        raise
    if owned_store and not out_of_core:
        # A path-opened store is owned by this call: the run is fully
        # durable, so hand back the in-memory server detached and close the
        # file.  (Out-of-core servers keep the store open — their
        # released_db *is* the store — and the caller closes server.store.)
        server.store = None
        live_store.close()
    return server
