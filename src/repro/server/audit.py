"""Transparency log for policies and releases.

"By making the policy graph public, the system has a high level of
transparency" (Sec. 2.1).  The :class:`TransparencyLog` is that public
record: an append-only sequence of policy publications and release
acknowledgements that anyone can query — which policy version governed a
user's release at time t, what budget was charged, and whether a policy
update (e.g. the tracing Gc push) happened before or after a given release.
It stores policy *fingerprints* rather than locations, so the log itself
leaks nothing beyond what the policies already make public.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterator

from repro.core.policy_graph import PolicyGraph
from repro.errors import DataError

__all__ = ["PolicyRecord", "ReleaseRecord", "TransparencyLog"]


def _fingerprint(graph: PolicyGraph) -> str:
    """Stable short hash of a policy graph's structure."""
    payload = json.dumps(graph.to_dict(), sort_keys=True).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


@dataclass(frozen=True)
class PolicyRecord:
    """A policy publication: version, purpose, and structural fingerprint."""

    sequence: int
    version: int
    purpose: str
    policy_name: str
    fingerprint: str
    n_nodes: int
    n_edges: int


@dataclass(frozen=True)
class ReleaseRecord:
    """A release acknowledgement: who released under which policy version."""

    sequence: int
    user: int
    time: int
    policy_version: int
    epsilon: float
    exact: bool


class TransparencyLog:
    """Append-only public record of policy publications and releases."""

    def __init__(self) -> None:
        self._entries: list[PolicyRecord | ReleaseRecord] = []
        self._policies: dict[int, PolicyRecord] = {}

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def publish_policy(self, version: int, purpose: str, graph: PolicyGraph) -> PolicyRecord:
        """Record a policy publication; versions must be fresh and increasing."""
        if version in self._policies:
            raise DataError(f"policy version {version} already published")
        if self._policies and version < max(self._policies):
            raise DataError(f"policy version {version} is older than the latest published")
        record = PolicyRecord(
            sequence=len(self._entries),
            version=version,
            purpose=purpose,
            policy_name=graph.name,
            fingerprint=_fingerprint(graph),
            n_nodes=graph.n_nodes,
            n_edges=graph.n_edges,
        )
        self._entries.append(record)
        self._policies[version] = record
        return record

    def acknowledge_release(
        self, user: int, time: int, policy_version: int, epsilon: float, exact: bool
    ) -> ReleaseRecord:
        """Record that ``user`` released under a previously published policy."""
        if policy_version not in self._policies:
            raise DataError(f"policy version {policy_version} was never published")
        record = ReleaseRecord(
            sequence=len(self._entries),
            user=int(user),
            time=int(time),
            policy_version=int(policy_version),
            epsilon=float(epsilon),
            exact=bool(exact),
        )
        self._entries.append(record)
        return record

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def policy_at_sequence(self, sequence: int) -> PolicyRecord | None:
        """The latest policy published at or before log position ``sequence``."""
        latest: PolicyRecord | None = None
        for entry in self._entries[: sequence + 1]:
            if isinstance(entry, PolicyRecord):
                latest = entry
        return latest

    def releases_of(self, user: int) -> list[ReleaseRecord]:
        return [
            entry
            for entry in self._entries
            if isinstance(entry, ReleaseRecord) and entry.user == int(user)
        ]

    def releases_under(self, version: int) -> list[ReleaseRecord]:
        return [
            entry
            for entry in self._entries
            if isinstance(entry, ReleaseRecord) and entry.policy_version == version
        ]

    def verify_chain(self) -> bool:
        """Check append-only integrity: sequences dense, versions monotone."""
        last_version = None
        for position, entry in enumerate(self._entries):
            if entry.sequence != position:
                return False
            if isinstance(entry, PolicyRecord):
                if last_version is not None and entry.version < last_version:
                    return False
                last_version = entry.version
        return True

    def policy_versions(self) -> list[int]:
        return sorted(self._policies)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[PolicyRecord | ReleaseRecord]:
        return iter(self._entries)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialise the whole log as JSON lines (one entry per line)."""
        lines = []
        for entry in self._entries:
            payload = dict(entry.__dict__)
            payload["kind"] = type(entry).__name__
            lines.append(json.dumps(payload, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")
