"""Live incremental metric maintenance on the ingest path (HTAP views).

The repo splits a transactional release path (shard commits through
:meth:`~repro.server.pipeline.Server.ingest_shard`) from an analytical eval
path (the E1–E12 runners) — but until now analytics recomputed from scratch
after ingestion finished.  Polynesia's HTAP argument (PAPERS.md) is that
updates should propagate into analytical state in memory, with consistency
snapshots, instead of re-scanning the population per query.  This module is
that propagation layer: every committed shard is folded — through the exact
associative merge algebra of
:class:`~repro.engine.distributed.MetricShardResult` — into running E1
(monitoring utility), E2 (contact rate / R0) and E11 (flow matrix)
aggregates, while commits continue.

Snapshot semantics
------------------
``metrics_at(round=r)`` is **cumulative**: it covers every committed release
row with ``time <= r``, exactly what a batch evaluator scoring the prefix
trace would see.  The registry keeps, per view, one *delta*
:class:`MetricShardResult` per ``(shard, round)`` — computed once, at commit
time, from that shard's rows — and freezes a round's snapshot as soon as
every shard expected at (or before) the round has committed.  Frozen
snapshots form a per-round version chain; a query is one dictionary lookup,
O(1) in the population, safe to call concurrently with in-flight commits.
Querying a round whose coverage is still incomplete raises
:class:`~repro.errors.SnapshotUnavailableError` — a half-folded value would
break the bit-identity contract below — naming the shards still missing.

Bit-identity contract
---------------------
Every frozen live value equals :func:`batch_recompute` — one from-scratch
pass over the full raw rows — **bitwise**, at every round, for every shard
count, execution backend, committer (sync / async / partitioned), commit
arrival order, and across a kill-and-resume.  Three properties make this
hold:

* deltas are pure functions of a shard's rows: the fold lexsorts rows by
  ``(time, user)`` first, so arrival layout (user-major from a live worker,
  time-major from a store replay) cannot leak into the value;
* all folding happens in one canonical order — rounds ascending, shards
  ascending within a round, users ascending within a shard — regardless of
  the order commits *arrive* in, so the per-key arrays reassemble the
  identical global array every time (``np.sum`` is pairwise; order is part
  of the bit pattern);
* the count-valued components (flow counters, epoch-keyed occupancy) and
  set-valued components merge by integer addition / disjoint union, which
  no ordering can perturb at all.

``tests/test_live_metrics.py`` pins the matrix; ``docs/live_metrics.md``
documents the contract.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from types import MappingProxyType
from typing import TYPE_CHECKING, AbstractSet, Iterator, Mapping, Sequence

import numpy as np

from repro.engine.distributed import MetricShardResult
from repro.epidemic.analysis import pair_events
from repro.epidemic.monitor import LocationMonitor, MonitoringReport, _flow_l1_error
from repro.errors import DataError, SnapshotUnavailableError, ValidationError
from repro.geo.grid import GridWorld
from repro.utils.validation import check_positive, check_probability

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.engine.sharding import ShardPlan
    from repro.mobility.trajectory import TraceDB

__all__ = [
    "ContactRateView",
    "ContactSnapshot",
    "FlowMatrixView",
    "FlowSnapshot",
    "LiveMetricRegistry",
    "LiveMetricView",
    "MonitoringUtilityView",
    "ShardRows",
    "batch_recompute",
    "default_views",
    "expected_coverage",
]


@dataclass(frozen=True, eq=False)
class ShardRows:
    """One shard's committed rows in canonical ``(time, user)`` order.

    The single input shape every view folds from: build it with
    :meth:`build` from whatever layout the commit path has (user-major from
    a live worker, time-major from a store replay) and the fold sees the
    identical canonical layout either way — the first leg of the
    bit-identity contract.

    ``true_cells`` are the ground-truth cells (the shard streaming
    contract's ``batch.cells``); ``snapped_cells`` the server-side snapped
    view; ``points`` the released coordinates.
    """

    users: np.ndarray
    times: np.ndarray
    points: np.ndarray
    true_cells: np.ndarray
    snapped_cells: np.ndarray

    @classmethod
    def build(cls, users, times, points, true_cells, snapped_cells) -> "ShardRows":
        users = np.asarray(users, dtype=int)
        times = np.asarray(times, dtype=int)
        points = np.asarray(points, dtype=float)
        true_cells = np.asarray(true_cells, dtype=int)
        snapped_cells = np.asarray(snapped_cells, dtype=int)
        n = len(users)
        if n == 0:
            raise DataError("shard has no rows to fold")
        if (
            len(times) != n
            or points.shape != (n, 2)
            or len(true_cells) != n
            or len(snapped_cells) != n
        ):
            raise DataError(
                f"shard rows are misaligned: {n} users, {len(times)} times, "
                f"points {points.shape}, {len(true_cells)} true cells, "
                f"{len(snapped_cells)} snapped cells"
            )
        order = np.lexsort((users, times))
        users = users[order]
        times = times[order]
        if n > 1 and bool(np.any((times[1:] == times[:-1]) & (users[1:] == users[:-1]))):
            raise DataError("shard rows contain duplicate (user, time) keys")
        return cls(
            users=users,
            times=times,
            points=points[order],
            true_cells=true_cells[order],
            snapped_cells=snapped_cells[order],
        )

    def __len__(self) -> int:
        return len(self.users)

    def round_slices(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(round, start, stop)`` per distinct time, ascending.

        Rows are time-major, so every round is one contiguous slice whose
        users are ascending — the canonical within-shard key order.
        """
        round_times, starts = np.unique(self.times, return_index=True)
        bounds = list(starts) + [len(self.times)]
        for index, time in enumerate(round_times):
            yield int(time), int(bounds[index]), int(bounds[index + 1])


class LiveMetricView:
    """One incrementally maintained metric: delta fold plus finalizer.

    Subclasses implement :meth:`shard_deltas` (pure function of one shard's
    canonical rows, one exact-mergeable delta per round) and
    :meth:`finalize` (cumulative partial -> the metric's value object).
    The registry owns ordering, freezing, and snapshot bookkeeping, so a
    view never sees commit concurrency.
    """

    name: str

    def empty(self) -> MetricShardResult:
        """The merge identity carrying this view's component names."""
        raise NotImplementedError

    def shard_deltas(self, rows: ShardRows) -> dict[int, MetricShardResult]:
        """Per-round delta partials for one shard's rows (keyed by round)."""
        raise NotImplementedError

    def finalize(self, partial: MetricShardResult):
        """The metric value of a cumulative partial (pure, deterministic)."""
        raise NotImplementedError


class MonitoringUtilityView(LiveMetricView):
    """E1 live: mean Euclidean error, area accuracy, flow L1 error.

    Per-row error and area-hit contributions ride the per-key partial-sum
    kind (each key is one release, so no intra-key float addition exists at
    all — the only reduction is the final ``np.sum`` over the canonical
    array); inter-area flows ride the Counter kind, each ``(t-1, t)``
    transition assigned to the destination round's delta so the cumulative
    fold at round ``r`` counts exactly the transitions a prefix trace holds.
    """

    def __init__(
        self,
        world: GridWorld,
        block_rows: int = 4,
        block_cols: int = 4,
        name: str = "monitoring",
    ) -> None:
        self.world = world
        self.monitor = LocationMonitor(world, block_rows, block_cols)
        self.name = str(name)

    def empty(self) -> MetricShardResult:
        return MetricShardResult.empty(("error", "area_hits"), ("true", "observed"))

    def shard_deltas(self, rows: ShardRows) -> dict[int, MetricShardResult]:
        monitor = self.monitor
        centres = self.world.coords_array(rows.true_cells)
        errors = np.hypot(
            rows.points[:, 0] - centres[:, 0], rows.points[:, 1] - centres[:, 1]
        )
        hits = (
            monitor.area_of_batch(rows.snapped_cells)
            == monitor.area_of_batch(rows.true_cells)
        ).astype(float)

        deltas: dict[int, MetricShardResult] = {}
        previous: tuple[int, int, int] | None = None  # (round, start, stop)
        for time, start, stop in rows.round_slices():
            true_flows: Counter = Counter()
            observed_flows: Counter = Counter()
            if previous is not None and previous[0] == time - 1:
                p_start, p_stop = previous[1], previous[2]
                _, prev_index, cur_index = np.intersect1d(
                    rows.users[p_start:p_stop],
                    rows.users[start:stop],
                    assume_unique=True,
                    return_indices=True,
                )
                if prev_index.size:
                    true_flows = monitor.flows_between(
                        rows.true_cells[p_start:p_stop][prev_index],
                        rows.true_cells[start:stop][cur_index],
                    )
                    observed_flows = monitor.flows_between(
                        rows.snapped_cells[p_start:p_stop][prev_index],
                        rows.snapped_cells[start:stop][cur_index],
                    )
            deltas[time] = MetricShardResult(
                sums={"error": errors[start:stop], "area_hits": hits[start:stop]},
                counts=np.ones(stop - start, dtype=int),
                flows={"true": true_flows, "observed": observed_flows},
            )
            previous = (time, start, stop)
        return deltas

    def finalize(self, partial: MetricShardResult) -> MonitoringReport:
        return MonitoringReport(
            mean_euclidean_error=partial.weighted_mean("error"),
            area_accuracy=partial.weighted_mean("area_hits"),
            flow_l1_error=_flow_l1_error(partial.flows["true"], partial.flows["observed"]),
            n_releases=partial.n_releases,
        )


@dataclass(frozen=True)
class ContactSnapshot:
    """E2 live value: contact rates and R0 on the true vs released trace."""

    true_contact_rate: float
    observed_contact_rate: float
    r0_true: float
    r0_observed: float
    n_observations: int


class ContactRateView(LiveMetricView):
    """E2 live: epoch-keyed occupancy counters -> contact rate and R0.

    The per-round delta is a pair of ``(time, cell) -> head count``
    occupancy counters (true cells and snapped cells); merging is integer
    Counter addition, so no ordering can perturb it.  The finalizer runs the
    same estimator as :func:`repro.epidemic.analysis.contact_rate`:
    ``2 * pair_events / observations``, then ``R0 = p * c / gamma`` — the
    arithmetic is integers plus one identical float expression, which is
    why the live value equals the batch estimator on the prefix trace
    bitwise, not just approximately.
    """

    def __init__(
        self,
        p_transmit: float = 0.3,
        gamma: float = 0.1,
        name: str = "contacts",
    ) -> None:
        self.p_transmit = check_probability("p_transmit", p_transmit)
        self.gamma = check_positive("gamma", gamma)
        self.name = str(name)

    def empty(self) -> MetricShardResult:
        return MetricShardResult.empty((), ("true_occupancy", "perturbed_occupancy"))

    def shard_deltas(self, rows: ShardRows) -> dict[int, MetricShardResult]:
        deltas: dict[int, MetricShardResult] = {}
        for time, start, stop in rows.round_slices():
            true_occupancy: Counter = Counter()
            perturbed_occupancy: Counter = Counter()
            for target, cells in (
                (true_occupancy, rows.true_cells),
                (perturbed_occupancy, rows.snapped_cells),
            ):
                uniques, counts = np.unique(cells[start:stop], return_counts=True)
                for cell, count in zip(uniques.tolist(), counts.tolist()):
                    target[(time, cell)] = count
            deltas[time] = MetricShardResult(
                sums={},
                counts=np.ones(stop - start, dtype=int),
                flows={
                    "true_occupancy": true_occupancy,
                    "perturbed_occupancy": perturbed_occupancy,
                },
            )
        return deltas

    def finalize(self, partial: MetricShardResult) -> ContactSnapshot:
        observations = partial.n_releases
        if observations == 0:
            raise DataError("window contains no observations")
        true_rate = 2.0 * pair_events(partial.flows["true_occupancy"]) / observations
        observed_rate = (
            2.0 * pair_events(partial.flows["perturbed_occupancy"]) / observations
        )
        return ContactSnapshot(
            true_contact_rate=true_rate,
            observed_contact_rate=observed_rate,
            r0_true=self.p_transmit * true_rate / self.gamma,
            r0_observed=self.p_transmit * observed_rate / self.gamma,
            n_observations=observations,
        )


@dataclass(frozen=True)
class FlowSnapshot:
    """E11 live value: true vs observed inter-area flow matrices.

    Exactly the ``(true_flows, observed_flows)`` pair
    :func:`repro.epidemic.monitor.perturbed_flows` produces for the
    metapopulation forecast — feed either counter to
    :func:`repro.epidemic.metapop.forecast_from_flows` unchanged.
    """

    true_flows: Counter
    observed_flows: Counter


class FlowMatrixView(LiveMetricView):
    """E11 live: the metapop pipeline's flow matrices at their own tiling."""

    def __init__(
        self,
        world: GridWorld,
        block_rows: int = 4,
        block_cols: int = 4,
        name: str = "flows",
    ) -> None:
        self.monitor = LocationMonitor(world, block_rows, block_cols)
        self.name = str(name)

    def empty(self) -> MetricShardResult:
        return MetricShardResult.empty((), ("true", "observed"))

    def shard_deltas(self, rows: ShardRows) -> dict[int, MetricShardResult]:
        monitor = self.monitor
        deltas: dict[int, MetricShardResult] = {}
        previous: tuple[int, int, int] | None = None
        for time, start, stop in rows.round_slices():
            true_flows: Counter = Counter()
            observed_flows: Counter = Counter()
            if previous is not None and previous[0] == time - 1:
                p_start, p_stop = previous[1], previous[2]
                _, prev_index, cur_index = np.intersect1d(
                    rows.users[p_start:p_stop],
                    rows.users[start:stop],
                    assume_unique=True,
                    return_indices=True,
                )
                if prev_index.size:
                    true_flows = monitor.flows_between(
                        rows.true_cells[p_start:p_stop][prev_index],
                        rows.true_cells[start:stop][cur_index],
                    )
                    observed_flows = monitor.flows_between(
                        rows.snapped_cells[p_start:p_stop][prev_index],
                        rows.snapped_cells[start:stop][cur_index],
                    )
            deltas[time] = MetricShardResult(
                sums={},
                counts=np.ones(stop - start, dtype=int),
                flows={"true": true_flows, "observed": observed_flows},
            )
            previous = (time, start, stop)
        return deltas

    def finalize(self, partial: MetricShardResult) -> FlowSnapshot:
        return FlowSnapshot(
            true_flows=Counter(partial.flows["true"]),
            observed_flows=Counter(partial.flows["observed"]),
        )


def default_views(
    world: GridWorld,
    block_rows: int = 4,
    block_cols: int = 4,
    p_transmit: float = 0.3,
    gamma: float = 0.1,
) -> list[LiveMetricView]:
    """The standard E1 + E2 + E11 view set over one coarse-area tiling."""
    return [
        MonitoringUtilityView(world, block_rows, block_cols),
        ContactRateView(p_transmit=p_transmit, gamma=gamma),
        FlowMatrixView(world, block_rows, block_cols),
    ]


def expected_coverage(plan: "ShardPlan", true_db: "TraceDB") -> dict[int, frozenset[int]]:
    """``shard -> rounds`` a run over ``(plan, true_db)`` will commit.

    The registry's freeze schedule: a round's snapshot freezes once every
    shard listed for it (or for any earlier round) has committed.  Shards
    with no check-ins are omitted — they never stream a commit.
    """
    coverage: dict[int, frozenset[int]] = {}
    for shard, shard_users, _ in plan.iter_shards():
        rounds = {
            checkin.time
            for user in shard_users
            for checkin in true_db.user_history(user)
        }
        if rounds:
            coverage[shard] = frozenset(rounds)
    return coverage


class LiveMetricRegistry:
    """Per-round version chain of frozen metric partials, fed at commit time.

    Parameters
    ----------
    views:
        The :class:`LiveMetricView` instances to maintain (unique names).
    expected:
        ``shard -> rounds`` coverage (see :func:`expected_coverage`).  This
        is the freeze schedule *and* a validation oracle: every
        :meth:`ingest` must present exactly its shard's expected rounds, and
        a round freezes when the shards expected at or before it have all
        committed.

    Concurrency
    -----------
    :meth:`ingest` runs under the registry lock (commit paths are already
    serialized by the server's ingest lock; partitioned committers contend
    only here).  :meth:`at` on a frozen round is a lock-free dictionary
    lookup against immutable published values — O(1) in the population and
    safe during in-flight commits, which is the Polynesia-style snapshot
    read the module docstring describes.
    """

    def __init__(
        self,
        views: Sequence[LiveMetricView],
        expected: Mapping[int, AbstractSet[int]],
    ) -> None:
        views = list(views)
        if not views:
            raise ValidationError("need at least one live metric view")
        names = [view.name for view in views]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate live metric view names: {sorted(names)}")
        self._views = tuple(views)
        self._expected = {
            int(shard): frozenset(int(time) for time in rounds)
            for shard, rounds in expected.items()
            if rounds
        }
        if not self._expected:
            raise ValidationError("expected coverage is empty; nothing to maintain")
        by_round: dict[int, set[int]] = {}
        for shard, rounds in self._expected.items():
            for time in rounds:
                by_round.setdefault(time, set()).add(shard)
        self._shards_by_round = {
            time: frozenset(shards) for time, shards in by_round.items()
        }
        self._rounds: tuple[int, ...] = tuple(sorted(by_round))
        #: round -> shard -> view name -> delta partial (dropped once frozen)
        self._pending: dict[int, dict[int, dict[str, MetricShardResult]]] = {
            time: {} for time in self._rounds
        }
        self._committed: set[int] = set()
        self._frontier = 0  # index into self._rounds of the next round to freeze
        self._partials: dict[int, Mapping[str, MetricShardResult]] = {}
        self._values: dict[int, Mapping[str, object]] = {}
        self._chain: dict[str, MetricShardResult] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def views(self) -> tuple[LiveMetricView, ...]:
        return self._views

    @property
    def rounds(self) -> tuple[int, ...]:
        """Every round the run will produce, ascending."""
        return self._rounds

    @property
    def frozen_rounds(self) -> tuple[int, ...]:
        """Rounds whose snapshots are already published, ascending."""
        return self._rounds[: self._frontier]

    @property
    def expected(self) -> Mapping[int, frozenset[int]]:
        return MappingProxyType(self._expected)

    # ------------------------------------------------------------------
    def ingest(self, shard: int, users, times, points, true_cells, snapped_cells) -> None:
        """Fold one committed shard's rows into the live state.

        Pure O(shard rows) work: per-view deltas are computed once here and
        any rounds the commit completes are frozen immediately, so query
        cost never depends on the population.  The shard must be expected,
        not yet folded, and must present exactly its expected rounds —
        anything else is a :class:`~repro.errors.DataError` (a silent
        mismatch would surface later as an inexplicable non-frozen round).
        """
        shard = int(shard)
        owned = self._expected.get(shard)
        if owned is None:
            raise DataError(f"shard {shard} is not in the expected coverage")
        rows = ShardRows.build(users, times, points, true_cells, snapped_cells)
        observed = frozenset(int(time) for time in np.unique(rows.times))
        if observed != owned:
            raise DataError(
                f"shard {shard} committed rounds {sorted(observed)} but the "
                f"coverage expects {sorted(owned)}"
            )
        with self._lock:
            if shard in self._committed:
                raise DataError(f"shard {shard} was already folded into the live state")
            deltas = {view.name: view.shard_deltas(rows) for view in self._views}
            self._committed.add(shard)
            for name, per_round in deltas.items():
                for time, delta in per_round.items():
                    self._pending[time].setdefault(shard, {})[name] = delta
            self._advance()

    def _advance(self) -> None:
        """Freeze every newly complete round at the frontier (in order).

        Rounds freeze strictly ascending because snapshot ``r`` chains off
        snapshot ``r-1`` — that chaining is what makes the canonical fold
        order (rounds, then shards, then users) independent of commit
        arrival order.
        """
        while self._frontier < len(self._rounds):
            time = self._rounds[self._frontier]
            if not self._shards_by_round[time] <= self._committed:
                return
            per_shard = self._pending.pop(time)
            partials: dict[str, MetricShardResult] = {}
            for view in self._views:
                round_delta = MetricShardResult.fold(
                    [per_shard[shard][view.name] for shard in sorted(per_shard)]
                )
                chained = (
                    self._chain[view.name].merge(round_delta)
                    if view.name in self._chain
                    else round_delta
                )
                self._chain[view.name] = chained
                partials[view.name] = chained.freeze()
            self._partials[time] = MappingProxyType(partials)
            self._values[time] = MappingProxyType(
                {view.name: view.finalize(partials[view.name]) for view in self._views}
            )
            self._frontier += 1

    # ------------------------------------------------------------------
    def _unavailable(self, time: int) -> SnapshotUnavailableError:
        if time not in self._shards_by_round:
            return ValidationError(  # type: ignore[return-value]
                f"round {time} is not part of this run's coverage "
                f"(rounds {list(self._rounds)})"
            )
        with self._lock:
            missing = sorted(
                {
                    shard
                    for pending_time in self._rounds[self._frontier :]
                    if pending_time <= time
                    for shard in self._shards_by_round[pending_time]
                }
                - self._committed
            )
        return SnapshotUnavailableError(
            f"round {time} snapshot is not frozen yet: waiting on shard "
            f"commit(s) {missing} (frozen through "
            f"{self._rounds[self._frontier - 1] if self._frontier else 'nothing'})"
        )

    def at(self, round: int) -> Mapping[str, object]:
        """Snapshot-consistent metric values covering all rows ≤ ``round``.

        Lock-free O(1) lookup of the frozen value map (``view name ->
        value``).  Raises :class:`~repro.errors.SnapshotUnavailableError`
        while any shard owning rows at or before ``round`` is uncommitted,
        and :class:`~repro.errors.ValidationError` for a round the run will
        never produce.
        """
        time = int(round)
        values = self._values.get(time)
        if values is not None:
            return values
        raise self._unavailable(time)

    def partials_at(self, round: int) -> Mapping[str, MetricShardResult]:
        """The frozen cumulative partials behind :meth:`at` (same rules)."""
        time = int(round)
        partials = self._partials.get(time)
        if partials is not None:
            return partials
        raise self._unavailable(time)

    def __repr__(self) -> str:
        return (
            f"LiveMetricRegistry(views={[view.name for view in self._views]}, "
            f"rounds={len(self._rounds)}, frozen={self._frontier}, "
            f"shards={len(self._committed)}/{len(self._expected)})"
        )


def batch_recompute(
    views: Sequence[LiveMetricView],
    plan: "ShardPlan",
    users,
    times,
    points,
    true_cells,
    snapped_cells,
    upto: int | None = None,
) -> dict[int, dict[str, object]]:
    """The O(population) reference the live values are bit-identical to.

    One from-scratch pass over the full raw rows: group rows by the plan's
    shards, build every per-round delta, fold them in the canonical order
    (rounds ascending, shards ascending, users ascending), and finalize
    each cumulative prefix.  Returns ``round -> {view name -> value}`` for
    every round ≤ ``upto`` (all rounds when ``None``).

    No incremental state is consulted — this is what E21 times against the
    registry's O(1) lookups, and what the determinism matrix compares
    snapshots to.
    """
    views = list(views)
    if not views:
        raise ValidationError("need at least one live metric view")
    users = np.asarray(users, dtype=int)
    times = np.asarray(times, dtype=int)
    points = np.asarray(points, dtype=float)
    true_cells = np.asarray(true_cells, dtype=int)
    snapped_cells = np.asarray(snapped_cells, dtype=int)

    #: view name -> round -> shard -> delta
    deltas: dict[str, dict[int, dict[int, MetricShardResult]]] = {
        view.name: {} for view in views
    }
    for shard, shard_users, _ in plan.iter_shards():
        mask = (users >= shard_users[0]) & (users <= shard_users[-1])
        if not bool(mask.any()):
            continue
        rows = ShardRows.build(
            users[mask], times[mask], points[mask], true_cells[mask], snapped_cells[mask]
        )
        for view in views:
            for time, delta in view.shard_deltas(rows).items():
                deltas[view.name].setdefault(time, {})[shard] = delta

    rounds = sorted({time for per_view in deltas.values() for time in per_view})
    chain: dict[str, MetricShardResult] = {}
    out: dict[int, dict[str, object]] = {}
    for time in rounds:
        if upto is not None and time > int(upto):
            break
        values: dict[str, object] = {}
        for view in views:
            per_shard = deltas[view.name][time]
            round_delta = MetricShardResult.fold(
                [per_shard[shard] for shard in sorted(per_shard)]
            )
            chain[view.name] = (
                chain[view.name].merge(round_delta)
                if view.name in chain
                else round_delta
            )
            values[view.name] = view.finalize(chain[view.name])
        out[time] = values
    return out
