"""The client-side location database (Fig. 1, "Loc. DB").

Each user "locally maintains [a] location database (e.g., all locations in
the past two weeks)".  :class:`LocalLocationDB` is that store: a rolling
window of (time, cell) observations with automatic pruning.

By default the window lives in a plain dict.  Pass ``store=`` (a
:class:`~repro.store.TraceStore`) to spill it to disk instead — the entries
then live in the store's ``local_windows`` table keyed by this database's
``user``, with identical semantics (same retention check, same pruning, same
query results), which is what lets population-scale simulations keep
millions of client windows without holding them all in memory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import DataError
from repro.utils.validation import check_integer

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.store.store import TraceStore

__all__ = ["LocalLocationDB"]


class LocalLocationDB:
    """Rolling-window store of one user's true locations.

    Parameters
    ----------
    window:
        Retention horizon in timesteps (the paper's two weeks).  Entries
        older than ``newest_time - window + 1`` are pruned on insert.
    store:
        Optional :class:`~repro.store.TraceStore` to keep the window on
        disk (out-of-core mode) instead of in memory.
    user:
        The user id keying this window inside ``store`` (required to be
        unique per client when spilling; ignored in memory mode).
    """

    def __init__(self, window: int = 14 * 24, store: "TraceStore | None" = None, user: int = 0) -> None:
        self.window = check_integer("window", window, minimum=1)
        self._store = store
        self._user = int(user)
        self._entries: dict[int, int] | None = None if store is not None else {}

    def record(self, time: int, cell: int) -> None:
        """Store the user's location at ``time``, pruning expired entries.

        Re-recording a time overwrites (GPS fix refinement); times may arrive
        out of order as long as they are within the current window.
        """
        time = int(time)
        if self._store is not None:
            newest = self._store.window_newest(self._user)
            newest = time if newest is None else max(newest, time)
            horizon = newest - self.window + 1
            if time < horizon:
                raise DataError(
                    f"time {time} is outside the {self.window}-step retention window"
                )
            self._store.window_record(self._user, time, int(cell), horizon)
            return
        newest = max(self._entries) if self._entries else time
        horizon = max(newest, time) - self.window + 1
        if time < horizon:
            raise DataError(
                f"time {time} is outside the {self.window}-step retention window"
            )
        self._entries[time] = int(cell)
        self._prune(max(newest, time))

    def _prune(self, now: int) -> None:
        horizon = now - self.window + 1
        expired = [t for t in self._entries if t < horizon]
        for t in expired:
            del self._entries[t]

    # ------------------------------------------------------------------
    def location_at(self, time: int) -> int | None:
        if self._store is not None:
            return self._store.window_location(self._user, int(time))
        return self._entries.get(int(time))

    def history(self, start: int | None = None, end: int | None = None) -> list[tuple[int, int]]:
        """Time-ordered ``(time, cell)`` pairs within ``[start, end]``."""
        if self._store is not None:
            items = self._store.window_history(self._user)
        else:
            items = sorted(self._entries.items())
        return [
            (t, c)
            for t, c in items
            if (start is None or t >= start) and (end is None or t <= end)
        ]

    def times(self) -> list[int]:
        if self._store is not None:
            return [t for t, _ in self._store.window_history(self._user)]
        return sorted(self._entries)

    def __len__(self) -> int:
        if self._store is not None:
            return self._store.window_count(self._user)
        return len(self._entries)

    def __contains__(self, time: int) -> bool:
        if self._store is not None:
            return self._store.window_location(self._user, int(time)) is not None
        return int(time) in self._entries

    def __repr__(self) -> str:
        if self._store is not None:
            return (
                f"LocalLocationDB(window={self.window}, user={self._user}, "
                f"entries={len(self)}, spilled={self._store.path!r})"
            )
        span = f"[{min(self._entries)}..{max(self._entries)}]" if self._entries else "[]"
        return f"LocalLocationDB(window={self.window}, entries={len(self._entries)}, span={span})"
