"""The client-side location database (Fig. 1, "Loc. DB").

Each user "locally maintains [a] location database (e.g., all locations in
the past two weeks)".  :class:`LocalLocationDB` is that store: a rolling
window of (time, cell) observations with automatic pruning.
"""

from __future__ import annotations

from repro.errors import DataError
from repro.utils.validation import check_integer

__all__ = ["LocalLocationDB"]


class LocalLocationDB:
    """Rolling-window store of one user's true locations.

    Parameters
    ----------
    window:
        Retention horizon in timesteps (the paper's two weeks).  Entries
        older than ``newest_time - window + 1`` are pruned on insert.
    """

    def __init__(self, window: int = 14 * 24) -> None:
        self.window = check_integer("window", window, minimum=1)
        self._entries: dict[int, int] = {}

    def record(self, time: int, cell: int) -> None:
        """Store the user's location at ``time``, pruning expired entries.

        Re-recording a time overwrites (GPS fix refinement); times may arrive
        out of order as long as they are within the current window.
        """
        time = int(time)
        newest = max(self._entries) if self._entries else time
        horizon = max(newest, time) - self.window + 1
        if time < horizon:
            raise DataError(
                f"time {time} is outside the {self.window}-step retention window"
            )
        self._entries[time] = int(cell)
        self._prune(max(newest, time))

    def _prune(self, now: int) -> None:
        horizon = now - self.window + 1
        expired = [t for t in self._entries if t < horizon]
        for t in expired:
            del self._entries[t]

    # ------------------------------------------------------------------
    def location_at(self, time: int) -> int | None:
        return self._entries.get(int(time))

    def history(self, start: int | None = None, end: int | None = None) -> list[tuple[int, int]]:
        """Time-ordered ``(time, cell)`` pairs within ``[start, end]``."""
        return [
            (t, c)
            for t, c in sorted(self._entries.items())
            if (start is None or t >= start) and (end is None or t <= end)
        ]

    def times(self) -> list[int]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, time: int) -> bool:
        return int(time) in self._entries

    def __repr__(self) -> str:
        span = f"[{min(self._entries)}..{max(self._entries)}]" if self._entries else "[]"
        return f"LocalLocationDB(window={self.window}, entries={len(self._entries)}, span={span})"
