"""Location Policy Configuration (Fig. 3, middle module).

The server recommends policies per surveillance function; users consent or
reject (Sec. 2.1: "The user has the right to reject a privacy policy so that
no location will be released").  Policies are versioned so that dynamic
updates during contact tracing are auditable, giving the "high level of
transparency" the paper claims from public policy graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.policies import (
    area_policy,
    contact_tracing_policy,
    full_disclosure_policy,
    grid_policy,
)
from repro.core.policy_graph import PolicyGraph
from repro.errors import PolicyError
from repro.geo.grid import GridWorld

__all__ = ["PolicyProposal", "PolicyConfigurator"]


@dataclass
class PolicyProposal:
    """A policy offered to a user, awaiting consent."""

    policy: PolicyGraph
    purpose: str
    version: int
    approved: bool | None = None

    def approve(self) -> PolicyGraph:
        self.approved = True
        return self.policy

    def reject(self) -> None:
        """User declines: no location will be released under this proposal."""
        self.approved = False


@dataclass
class PolicyConfigurator:
    """Builds and versions the recommended policy per surveillance function.

    The defaults mirror Fig. 4: coarse areas for monitoring (Ga), fine areas
    for epidemic analysis (Gb), and the base-with-infected-isolated Gc for
    tracing.
    """

    world: GridWorld
    monitor_block: tuple[int, int] = (4, 4)
    analysis_block: tuple[int, int] = (2, 2)
    _version: int = field(default=0, init=False)
    _log: list[tuple[int, str, str]] = field(default_factory=list, init=False)

    # ------------------------------------------------------------------
    def recommend(self, purpose: str, infected_locations: Iterable[int] = ()) -> PolicyProposal:
        """Policy proposal for ``purpose``.

        ``purpose`` is one of ``"monitoring"`` (Ga), ``"analysis"`` (Gb),
        ``"tracing"`` (Gc over the analysis base; requires
        ``infected_locations``), ``"patient"`` (full disclosure, consented by
        the diagnosed user), or ``"geo-ind"`` (G1 grid adjacency).
        """
        if purpose == "monitoring":
            policy = area_policy(self.world, *self.monitor_block, name="Ga")
        elif purpose == "analysis":
            policy = area_policy(self.world, *self.analysis_block, name="Gb")
        elif purpose == "tracing":
            infected = list(infected_locations)
            if not infected:
                raise PolicyError("tracing policy needs the infected locations")
            base = area_policy(self.world, *self.analysis_block, name="Gb")
            policy = contact_tracing_policy(base, infected, name="Gc")
        elif purpose == "patient":
            policy = full_disclosure_policy(self.world, name="patient-disclosure")
        elif purpose == "geo-ind":
            policy = grid_policy(self.world, name="G1")
        else:
            raise PolicyError(
                f"unknown purpose {purpose!r}; expected monitoring/analysis/tracing/patient/geo-ind"
            )
        self._version += 1
        self._log.append((self._version, purpose, policy.name))
        return PolicyProposal(policy=policy, purpose=purpose, version=self._version)

    def update_for_tracing(self, infected_locations: Iterable[int]) -> PolicyProposal:
        """Dynamic policy update when a patient's trace is confirmed."""
        return self.recommend("tracing", infected_locations=infected_locations)

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        return self._version

    def audit_log(self) -> list[tuple[int, str, str]]:
        """Versioned history of every recommendation: (version, purpose, name)."""
        return list(self._log)
