"""Command-line interface: explore policies and regenerate experiment tables.

Usage (after ``pip install -e .``)::

    python -m repro policy G1 --size 8
    python -m repro release --policy Gb --epsilon 1.0 --cell 27
    python -m repro experiment e1 --size 8 --users 12 --horizon 36
    python -m repro datasets

The CLI is a thin veneer over the public API — every subcommand body is a
few lines of the same calls a notebook user would write.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.configs import (
    MECHANISM_FACTORIES,
    POLICY_BUILDERS,
    ExperimentConfig,
    build_mechanism,
    build_policy,
)
from repro.experiments import harness
from repro.geo.grid import GridWorld
from repro.mobility.datasets import DATASETS

__all__ = ["main", "build_parser"]

EXPERIMENTS = {
    "e1": harness.run_monitoring_utility,
    "e2": harness.run_r0_estimation,
    "e3": harness.run_contact_tracing,
    "e4": harness.run_adversary_error,
    "e5": harness.run_random_policy_tradeoff,
    "e6": harness.run_theorem_bounds,
    "e7": harness.run_policy_matrix,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PANDA: policy-aware location privacy for epidemic surveillance",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    policy = sub.add_parser("policy", help="show statistics of a named policy graph")
    policy.add_argument("name", choices=sorted(POLICY_BUILDERS))
    policy.add_argument("--size", type=int, default=10, help="grid side length")

    release = sub.add_parser("release", help="perturb one location")
    release.add_argument("--policy", choices=sorted(POLICY_BUILDERS), default="G1")
    release.add_argument("--mechanism", choices=sorted(MECHANISM_FACTORIES), default="P-LM")
    release.add_argument("--epsilon", type=float, default=1.0)
    release.add_argument("--cell", type=int, default=0)
    release.add_argument("--size", type=int, default=10)
    release.add_argument("--seed", type=int, default=None)

    experiment = sub.add_parser("experiment", help="run an experiment and print its table")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--size", type=int, default=8)
    experiment.add_argument("--users", type=int, default=12)
    experiment.add_argument("--horizon", type=int, default=36)
    experiment.add_argument("--seed", type=int, default=2020)
    experiment.add_argument(
        "--epsilons", type=float, nargs="+", default=[0.5, 1.0, 2.0]
    )

    sub.add_parser("datasets", help="list the available synthetic datasets")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "policy":
        return _cmd_policy(args)
    if args.command == "release":
        return _cmd_release(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "datasets":
        return _cmd_datasets()
    return 2  # pragma: no cover - argparse enforces the choices


def _cmd_policy(args: argparse.Namespace) -> int:
    world = GridWorld(args.size, args.size)
    graph = build_policy(args.name, world)
    print(f"policy {graph.name} on a {args.size}x{args.size} world")
    print(f"  nodes        : {graph.n_nodes}")
    print(f"  edges        : {graph.n_edges}")
    print(f"  density      : {graph.density():.4f}")
    print(f"  components   : {len(graph.components())}")
    print(f"  disclosable  : {len(graph.disclosable_nodes())}")
    print(f"  diameter     : {graph.diameter()}")
    return 0


def _cmd_release(args: argparse.Namespace) -> int:
    world = GridWorld(args.size, args.size)
    if args.cell not in world:
        print(f"error: cell {args.cell} outside the {world.n_cells}-cell world", file=sys.stderr)
        return 1
    graph = build_policy(args.policy, world)
    mechanism = build_mechanism(args.mechanism, world, graph, args.epsilon)
    release = mechanism.release(args.cell, rng=args.seed)
    x, y = release.point
    print(f"true cell {args.cell} at {world.coords(args.cell)}")
    print(f"released  ({x:.3f}, {y:.3f})  exact={release.exact}  epsilon={release.epsilon}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        world_size=args.size,
        n_users=args.users,
        horizon=args.horizon,
        epsilons=tuple(args.epsilons),
        tracing_window=args.horizon,
        seed=args.seed,
    )
    table = EXPERIMENTS[args.name](config)
    print(table.pretty())
    return 0


def _cmd_datasets() -> int:
    for name in sorted(DATASETS):
        print(name)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
