"""Command-line interface: explore policies and regenerate experiment tables.

Usage (after ``pip install -e .``)::

    python -m repro policy G1 --size 8
    python -m repro --seed 7 release --policy Gb --epsilon 1.0 --cell 27
    python -m repro release --mechanism planar_laplace --cell 27 --count 1000
    python -m repro release --cell 27 --count 1000 --array-backend numpy
    python -m repro experiment e1 --size 8 --users 12 --horizon 36
    python -m repro experiment e4 --float32
    python -m repro experiment e1 --shards 4 --backend pool
    python -m repro experiment e11 --shards 4 --backend process
    python -m repro experiment e8 --engine-spec spec.json --shards 4 --backend process
    python -m repro experiment e8 --shards 4 --backend pool --async-ingest
    python -m repro experiment e8 --shards 4 --store run.sqlite
    python -m repro experiment e8 --shards 4 --store run.sqlite --resume
    python -m repro experiment e8 --shards 4 --backend rpc --workers 2 4
    python -m repro experiment e1 --shards 4 --backend rpc --workers 2 --worker-timeout 30
    python -m repro query summary --store run.sqlite
    python -m repro query contact-rate --store run.sqlite --window 0 11
    python -m repro query flows --store run.sqlite --window 4 7 --kind true
    python -m repro query top-cells --engine-spec spec.json -k 5
    python -m repro query epsilon --store run.sqlite --user 3 --window 0 35
    python -m repro query trajectory --store run.sqlite --user 3
    python -m repro engines
    python -m repro datasets

The CLI is a thin veneer over the public API — every subcommand body is a
few lines of the same calls a notebook user would write.  Mechanism, policy
and backend names resolve through the engine registry, so both the paper's
display names (``P-LM``) and the canonical spec names (``planar_laplace``)
work.  A global ``--seed`` (before the subcommand) makes any invocation
reproducible end to end; subcommand-level ``--seed`` flags override it.
Saved :class:`~repro.engine.EngineSpec` JSON files (the ``EngineSpec.
to_dict`` format, see ``docs/engine_specs.md``) plug into any experiment via
``--engine-spec``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import Sequence

from repro.engine import (
    EngineSpec,
    PrivacyEngine,
    backend_names,
    mechanism_names,
    policy_names,
)
from repro.experiments.configs import ExperimentConfig
from repro.experiments import harness
from repro.geo.grid import GridWorld
from repro.mobility.datasets import DATASETS

__all__ = ["main", "build_parser"]

EXPERIMENTS = {
    "e1": harness.run_monitoring_utility,
    "e2": harness.run_r0_estimation,
    "e3": harness.run_contact_tracing,
    "e4": harness.run_adversary_error,
    "e5": harness.run_random_policy_tradeoff,
    "e6": harness.run_theorem_bounds,
    "e7": harness.run_policy_matrix,
    "e8": harness.run_scalability,
    "e9": harness.run_mechanism_ablation,
    "e10": harness.run_temporal_privacy,
    "e11": harness.run_metapop_forecast,
    "e12": harness.run_dataset_sensitivity,
}

#: experiments whose runners consume ``--shards`` / ``--backend``: E8 pins
#: its sweep, the others route their metrics over the distributed
#: evaluation path.  Anything else has no shard-parallel work and errors.
SHARDED_EXPERIMENTS = frozenset({"e1", "e2", "e3", "e4", "e5", "e8", "e11"})

#: Names accepted on the command line: paper display names plus canonical
#: spec names, all resolved through the engine registry.
_MECHANISM_CHOICES = sorted(
    set(mechanism_names()) | {"P-LM", "P-PIM", "GraphExp", "Geo-I"}
)
_POLICY_CHOICES = sorted(policy_names())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PANDA: policy-aware location privacy for epidemic surveillance",
    )
    parser.add_argument(
        "--seed",
        dest="global_seed",
        type=int,
        default=None,
        help="global RNG seed applied to every subcommand (reproducible runs)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    policy = sub.add_parser("policy", help="show statistics of a named policy graph")
    policy.add_argument("name", choices=_POLICY_CHOICES)
    policy.add_argument("--size", type=int, default=10, help="grid side length")

    release = sub.add_parser("release", help="perturb one location (or a batch)")
    release.add_argument("--policy", choices=_POLICY_CHOICES, default="G1")
    release.add_argument("--mechanism", choices=_MECHANISM_CHOICES, default="P-LM")
    release.add_argument("--epsilon", type=float, default=1.0)
    release.add_argument("--cell", type=int, default=0)
    release.add_argument("--size", type=int, default=10)
    release.add_argument("--seed", type=int, default=None)
    release.add_argument(
        "--count",
        type=int,
        default=1,
        help="release the cell this many times through one batched engine call",
    )
    release.add_argument(
        "--array-backend",
        default=None,
        metavar="NAME",
        help="array namespace for mechanism kernels (numpy is the bit-exact "
        "default; cupy/torch when installed — see `repro engines`). "
        "Unavailable backends exit with an error.",
    )

    experiment = sub.add_parser("experiment", help="run an experiment and print its table")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--size", type=int, default=8)
    experiment.add_argument("--users", type=int, default=12)
    experiment.add_argument("--horizon", type=int, default=36)
    experiment.add_argument("--seed", type=int, default=None)
    experiment.add_argument(
        "--epsilons", type=float, nargs="+", default=[0.5, 1.0, 2.0]
    )
    experiment.add_argument(
        "--engine-spec",
        type=Path,
        default=None,
        metavar="PATH",
        help="JSON EngineSpec file (EngineSpec.to_dict format) pinning the "
        "experiment's mechanism/policy/epsilon — and, if the spec carries an "
        "execution block, its backend and shard count",
    )
    experiment.add_argument(
        "--shards",
        type=int,
        default=None,
        help="e8: pin the scalability sweep to one shard count; "
        "e1/e2/e3/e4/e5/e11: run their metrics shard-parallel with this "
        "many shards (experiments without distributed metrics error)",
    )
    experiment.add_argument(
        "--backend",
        choices=backend_names(),
        default=None,
        help="e8: pin the scalability sweep to one execution backend; "
        "e1/e2/e3/e4/e5/e11: execution backend for shard-parallel metrics "
        "(e.g. the long-lived 'pool' worker pool)",
    )
    experiment.add_argument(
        "--async-ingest",
        action="store_true",
        help="e8: overlap sharded release computation with server commits "
        "through the bounded async commit queue",
    )
    experiment.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="rpc backend only: remote worker-process count; e8 accepts "
        "several counts and sweeps one row block per count, metric runners "
        "take exactly one",
    )
    experiment.add_argument(
        "--worker-timeout",
        type=float,
        default=None,
        metavar="S",
        help="rpc backend only: seconds without a heartbeat/result before a "
        "worker is declared lost and its shard is retried elsewhere",
    )
    experiment.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="PATH",
        help="e8: additionally time durable ingest — every shard committed "
        "transactionally into a SQLite TraceStore at PATH (reported in the "
        "durable_releases_per_sec column; see docs/persistence.md)",
    )
    experiment.add_argument(
        "--array-backend",
        default=None,
        metavar="NAME",
        help="array namespace for every engine the experiment builds "
        "(numpy is the bit-exact default; unavailable backends exit with "
        "an error — see `repro engines` for availability)",
    )
    experiment.add_argument(
        "--float32",
        action="store_true",
        help="run the Bayesian attacker's batched GEMMs in single precision "
        "(~1e-3 relative tolerance on adversary metrics; scalar reference "
        "paths stay float64)",
    )
    experiment.add_argument(
        "--resume",
        action="store_true",
        help="e8: resume the interrupted store-backed run recorded at "
        "--store instead of starting fresh (spec/seed mismatches abort)",
    )
    experiment.add_argument(
        "--live-metrics",
        action="store_true",
        help="e8: maintain the live metric views (monitoring utility, "
        "contact rate, flow matrices) incrementally during sharded ingest "
        "and report the per-round snapshot-vs-batch-recompute check and "
        "live query speedup (see docs/live_metrics.md)",
    )

    query = sub.add_parser(
        "query", help="windowed analytics over a durable trace store"
    )
    query.add_argument(
        "what",
        choices=["summary", "contact-rate", "flows", "top-cells", "epsilon", "trajectory"],
        help="which accelerator-served query to run (see docs/queries.md)",
    )
    query.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="PATH",
        help="SQLite TraceStore written by `experiment e8 --store PATH` "
        "(or any run_release_rounds_batched store)",
    )
    query.add_argument(
        "--engine-spec",
        type=Path,
        default=None,
        metavar="PATH",
        help="JSON EngineSpec whose execution block names the store — the "
        "same file that drove the run answers queries about it",
    )
    query.add_argument(
        "--window",
        type=int,
        nargs=2,
        default=None,
        metavar=("START", "END"),
        help="closed round interval [START, END]; defaults to the store's "
        "full committed range",
    )
    query.add_argument(
        "--kind",
        choices=["observed", "true"],
        default="observed",
        help="observed = the stored (privatised, snapped) rows; true = "
        "ground-truth summaries, when the run maintained them",
    )
    query.add_argument(
        "--user", type=int, default=None, help="epsilon/trajectory: which user"
    )
    query.add_argument(
        "-k", type=int, default=5, help="top-cells: how many cells (default 5)"
    )
    query.add_argument(
        "--block-rows", type=int, default=4, help="flows: area tiling rows"
    )
    query.add_argument(
        "--block-cols", type=int, default=4, help="flows: area tiling columns"
    )

    sub.add_parser(
        "engines", help="list registered mechanism, policy, and backend names"
    )
    sub.add_parser("datasets", help="list the available synthetic datasets")
    return parser


def _effective_seed(args: argparse.Namespace, fallback: int | None = None):
    """Subcommand ``--seed`` wins, else the global ``--seed``, else fallback."""
    local = getattr(args, "seed", None)
    if local is not None:
        return local
    if args.global_seed is not None:
        return args.global_seed
    return fallback


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "policy":
        return _cmd_policy(args)
    if args.command == "release":
        return _cmd_release(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "engines":
        return _cmd_engines()
    if args.command == "datasets":
        return _cmd_datasets()
    return 2  # pragma: no cover - argparse enforces the choices


def _cmd_policy(args: argparse.Namespace) -> int:
    from repro.experiments.configs import build_policy

    world = GridWorld(args.size, args.size)
    graph = build_policy(args.name, world)
    print(f"policy {graph.name} on a {args.size}x{args.size} world")
    print(f"  nodes        : {graph.n_nodes}")
    print(f"  edges        : {graph.n_edges}")
    print(f"  density      : {graph.density():.4f}")
    print(f"  components   : {len(graph.components())}")
    print(f"  disclosable  : {len(graph.disclosable_nodes())}")
    print(f"  diameter     : {graph.diameter()}")
    return 0


def _cmd_release(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.utils.rng import ensure_rng

    world = GridWorld(args.size, args.size)
    if args.cell not in world:
        print(f"error: cell {args.cell} outside the {world.n_cells}-cell world", file=sys.stderr)
        return 1
    try:
        engine = PrivacyEngine.from_spec(
            world,
            mechanism=args.mechanism,
            policy=args.policy,
            epsilon=args.epsilon,
            array_backend=args.array_backend,
        )
    except ReproError as exc:
        # e.g. optimal_lp's component-size guard on a large world, or an
        # --array-backend that is unknown / not installed (the error lists
        # what is available instead of an ImportError traceback).
        print(f"error: {exc}", file=sys.stderr)
        return 1
    seed = _effective_seed(args)
    rng = ensure_rng(seed) if seed is not None else None
    print(f"true cell {args.cell} at {world.coords(args.cell)}")
    if args.count <= 1:
        release = engine.release(args.cell, rng=rng)
        x, y = release.point
        print(f"released  ({x:.3f}, {y:.3f})  exact={release.exact}  epsilon={release.epsilon}")
        return 0
    batch = engine.release_batch([args.cell] * args.count, rng=rng)
    mean_x, mean_y = batch.points.mean(axis=0)
    print(
        f"released batch of {len(batch)}  mean=({mean_x:.3f}, {mean_y:.3f})  "
        f"exact={int(batch.exact.sum())}/{len(batch)}  "
        f"epsilon_total={float(batch.epsilons.sum()):.3f}"
    )
    for x, y in batch.points[: min(5, len(batch))]:
        print(f"  ({x:.3f}, {y:.3f})")
    if len(batch) > 5:
        print(f"  ... {len(batch) - 5} more")
    return 0


def _load_engine_spec(path: Path) -> EngineSpec:
    """Parse a saved ``EngineSpec.to_dict`` JSON file."""
    return EngineSpec.from_dict(json.loads(path.read_text()))


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.errors import ReproError, StoreError, ValidationError

    config = ExperimentConfig(
        world_size=args.size,
        n_users=args.users,
        horizon=args.horizon,
        epsilons=tuple(args.epsilons),
        tracing_window=args.horizon,
        seed=_effective_seed(args, fallback=2020),
    )
    try:
        if args.engine_spec is not None:
            spec = _load_engine_spec(args.engine_spec)
            config = config.with_engine_spec(spec)
            dropped = [
                label
                for label, present in (
                    ("mechanism/policy params", spec.mechanism.params or spec.policy.params),
                    ("the execution block", spec.execution is not None),
                )
                if present
            ]
            if args.name != "e8" and dropped:
                # The name-based E1-E7 sweeps honour the spec's names and
                # epsilon only; factory params and sharded execution flow
                # where the engine is built from the spec itself (E8).  Say
                # so instead of silently running a different configuration.
                print(
                    f"warning: experiment {args.name} ignores "
                    f"{' and '.join(dropped)} from the engine spec (only e8 "
                    "builds the engine from the spec verbatim)",
                    file=sys.stderr,
                )
        # For E8 the flags pin the release-throughput sweep; for the metric
        # runners they route metric calls over the distributed evaluation
        # path with that shard count / backend.  Experiments with no
        # shard-parallel work refuse the flags outright — an ignored
        # distribution request should never look like a distributed run.
        if (args.shards is not None or args.backend is not None) and (
            args.name not in SHARDED_EXPERIMENTS
        ):
            supported = ", ".join(sorted(SHARDED_EXPERIMENTS, key=lambda n: int(n[1:])))
            raise ValidationError(
                f"experiment {args.name} has no shard-parallel metrics; "
                f"--shards/--backend apply to: {supported}"
            )
        if args.async_ingest:
            if args.name != "e8":
                raise ValidationError(
                    "--async-ingest overlaps sharded release commits and "
                    "only applies to e8"
                )
            config = replace(config, async_ingest=True)
        if args.shards is not None:
            if args.shards < 1:
                raise ValidationError(f"shards must be >= 1, got {args.shards}")
            field = "shard_counts" if args.name == "e8" else "eval_shards"
            value = (args.shards,) if args.name == "e8" else args.shards
            config = replace(config, **{field: value})
        if args.backend is not None:
            if args.name == "e8":
                config = replace(config, backends=(args.backend,))
            else:
                config = replace(config, eval_backend=args.backend)
        if args.workers is not None or args.worker_timeout is not None:
            # These knobs configure the rpc worker cluster; accepting them
            # for in-process backends would silently do nothing.
            if args.backend != "rpc":
                raise ValidationError(
                    "--workers/--worker-timeout configure the rpc worker "
                    "cluster; pass --backend rpc"
                )
            params: dict = {}
            if args.worker_timeout is not None:
                if args.worker_timeout <= 0:
                    raise ValidationError(
                        f"worker-timeout must be > 0, got {args.worker_timeout}"
                    )
                params["worker_timeout"] = float(args.worker_timeout)
            if args.workers is not None:
                if any(count < 1 for count in args.workers):
                    raise ValidationError(f"workers must be >= 1, got {args.workers}")
                if args.name == "e8":
                    config = replace(config, worker_counts=tuple(args.workers))
                elif len(args.workers) == 1:
                    params["workers"] = int(args.workers[0])
                else:
                    raise ValidationError(
                        f"experiment {args.name} runs one worker cluster; "
                        "pass a single --workers count (e8 sweeps several)"
                    )
            if params:
                config = replace(config, backend_params=tuple(sorted(params.items())))
        if args.array_backend is not None:
            # Resolve now so an unknown or uninstalled backend exits 1 with
            # the availability table instead of surfacing mid-sweep.
            from repro.core.xp import resolve_array_backend

            backend = resolve_array_backend(args.array_backend)
            config = replace(config, array_backend=backend.name)
        if args.float32:
            config = replace(config, float32=True)
        if args.store is not None or args.resume:
            if args.name != "e8":
                raise ValidationError(
                    "--store/--resume drive the durable ingest sweep and "
                    "only apply to e8"
                )
            if args.resume and args.store is None:
                raise ValidationError("--resume requires --store")
            config = replace(config, store_path=str(args.store), resume=args.resume)
        if args.live_metrics:
            if args.name != "e8":
                raise ValidationError(
                    "--live-metrics rides e8's sharded release runs and "
                    "only applies to e8"
                )
            config = replace(config, live_metrics=True)
    except (ReproError, OSError, ValueError, KeyError) as exc:
        # bad spec file: missing, malformed JSON, or unknown registry names.
        # Only construction is guarded — a failure inside a runner is a bug
        # and should surface as a traceback, not a one-line message.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        table = EXPERIMENTS[args.name](config)
    except StoreError as exc:
        # Store failures are environmental/operator errors, not bugs: a
        # resume against the wrong spec or seed (ResumeMismatchError), an
        # unreadable path, an incompatible schema.  Exit non-zero with the
        # message instead of a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(table.pretty())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.query import QueryEngine, Window

    if (args.store is None) == (args.engine_spec is None):
        print(
            "error: pass exactly one of --store PATH or --engine-spec PATH",
            file=sys.stderr,
        )
        return 1
    try:
        if args.store is not None:
            store_path = args.store
        else:
            spec = _load_engine_spec(args.engine_spec)
            if spec.execution is None or spec.execution.store is None:
                print(
                    f"error: engine spec {args.engine_spec} has no "
                    "execution.store path to query",
                    file=sys.stderr,
                )
                return 1
            store_path = Path(spec.execution.store)
        if not store_path.exists():
            print(f"error: no trace store at {store_path}", file=sys.stderr)
            return 1
        with QueryEngine(store_path) as engine:
            if args.window is not None:
                window = Window(args.window[0], args.window[1])
            else:
                times = engine.store.times()
                if not times:
                    print(
                        f"error: store {store_path} holds no committed rounds",
                        file=sys.stderr,
                    )
                    return 1
                window = Window(times[0], times[-1])
            if args.what in {"epsilon", "trajectory"} and args.user is None:
                print(f"error: query {args.what} requires --user", file=sys.stderr)
                return 1
            return _run_query(engine, window, args)
    except (ReproError, OSError, ValueError, KeyError) as exc:
        # Operator errors — a half-covered window (SnapshotUnavailableError
        # naming the missing shards), an empty window (DataError), a store
        # without true-side summaries, a malformed spec file — exit 1 with
        # the message rather than a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _run_query(engine, window, args: argparse.Namespace) -> int:
    """Dispatch one resolved query and print its answer."""
    if args.what == "summary":
        for key, value in engine.summary().items():
            print(f"  {key:16}: {value}")
        return 0
    if args.what == "contact-rate":
        estimate = engine.contact_rate(window, kind=args.kind)
        print(f"window [{window.start}, {window.end}]  kind={args.kind}")
        print(f"  observations : {estimate.observations}")
        print(f"  pair_events  : {estimate.pair_events}")
        print(f"  contact_rate : {estimate.contact_rate:.6f}")
        print(f"  r0           : {estimate.r0:.6f}")
        return 0
    if args.what == "flows":
        flows = engine.flow_matrix(
            window, kind=args.kind, block_rows=args.block_rows, block_cols=args.block_cols
        )
        print(
            f"window [{window.start}, {window.end}]  kind={args.kind}  "
            f"tiling {args.block_rows}x{args.block_cols}  "
            f"({sum(flows.values())} transitions)"
        )
        for (src, dst), count in sorted(flows.items()):
            print(f"  area {src:3} -> {dst:3} : {count}")
        return 0
    if args.what == "top-cells":
        print(f"window [{window.start}, {window.end}]  kind={args.kind}")
        for cell, count in engine.top_cells(window, args.k, kind=args.kind):
            print(f"  cell {cell:4} : {count}")
        return 0
    if args.what == "epsilon":
        spent = engine.epsilon_spent(args.user, window)
        print(
            f"user {args.user} spent epsilon {spent:.6f} over "
            f"[{window.start}, {window.end}]"
        )
        return 0
    if args.what == "trajectory":
        checkins = engine.trajectory(args.user, window)
        print(f"user {args.user}: {len(checkins)} check-ins")
        for checkin in checkins:
            print(f"  t={checkin.time:4}  cell {checkin.cell}")
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


def _cmd_engines() -> int:
    import sqlite3

    print("mechanisms:")
    for name in mechanism_names():
        print(f"  {name}")
    print("policies:")
    for name in policy_names():
        print(f"  {name}")
    print("backends:")
    for name in backend_names():
        print(f"  {name}")
    print("array backends:")
    from repro.core.xp import probe_array_backends

    # Availability is probed without importing (importlib.find_spec), so
    # listing never pays a CUDA/torch import or crashes on a broken install.
    for name, available in sorted(probe_array_backends().items()):
        status = "available" if available else "not installed"
        print(f"  {name} ({status})")
    print("store:")
    from repro.store import SCHEMA_VERSION

    print(
        f"  sqlite (TraceStore schema v{SCHEMA_VERSION}, "
        f"SQLite {sqlite3.sqlite_version}, WAL) — "
        "durable shard commits via `experiment e8 --store PATH`"
    )
    return 0


def _cmd_datasets() -> int:
    for name in sorted(DATASETS):
        print(name)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
