"""Planar distance functions used throughout the library.

Points are ``(x, y)`` pairs (tuples, lists, or ndarrays of length 2).  The
paper's utility metric for location monitoring is the Euclidean distance
between the released and the true location (Sec. 3.2, evaluation 1).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["euclidean", "manhattan", "chebyshev", "pairwise_euclidean"]

Point = Sequence[float]


def euclidean(a: Point, b: Point) -> float:
    """Euclidean (L2) distance between two planar points."""
    return math.hypot(float(a[0]) - float(b[0]), float(a[1]) - float(b[1]))


def manhattan(a: Point, b: Point) -> float:
    """Manhattan (L1) distance between two planar points."""
    return abs(float(a[0]) - float(b[0])) + abs(float(a[1]) - float(b[1]))


def chebyshev(a: Point, b: Point) -> float:
    """Chebyshev (L-infinity) distance between two planar points."""
    return max(abs(float(a[0]) - float(b[0])), abs(float(a[1]) - float(b[1])))


def pairwise_euclidean(points: np.ndarray) -> np.ndarray:
    """All-pairs Euclidean distance matrix for an ``(n, 2)`` array."""
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"expected (n, 2) array, got shape {pts.shape}")
    diff = pts[:, None, :] - pts[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))
