"""The grid world: a discrete universe of locations on a map.

The paper models "all possible locations" as cells of a regular grid (the
dots of Fig. 2 and Fig. 4).  :class:`GridWorld` owns the bijection between
integer cell identifiers and continuous planar coordinates, adjacency on the
map, and the coarse-area partition used by the Ga/Gb policy graphs.

Conventions
-----------
* Cells are identified by ``cell_id = row * width + col`` with ``row`` growing
  northwards and ``col`` eastwards, matching the "(North)/(East)" axes in the
  paper's figures.
* The continuous coordinate of a cell is its centre:
  ``((col + 0.5) * cell_size, (row + 0.5) * cell_size)``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_integer, check_positive

__all__ = ["GridWorld", "FUSED_TILE_ROWS"]

#: Row-tile size shared by the fused kernels (P-LM / Geo-I perturbation,
#: snapping, area coding).  A fused kernel makes several elementwise passes
#: over its buffers; running those passes over contiguous row blocks keeps
#: each block resident in L2 instead of streaming the whole round through
#: RAM once per pass.  Tiling changes neither the RNG stream (uniform tiles
#: fill the same contiguous buffer in draw order) nor any per-element
#: floating-op sequence, so fused output stays bit-exact.  Defined here, at
#: the bottom of the dependency graph, and re-exported by
#: :mod:`repro.core.workspace`, the kernel layer's public face.
FUSED_TILE_ROWS = 16384


class GridWorld:
    """A ``width x height`` grid of locations with continuous coordinates.

    Parameters
    ----------
    width, height:
        Grid dimensions in cells; both must be >= 1.
    cell_size:
        Side length of a cell in map units (e.g. kilometres).  Euclidean
        utility numbers scale linearly with this.
    """

    def __init__(self, width: int, height: int, cell_size: float = 1.0) -> None:
        self.width = check_integer("width", width, minimum=1)
        self.height = check_integer("height", height, minimum=1)
        self.cell_size = check_positive("cell_size", cell_size)

    # ------------------------------------------------------------------
    # Identity / container protocol
    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        """Total number of cells (locations) in the world."""
        return self.width * self.height

    def __len__(self) -> int:
        return self.n_cells

    def __contains__(self, cell: int) -> bool:
        return isinstance(cell, (int, np.integer)) and 0 <= int(cell) < self.n_cells

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n_cells))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GridWorld):
            return NotImplemented
        return (
            self.width == other.width
            and self.height == other.height
            and self.cell_size == other.cell_size
        )

    def __hash__(self) -> int:
        return hash((self.width, self.height, self.cell_size))

    def __repr__(self) -> str:
        return f"GridWorld(width={self.width}, height={self.height}, cell_size={self.cell_size})"

    # ------------------------------------------------------------------
    # Cell id <-> (row, col) <-> coordinates
    # ------------------------------------------------------------------
    def check_cell(self, cell: int) -> int:
        """Validate a cell id, returning it as a plain ``int``."""
        if cell not in self:
            raise ValidationError(f"cell {cell!r} outside grid with {self.n_cells} cells")
        return int(cell)

    def cell_of(self, row: int, col: int) -> int:
        """Cell id of grid position ``(row, col)``."""
        if not (0 <= row < self.height and 0 <= col < self.width):
            raise ValidationError(f"(row={row}, col={col}) outside {self.height}x{self.width} grid")
        return row * self.width + col

    def rowcol(self, cell: int) -> tuple[int, int]:
        """Grid position ``(row, col)`` of a cell id."""
        cell = self.check_cell(cell)
        return divmod(cell, self.width)

    def coords(self, cell: int) -> tuple[float, float]:
        """Continuous centre coordinate ``(x, y)`` of a cell."""
        row, col = self.rowcol(cell)
        return ((col + 0.5) * self.cell_size, (row + 0.5) * self.cell_size)

    def cells_array(self, cells, context: str = "cells_array") -> np.ndarray:
        """Validate an array-like of cell ids, returning a flat int array."""
        if not isinstance(cells, np.ndarray):
            cells = list(cells)
        arr = np.asarray(cells, dtype=int)
        if arr.size and (arr.min() < 0 or arr.max() >= self.n_cells):
            raise ValidationError(f"cell id out of range in {context}")
        return arr

    def _centre_table(self) -> np.ndarray:
        """Write-protected ``(n_cells, 2)`` table of every cell centre.

        Built once per world with the same formula as the allocating
        :meth:`coords_array` path, so gathering rows from it is bit-exact
        against computing the centres on the fly.
        """
        table = self.__dict__.get("_coords_table")
        if table is None:
            table = self.coords_array()
            table.setflags(write=False)
            self.__dict__["_coords_table"] = table
        return table

    def coords_array(self, cells=None, out=None, workspace=None) -> np.ndarray:
        """``(n, 2)`` array of centre coordinates for ``cells`` (default: all).

        With ``out`` (an ``(n, 2)`` float array, usually a
        :class:`~repro.core.workspace.RoundWorkspace` view) the centres are
        gathered from the cached :meth:`_centre_table` in one ``np.take`` —
        element-wise identical to the allocating path, since the table rows
        were computed with the same ``(col + 0.5) * cell_size`` formula.
        ``workspace`` is accepted for signature symmetry with the other
        fused kernels; the gather needs no scratch.
        """
        if cells is None:
            cells = np.arange(self.n_cells)
        cells = self.cells_array(cells, context="coords_array")
        if out is None:
            rows, cols = np.divmod(cells, self.width)
            return np.column_stack(
                ((cols + 0.5) * self.cell_size, (rows + 0.5) * self.cell_size)
            )
        np.take(self._centre_table(), cells, axis=0, out=out)
        return out

    def snap(self, point) -> int:
        """Cell id containing the continuous point (clamped to the map edge).

        Perturbed locations can land outside the map; the paper's utility and
        tracing pipelines snap them back to the nearest cell, which this clamp
        implements.
        """
        x = float(point[0]) / self.cell_size
        y = float(point[1]) / self.cell_size
        col = min(max(int(np.floor(x)), 0), self.width - 1)
        row = min(max(int(np.floor(y)), 0), self.height - 1)
        return self.cell_of(row, col)

    def snap_batch(self, points, out=None, workspace=None) -> np.ndarray:
        """Vectorized :meth:`snap`: ``(n, 2)`` points to ``(n,)`` cell ids.

        With ``out`` (an ``(n,)`` int array) snapping runs through ``out=``
        ufunc parameters over workspace scratch instead of allocating —
        the per-element sequence (divide, floor, int cast, clip, combine)
        is identical, so the snapped ids match the allocating path exactly.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValidationError(f"snap_batch expects (n, 2) points, got {pts.shape}")
        if out is None:
            cols = np.clip(np.floor(pts[:, 0] / self.cell_size).astype(int), 0, self.width - 1)
            rows = np.clip(np.floor(pts[:, 1] / self.cell_size).astype(int), 0, self.height - 1)
            return rows * self.width + cols
        n = len(pts)
        if workspace is not None:
            scratch = workspace.buffer("geo_scratch_f", n)
            cols = workspace.int_buffer("geo_scratch_i", n)
        else:
            scratch = np.empty(n, dtype=float)
            cols = np.empty(n, dtype=int)
        # Tiled over contiguous row blocks so the multi-pass sequence stays
        # in cache; per-element ops are unchanged, so ids stay bit-exact.
        for start in range(0, n, FUSED_TILE_ROWS):
            stop = min(start + FUSED_TILE_ROWS, n)
            s = scratch[start:stop]
            c = cols[start:stop]
            o = out[start:stop]
            np.divide(pts[start:stop, 0], self.cell_size, out=s)
            np.floor(s, out=s)
            c[...] = s  # the staged path's astype(int)
            np.clip(c, 0, self.width - 1, out=c)
            np.divide(pts[start:stop, 1], self.cell_size, out=s)
            np.floor(s, out=s)
            o[...] = s
            np.clip(o, 0, self.height - 1, out=o)
            np.multiply(o, self.width, out=o)
            np.add(o, c, out=o)
        return out

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between the centres of two cells."""
        xa, ya = self.coords(a)
        xb, yb = self.coords(b)
        return float(np.hypot(xa - xb, ya - yb))

    # ------------------------------------------------------------------
    # Map adjacency
    # ------------------------------------------------------------------
    def neighbors(self, cell: int, connectivity: int = 8) -> list[int]:
        """Cells adjacent on the map.

        ``connectivity=8`` matches the paper's G1 ("every location has edges
        with its closest eight locations on the map"); ``connectivity=4``
        gives rook adjacency.
        """
        if connectivity not in (4, 8):
            raise ValidationError(f"connectivity must be 4 or 8, got {connectivity}")
        row, col = self.rowcol(cell)
        if connectivity == 4:
            offsets = ((-1, 0), (1, 0), (0, -1), (0, 1))
        else:
            offsets = tuple(
                (dr, dc) for dr in (-1, 0, 1) for dc in (-1, 0, 1) if (dr, dc) != (0, 0)
            )
        result = []
        for drow, dcol in offsets:
            nrow, ncol = row + drow, col + dcol
            if 0 <= nrow < self.height and 0 <= ncol < self.width:
                result.append(self.cell_of(nrow, ncol))
        return result

    # ------------------------------------------------------------------
    # Coarse-area partition (for policies Ga / Gb)
    # ------------------------------------------------------------------
    def area_of(self, cell: int, block_rows: int, block_cols: int) -> int:
        """Index of the coarse area containing ``cell``.

        The map is tiled with ``block_rows x block_cols`` blocks ("cities or
        provinces" in the paper's location-monitoring policy Ga).  Edge blocks
        may be smaller when the grid is not an exact multiple.
        """
        check_integer("block_rows", block_rows, minimum=1)
        check_integer("block_cols", block_cols, minimum=1)
        row, col = self.rowcol(cell)
        blocks_per_row = -(-self.width // block_cols)  # ceil division
        return (row // block_rows) * blocks_per_row + (col // block_cols)

    def area_of_batch(self, cells, block_rows: int, block_cols: int, out=None, workspace=None) -> np.ndarray:
        """Vectorized :meth:`area_of`: ``(n,)`` cell ids to ``(n,)`` area ids.

        With ``out`` (an ``(n,)`` int array, must not alias ``cells``) the
        area codes are computed in place over workspace scratch; pure
        integer arithmetic, so results are identical to the allocating
        path.
        """
        check_integer("block_rows", block_rows, minimum=1)
        check_integer("block_cols", block_cols, minimum=1)
        arr = self.cells_array(cells, context="area_of_batch")
        blocks_per_row = -(-self.width // block_cols)  # ceil division
        if out is None:
            rows, cols = np.divmod(arr, self.width)
            return (rows // block_rows) * blocks_per_row + (cols // block_cols)
        n = len(arr)
        rows = (
            workspace.int_buffer("geo_scratch_i", n)
            if workspace is not None
            else np.empty(n, dtype=int)
        )
        for start in range(0, n, FUSED_TILE_ROWS):
            stop = min(start + FUSED_TILE_ROWS, n)
            a = arr[start:stop]
            r = rows[start:stop]
            o = out[start:stop]
            np.floor_divide(a, self.width, out=r)
            np.multiply(r, self.width, out=o)
            np.subtract(a, o, out=o)  # o holds cols
            np.floor_divide(o, block_cols, out=o)
            np.floor_divide(r, block_rows, out=r)
            np.multiply(r, blocks_per_row, out=r)
            np.add(o, r, out=o)
        return out

    def n_areas(self, block_rows: int, block_cols: int) -> int:
        """Number of coarse areas in the ``block_rows x block_cols`` tiling."""
        check_integer("block_rows", block_rows, minimum=1)
        check_integer("block_cols", block_cols, minimum=1)
        return (-(-self.height // block_rows)) * (-(-self.width // block_cols))

    def areas(self, block_rows: int, block_cols: int) -> dict[int, list[int]]:
        """Partition of all cells into coarse areas, ``{area_id: [cells]}``."""
        partition: dict[int, list[int]] = {}
        for cell in self:
            partition.setdefault(self.area_of(cell, block_rows, block_cols), []).append(cell)
        return partition

    def area_centroid(self, cells: list[int]) -> tuple[float, float]:
        """Mean centre coordinate of a set of cells (for flow aggregation)."""
        if not cells:
            raise ValidationError("cannot take the centroid of zero cells")
        pts = self.coords_array(cells)
        cx, cy = pts.mean(axis=0)
        return (float(cx), float(cy))
