"""The grid world: a discrete universe of locations on a map.

The paper models "all possible locations" as cells of a regular grid (the
dots of Fig. 2 and Fig. 4).  :class:`GridWorld` owns the bijection between
integer cell identifiers and continuous planar coordinates, adjacency on the
map, and the coarse-area partition used by the Ga/Gb policy graphs.

Conventions
-----------
* Cells are identified by ``cell_id = row * width + col`` with ``row`` growing
  northwards and ``col`` eastwards, matching the "(North)/(East)" axes in the
  paper's figures.
* The continuous coordinate of a cell is its centre:
  ``((col + 0.5) * cell_size, (row + 0.5) * cell_size)``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_integer, check_positive

__all__ = ["GridWorld"]


class GridWorld:
    """A ``width x height`` grid of locations with continuous coordinates.

    Parameters
    ----------
    width, height:
        Grid dimensions in cells; both must be >= 1.
    cell_size:
        Side length of a cell in map units (e.g. kilometres).  Euclidean
        utility numbers scale linearly with this.
    """

    def __init__(self, width: int, height: int, cell_size: float = 1.0) -> None:
        self.width = check_integer("width", width, minimum=1)
        self.height = check_integer("height", height, minimum=1)
        self.cell_size = check_positive("cell_size", cell_size)

    # ------------------------------------------------------------------
    # Identity / container protocol
    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        """Total number of cells (locations) in the world."""
        return self.width * self.height

    def __len__(self) -> int:
        return self.n_cells

    def __contains__(self, cell: int) -> bool:
        return isinstance(cell, (int, np.integer)) and 0 <= int(cell) < self.n_cells

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n_cells))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GridWorld):
            return NotImplemented
        return (
            self.width == other.width
            and self.height == other.height
            and self.cell_size == other.cell_size
        )

    def __hash__(self) -> int:
        return hash((self.width, self.height, self.cell_size))

    def __repr__(self) -> str:
        return f"GridWorld(width={self.width}, height={self.height}, cell_size={self.cell_size})"

    # ------------------------------------------------------------------
    # Cell id <-> (row, col) <-> coordinates
    # ------------------------------------------------------------------
    def check_cell(self, cell: int) -> int:
        """Validate a cell id, returning it as a plain ``int``."""
        if cell not in self:
            raise ValidationError(f"cell {cell!r} outside grid with {self.n_cells} cells")
        return int(cell)

    def cell_of(self, row: int, col: int) -> int:
        """Cell id of grid position ``(row, col)``."""
        if not (0 <= row < self.height and 0 <= col < self.width):
            raise ValidationError(f"(row={row}, col={col}) outside {self.height}x{self.width} grid")
        return row * self.width + col

    def rowcol(self, cell: int) -> tuple[int, int]:
        """Grid position ``(row, col)`` of a cell id."""
        cell = self.check_cell(cell)
        return divmod(cell, self.width)

    def coords(self, cell: int) -> tuple[float, float]:
        """Continuous centre coordinate ``(x, y)`` of a cell."""
        row, col = self.rowcol(cell)
        return ((col + 0.5) * self.cell_size, (row + 0.5) * self.cell_size)

    def cells_array(self, cells, context: str = "cells_array") -> np.ndarray:
        """Validate an array-like of cell ids, returning a flat int array."""
        if not isinstance(cells, np.ndarray):
            cells = list(cells)
        arr = np.asarray(cells, dtype=int)
        if arr.size and (arr.min() < 0 or arr.max() >= self.n_cells):
            raise ValidationError(f"cell id out of range in {context}")
        return arr

    def coords_array(self, cells=None) -> np.ndarray:
        """``(n, 2)`` array of centre coordinates for ``cells`` (default: all)."""
        if cells is None:
            cells = np.arange(self.n_cells)
        cells = self.cells_array(cells, context="coords_array")
        rows, cols = np.divmod(cells, self.width)
        return np.column_stack(((cols + 0.5) * self.cell_size, (rows + 0.5) * self.cell_size))

    def snap(self, point) -> int:
        """Cell id containing the continuous point (clamped to the map edge).

        Perturbed locations can land outside the map; the paper's utility and
        tracing pipelines snap them back to the nearest cell, which this clamp
        implements.
        """
        x = float(point[0]) / self.cell_size
        y = float(point[1]) / self.cell_size
        col = min(max(int(np.floor(x)), 0), self.width - 1)
        row = min(max(int(np.floor(y)), 0), self.height - 1)
        return self.cell_of(row, col)

    def snap_batch(self, points) -> np.ndarray:
        """Vectorized :meth:`snap`: ``(n, 2)`` points to ``(n,)`` cell ids."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValidationError(f"snap_batch expects (n, 2) points, got {pts.shape}")
        cols = np.clip(np.floor(pts[:, 0] / self.cell_size).astype(int), 0, self.width - 1)
        rows = np.clip(np.floor(pts[:, 1] / self.cell_size).astype(int), 0, self.height - 1)
        return rows * self.width + cols

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between the centres of two cells."""
        xa, ya = self.coords(a)
        xb, yb = self.coords(b)
        return float(np.hypot(xa - xb, ya - yb))

    # ------------------------------------------------------------------
    # Map adjacency
    # ------------------------------------------------------------------
    def neighbors(self, cell: int, connectivity: int = 8) -> list[int]:
        """Cells adjacent on the map.

        ``connectivity=8`` matches the paper's G1 ("every location has edges
        with its closest eight locations on the map"); ``connectivity=4``
        gives rook adjacency.
        """
        if connectivity not in (4, 8):
            raise ValidationError(f"connectivity must be 4 or 8, got {connectivity}")
        row, col = self.rowcol(cell)
        if connectivity == 4:
            offsets = ((-1, 0), (1, 0), (0, -1), (0, 1))
        else:
            offsets = tuple(
                (dr, dc) for dr in (-1, 0, 1) for dc in (-1, 0, 1) if (dr, dc) != (0, 0)
            )
        result = []
        for drow, dcol in offsets:
            nrow, ncol = row + drow, col + dcol
            if 0 <= nrow < self.height and 0 <= ncol < self.width:
                result.append(self.cell_of(nrow, ncol))
        return result

    # ------------------------------------------------------------------
    # Coarse-area partition (for policies Ga / Gb)
    # ------------------------------------------------------------------
    def area_of(self, cell: int, block_rows: int, block_cols: int) -> int:
        """Index of the coarse area containing ``cell``.

        The map is tiled with ``block_rows x block_cols`` blocks ("cities or
        provinces" in the paper's location-monitoring policy Ga).  Edge blocks
        may be smaller when the grid is not an exact multiple.
        """
        check_integer("block_rows", block_rows, minimum=1)
        check_integer("block_cols", block_cols, minimum=1)
        row, col = self.rowcol(cell)
        blocks_per_row = -(-self.width // block_cols)  # ceil division
        return (row // block_rows) * blocks_per_row + (col // block_cols)

    def area_of_batch(self, cells, block_rows: int, block_cols: int) -> np.ndarray:
        """Vectorized :meth:`area_of`: ``(n,)`` cell ids to ``(n,)`` area ids."""
        check_integer("block_rows", block_rows, minimum=1)
        check_integer("block_cols", block_cols, minimum=1)
        arr = self.cells_array(cells, context="area_of_batch")
        rows, cols = np.divmod(arr, self.width)
        blocks_per_row = -(-self.width // block_cols)  # ceil division
        return (rows // block_rows) * blocks_per_row + (cols // block_cols)

    def n_areas(self, block_rows: int, block_cols: int) -> int:
        """Number of coarse areas in the ``block_rows x block_cols`` tiling."""
        check_integer("block_rows", block_rows, minimum=1)
        check_integer("block_cols", block_cols, minimum=1)
        return (-(-self.height // block_rows)) * (-(-self.width // block_cols))

    def areas(self, block_rows: int, block_cols: int) -> dict[int, list[int]]:
        """Partition of all cells into coarse areas, ``{area_id: [cells]}``."""
        partition: dict[int, list[int]] = {}
        for cell in self:
            partition.setdefault(self.area_of(cell, block_rows, block_cols), []).append(cell)
        return partition

    def area_centroid(self, cells: list[int]) -> tuple[float, float]:
        """Mean centre coordinate of a set of cells (for flow aggregation)."""
        if not cells:
            raise ValidationError("cannot take the centroid of zero cells")
        pts = self.coords_array(cells)
        cx, cy = pts.mean(axis=0)
        return (float(cx), float(cy))
