"""Geometric substrate: the discrete grid world and a 2-D geometry kernel.

The grid world is the location universe of every experiment in the paper:
locations on "the map" (Fig. 2 / Fig. 4) are cells of a regular grid, each
with a continuous centre coordinate.  The geometry kernel provides the convex
hull / K-norm machinery required by the Planar Isotropic Mechanism.
"""

from repro.geo.grid import GridWorld
from repro.geo.geometry import (
    ConvexPolygon,
    convex_hull,
    knorm,
    sample_uniform_polygon,
    isotropic_transform,
)
from repro.geo.distance import euclidean, manhattan, chebyshev

__all__ = [
    "GridWorld",
    "ConvexPolygon",
    "convex_hull",
    "knorm",
    "sample_uniform_polygon",
    "isotropic_transform",
    "euclidean",
    "manhattan",
    "chebyshev",
]
