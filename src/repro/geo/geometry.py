"""2-D computational-geometry kernel for the Planar Isotropic Mechanism.

The policy-aware PIM needs, per connected component of the policy graph:

* the **sensitivity hull** — the convex hull of the (symmetrised) coordinate
  differences of 1-neighbor pairs,
* the **K-norm** (Minkowski gauge) of that hull, to evaluate densities,
* **uniform sampling** from the hull, to draw K-norm noise, and
* the **isotropic transform** of Xiao-Xiong's PIM, used for hull analytics.

Everything here is pure NumPy; polygons are small (tens of vertices), so the
O(m) half-plane formulas beat any general-purpose dependency.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.utils.rng import ensure_rng

__all__ = [
    "convex_hull",
    "ConvexPolygon",
    "knorm",
    "sample_uniform_polygon",
    "isotropic_transform",
]


def convex_hull(points: Iterable[Sequence[float]]) -> np.ndarray:
    """Convex hull of planar points, counter-clockwise (Andrew monotone chain).

    Returns an ``(m, 2)`` array of hull vertices.  Collinear interior points
    are dropped.  Degenerate inputs (all points equal / collinear) return the
    1- or 2-point "hull"; callers needing a full-dimensional body should go
    through :meth:`ConvexPolygon.from_points`, which fattens such inputs.
    """
    pts = np.unique(np.asarray(list(points), dtype=float), axis=0)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"expected (n, 2) points, got shape {pts.shape}")
    if len(pts) == 0:
        raise GeometryError("convex hull of zero points")
    if len(pts) <= 2:
        return pts
    # Sort lexicographically, then build lower and upper chains.
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    pts = pts[order]

    def _chain(sequence: np.ndarray) -> list[np.ndarray]:
        chain: list[np.ndarray] = []
        for p in sequence:
            while len(chain) >= 2 and _cross(chain[-2], chain[-1], p) <= 0:
                chain.pop()
            chain.append(p)
        return chain

    lower = _chain(pts)
    upper = _chain(pts[::-1])
    hull = np.array(lower[:-1] + upper[:-1])
    if len(hull) < 3:  # all collinear
        return np.array([pts[0], pts[-1]])
    return hull


def _cross(o: np.ndarray, a: np.ndarray, b: np.ndarray) -> float:
    """z-component of (a - o) x (b - o)."""
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


class ConvexPolygon:
    """An immutable convex polygon with origin-centred gauge support.

    Vertices are stored counter-clockwise.  The polygon caches its half-plane
    representation ``{x : n_i . x <= b_i}``, area, centroid and the covariance
    of the uniform distribution over its interior — everything the K-norm
    mechanism touches per sample.
    """

    def __init__(self, vertices: np.ndarray) -> None:
        verts = np.asarray(vertices, dtype=float)
        if verts.ndim != 2 or verts.shape[1] != 2 or len(verts) < 3:
            raise GeometryError(f"a polygon needs >= 3 vertices, got shape {verts.shape}")
        hull = convex_hull(verts)
        if len(hull) < 3:
            raise GeometryError("vertices are collinear; use ConvexPolygon.from_points")
        self._vertices = hull
        self._vertices.setflags(write=False)
        self._normals, self._offsets = self._halfplanes(hull)
        self._area, self._centroid, self._second_moment = self._moments(hull)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Iterable[Sequence[float]], min_width: float = 1e-9) -> "ConvexPolygon":
        """Full-dimensional hull of ``points``, fattening degenerate input.

        Sensitivity hulls built from a path of collinear locations are
        segments; the K-norm mechanism still needs a 2-D body to sample from,
        so rank-deficient hulls are inflated to a sliver of half-width
        ``min_width`` orthogonal to their span (a measure-zero perturbation of
        the mechanism, documented in DESIGN.md).
        """
        hull = convex_hull(points)
        if len(hull) >= 3:
            try:
                poly = cls(hull)
            except GeometryError:
                poly = None
            if poly is not None:
                # Reject slivers: a uniform body with covariance eigenvalue
                # lambda has half-width sqrt(3 * lambda) along that axis.
                eigenvalues = np.linalg.eigvalsh(poly.covariance())
                if math.sqrt(max(3.0 * eigenvalues[0], 0.0)) >= min_width:
                    return poly
        if len(hull) == 1:
            center = hull[0]
            offsets = np.array([[-1, -1], [1, -1], [1, 1], [-1, 1]], dtype=float) * min_width
            return cls(center + offsets)
        # Segment (or sliver): extrude orthogonally to the principal axis.
        pts = np.asarray(hull, dtype=float)
        centred = pts - pts.mean(axis=0)
        _, _, rotation = np.linalg.svd(centred, full_matrices=False)
        direction = rotation[0]
        projections = centred @ direction
        a = pts.mean(axis=0) + projections.min() * direction
        b = pts.mean(axis=0) + projections.max() * direction
        length = float(np.hypot(*(b - a)))
        if length == 0:
            raise GeometryError("degenerate segment in from_points")
        normal = np.array([-direction[1], direction[0]]) * min_width
        return cls(np.array([a - normal, b - normal, b + normal, a + normal]))

    @staticmethod
    def _halfplanes(verts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        nxt = np.roll(verts, -1, axis=0)
        edges = nxt - verts
        # Outward normal of a CCW polygon is the edge rotated clockwise.
        normals = np.column_stack((edges[:, 1], -edges[:, 0]))
        lengths = np.hypot(normals[:, 0], normals[:, 1])
        if np.any(lengths == 0):
            raise GeometryError("zero-length edge in polygon")
        normals = normals / lengths[:, None]
        offsets = np.einsum("ij,ij->i", normals, verts)
        return normals, offsets

    @staticmethod
    def _moments(verts: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
        """Area, centroid and raw second moment via fan triangulation."""
        anchor = verts[0]
        total_area = 0.0
        weighted_centroid = np.zeros(2)
        second = np.zeros((2, 2))
        for i in range(1, len(verts) - 1):
            tri = (anchor, verts[i], verts[i + 1])
            area = 0.5 * abs(_cross(tri[0], tri[1], tri[2]))
            if area == 0:
                continue
            total_area += area
            tri_sum = tri[0] + tri[1] + tri[2]
            weighted_centroid += area * tri_sum / 3.0
            acc = np.outer(tri[0], tri[0]) + np.outer(tri[1], tri[1]) + np.outer(tri[2], tri[2])
            second += (area / 12.0) * (acc + np.outer(tri_sum, tri_sum))
        if total_area <= 0:
            raise GeometryError("polygon has zero area")
        return total_area, weighted_centroid / total_area, second

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> np.ndarray:
        """``(m, 2)`` counter-clockwise vertex array (read-only view)."""
        return self._vertices

    @property
    def area(self) -> float:
        """Area of the polygon."""
        return self._area

    @property
    def centroid(self) -> np.ndarray:
        """Centroid of the uniform distribution over the polygon."""
        return self._centroid.copy()

    def covariance(self) -> np.ndarray:
        """Covariance of the uniform distribution over the polygon."""
        mean = self._centroid
        return self._second_moment / self._area - np.outer(mean, mean)

    def contains(self, point: Sequence[float], tol: float = 1e-9) -> bool:
        """Whether ``point`` lies inside (or on the boundary of) the polygon."""
        p = np.asarray(point, dtype=float)
        return bool(np.all(self._normals @ p <= self._offsets + tol))

    def support(self, direction: Sequence[float]) -> float:
        """Support function ``max_{x in K} direction . x``."""
        d = np.asarray(direction, dtype=float)
        return float(np.max(self._vertices @ d))

    def diameter(self) -> float:
        """Maximum distance between two vertices (hull diameter)."""
        verts = self._vertices
        diff = verts[:, None, :] - verts[None, :, :]
        return float(np.sqrt((diff**2).sum(axis=2)).max())

    def scale(self, factor: float) -> "ConvexPolygon":
        """Polygon scaled about the origin by ``factor`` (> 0)."""
        if factor <= 0:
            raise GeometryError(f"scale factor must be > 0, got {factor}")
        return ConvexPolygon(self._vertices * factor)

    def transform(self, matrix: np.ndarray) -> "ConvexPolygon":
        """Image of the polygon under an invertible linear map."""
        mat = np.asarray(matrix, dtype=float)
        if mat.shape != (2, 2):
            raise GeometryError(f"transform expects a 2x2 matrix, got {mat.shape}")
        if abs(np.linalg.det(mat)) < 1e-15:
            raise GeometryError("transform matrix is singular")
        return ConvexPolygon(self._vertices @ mat.T)

    def gauge(self, point: Sequence[float]) -> float:
        """Minkowski gauge ``min {r >= 0 : point in r*K}``.

        Requires the origin strictly inside the polygon (always true for
        symmetrised sensitivity hulls).  For a half-plane representation with
        positive offsets the gauge is ``max_i (n_i . p) / b_i``.
        """
        if np.any(self._offsets <= 0):
            raise GeometryError("gauge requires the origin strictly inside the polygon")
        p = np.asarray(point, dtype=float)
        ratios = (self._normals @ p) / self._offsets
        return float(max(np.max(ratios), 0.0))

    def gauge_many(self, points) -> np.ndarray:
        """Vectorized :meth:`gauge` over an array of shape ``(..., 2)``."""
        if np.any(self._offsets <= 0):
            raise GeometryError("gauge requires the origin strictly inside the polygon")
        pts = np.asarray(points, dtype=float)
        ratios = (pts @ self._normals.T) / self._offsets
        return np.maximum(ratios.max(axis=-1), 0.0)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _triangulation(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Cached fan triangulation: vertex arrays ``(a, b, c)`` plus the
        cumulative area weights used for inverse-CDF triangle selection."""
        cached = getattr(self, "_tri_cache", None)
        if cached is None:
            verts = self._vertices
            a = np.repeat(verts[0][None, :], len(verts) - 2, axis=0)
            b = verts[1:-1]
            c = verts[2:]
            areas = np.abs(
                (b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1])
                - (b[:, 1] - a[:, 1]) * (c[:, 0] - a[:, 0])
            ) * 0.5
            cumulative = np.cumsum(areas / areas.sum())
            cumulative[-1] = 1.0  # guard against float drift at the top end
            cached = (a, b, c, cumulative)
            self._tri_cache = cached
        return cached

    def sample_from_uniforms(
        self, u_pick: np.ndarray, u_edge: np.ndarray, u_interior: np.ndarray
    ) -> np.ndarray:
        """Uniform samples driven by caller-supplied uniforms: ``(n, 2)``.

        Maps three independent ``U[0, 1)`` columns through inverse-CDF
        triangle selection plus the affine square-root warp.  Taking the
        uniforms as arguments (rather than an ``rng``) is what lets the
        batched K-norm sampler draw one ``rng.random((n, k))`` block whose
        row order matches sequential scalar sampling exactly.
        """
        a, b, c, cumulative = self._triangulation()
        picks = np.searchsorted(cumulative, np.asarray(u_pick, dtype=float), side="right")
        picks = np.minimum(picks, len(cumulative) - 1)
        s = np.sqrt(np.asarray(u_edge, dtype=float))[:, None]
        t = np.asarray(u_interior, dtype=float)[:, None]
        return (1 - s) * a[picks] + s * (1 - t) * b[picks] + s * t * c[picks]

    def sample(self, rng=None, size: int | None = None) -> np.ndarray:
        """Uniform sample(s) from the polygon interior.

        Fan-triangulates once, picks triangles proportionally to area, then
        uses the standard affine square-root warp inside each triangle.
        Returns shape ``(2,)`` when ``size`` is None, else ``(size, 2)``.
        """
        generator = ensure_rng(rng)
        count = 1 if size is None else int(size)
        u = generator.random((count, 3))
        out = self.sample_from_uniforms(u[:, 0], u[:, 1], u[:, 2])
        return out[0] if size is None else out

    def __repr__(self) -> str:
        return f"ConvexPolygon(n_vertices={len(self._vertices)}, area={self._area:.4g})"


def knorm(point: Sequence[float], hull: ConvexPolygon) -> float:
    """The K-norm ``‖point‖_K`` induced by a symmetric convex body ``hull``."""
    return hull.gauge(point)


def sample_uniform_polygon(rng, polygon: ConvexPolygon, size: int | None = None) -> np.ndarray:
    """Module-level alias for :meth:`ConvexPolygon.sample` (functional style)."""
    return polygon.sample(rng=rng, size=size)


def isotropic_transform(polygon: ConvexPolygon) -> np.ndarray:
    """Linear map ``T`` putting ``polygon`` into isotropic position.

    ``T = Sigma^{-1/2}`` where ``Sigma`` is the covariance of the uniform
    distribution over the polygon, so the transformed body has identity
    covariance up to scale.  Xiao-Xiong's PIM applies the K-norm mechanism in
    this frame; because the K-norm mechanism is affine-equivariant the release
    distribution is unchanged, so the library uses ``T`` for analytics (hull
    eccentricity reporting) rather than inside the sampler.
    """
    cov = polygon.covariance()
    eigenvalues, eigenvectors = np.linalg.eigh(cov)
    if np.any(eigenvalues <= 0):
        raise GeometryError("polygon covariance is singular; cannot make isotropic")
    inv_sqrt = eigenvectors @ np.diag(1.0 / np.sqrt(eigenvalues)) @ eigenvectors.T
    return inv_sqrt
