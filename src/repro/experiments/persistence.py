"""Persisting experiment results: tables, manifests, reload.

Benchmarks print their tables; longer campaigns want them on disk with
enough metadata to reproduce the run.  A *manifest* records the experiment
id, the configuration, and the library version next to the rows themselves.
Storage is plain CSV + JSON so results diff cleanly in version control.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.errors import DataError
from repro.experiments.configs import ExperimentConfig
from repro.experiments.reporting import ResultTable

__all__ = ["save_table", "load_table", "save_manifest", "load_manifest"]


def save_table(table: ResultTable, path: str | Path) -> Path:
    """Write a result table as CSV (with its title as a ``#`` comment)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        if table.title:
            handle.write(f"# {table.title}\n")
        handle.write(table.to_csv())
    return target


def load_table(path: str | Path) -> ResultTable:
    """Read a table written by :func:`save_table`.

    Values are parsed back as int / float / bool where possible, str
    otherwise — enough fidelity for post-hoc analysis and plotting.
    """
    source = Path(path)
    if not source.exists():
        raise DataError(f"result file {source} does not exist")
    title = ""
    rows: list[list[str]] = []
    with source.open("r", encoding="utf-8") as handle:
        lines = [line.rstrip("\n") for line in handle if line.strip()]
    if not lines:
        raise DataError(f"result file {source} is empty")
    if lines[0].startswith("#"):
        title = lines[0][1:].strip()
        lines = lines[1:]
    if not lines:
        raise DataError(f"result file {source} has no header")
    columns = lines[0].split(",")
    table = ResultTable(columns, title=title)
    for line in lines[1:]:
        values = [_parse(cell) for cell in line.split(",")]
        if len(values) != len(columns):
            raise DataError(f"malformed row in {source}: {line!r}")
        table.add_row(*values)
    return table


def _parse(cell: str):
    if cell == "True":
        return True
    if cell == "False":
        return False
    try:
        return int(cell)
    except ValueError:
        pass
    try:
        return float(cell)
    except ValueError:
        return cell


def save_manifest(
    experiment: str,
    config: ExperimentConfig,
    table_path: str | Path,
    path: str | Path,
    notes: str = "",
) -> Path:
    """Write a JSON manifest describing one experiment run."""
    import repro

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    manifest = {
        "experiment": experiment,
        "library_version": repro.__version__,
        "config": dataclasses.asdict(config),
        "table": str(table_path),
        "notes": notes,
    }
    target.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return target


def load_manifest(path: str | Path) -> dict:
    """Read a manifest and rebuild its :class:`ExperimentConfig`.

    Returns the manifest dict with ``config`` replaced by a reconstructed
    :class:`ExperimentConfig` instance.
    """
    source = Path(path)
    if not source.exists():
        raise DataError(f"manifest {source} does not exist")
    try:
        manifest = json.loads(source.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DataError(f"manifest {source} is not valid JSON") from exc
    raw_config = manifest.get("config")
    if not isinstance(raw_config, dict):
        raise DataError(f"manifest {source} has no config block")
    # Tuples arrive as lists from JSON; coerce the fields that need it.
    for key in (
        "epsilons",
        "policies",
        "mechanisms",
        "monitor_block",
        "shard_counts",
        "backends",
        "worker_counts",
    ):
        if key in raw_config and isinstance(raw_config[key], list):
            raw_config[key] = tuple(raw_config[key])
    if isinstance(raw_config.get("backend_params"), list):
        # Nested (name, value) pairs flatten to lists-of-lists in JSON.
        raw_config["backend_params"] = tuple(
            tuple(pair) for pair in raw_config["backend_params"]
        )
    # A pinned engine spec serializes as its dict form; rebuild the dataclass.
    if isinstance(raw_config.get("engine_spec"), dict):
        from repro.engine import EngineSpec

        raw_config["engine_spec"] = EngineSpec.from_dict(raw_config["engine_spec"])
    manifest["config"] = ExperimentConfig(**raw_config)
    return manifest
