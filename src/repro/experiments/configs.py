"""Named policies, mechanisms, and the shared experiment configuration.

The name tables here are *views over the engine registry*
(:mod:`repro.engine.registry`) keyed by the paper's display names — G1, G2,
Ga, Gb, Gc and P-LM / P-PIM / GraphExp / Geo-I — so experiments, the CLI and
the engine all resolve the same specs.  :meth:`ExperimentConfig.make_engine`
is the preferred construction path; :func:`build_policy` /
:func:`build_mechanism` remain as thin wrappers for the seed API.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.core.mechanisms import Mechanism
from repro.core.policy_graph import PolicyGraph
from repro.engine import EngineSpec, PrivacyEngine
from repro.engine.registry import on_policy_registration, resolve_mechanism, resolve_policy
from repro.geo.grid import GridWorld

__all__ = [
    "POLICY_BUILDERS",
    "MECHANISM_FACTORIES",
    "ExperimentConfig",
    "build_policy",
    "build_mechanism",
]


def _policy_builder(name: str) -> Callable[[GridWorld], PolicyGraph]:
    return lambda world: build_policy(name, world)


def _mechanism_factory(name: str) -> Callable[[GridWorld, PolicyGraph, float], Mechanism]:
    return lambda world, policy, epsilon: resolve_mechanism(name)[1](world, policy, epsilon)


#: paper display name -> builder(world), backed by the engine registry.
POLICY_BUILDERS: dict[str, Callable[[GridWorld], PolicyGraph]] = {
    name: _policy_builder(name) for name in ("G1", "G2", "Ga", "Gb", "Gc")
}

#: paper display name -> factory(world, policy, epsilon), backed by the registry.
MECHANISM_FACTORIES: dict[str, Callable[[GridWorld, PolicyGraph, float], Mechanism]] = {
    name: _mechanism_factory(name) for name in ("P-LM", "P-PIM", "GraphExp", "Geo-I")
}


# Small bound: entries pin whole graphs (G2 cliques are quadratic in the
# world size) plus the mechanism caches attached to them, so the cache only
# needs to cover one sweep's working set of (policy, world) pairs.
@lru_cache(maxsize=16)
def _build_policy_cached(canonical_name: str, world: GridWorld) -> PolicyGraph:
    return resolve_policy(canonical_name)[1](world)


# Re-registering a policy name must not serve graphs from the old builder.
on_policy_registration(_build_policy_cached.cache_clear)


def build_policy(name: str, world: GridWorld) -> PolicyGraph:
    """Instantiate a named policy over ``world`` (any registry alias works).

    Memoized per ``(canonical name, world)``: policy graphs are immutable, so
    the harness's ``policy x mechanism x epsilon`` sweeps share one graph
    object per policy instead of rebuilding it on every inner iteration —
    which also lets the mechanisms' per-policy caches (P-LM sensitivities,
    P-PIM hulls) survive across epsilons.
    """
    canonical, _ = resolve_policy(name)
    return _build_policy_cached(canonical, world)


def build_mechanism(name: str, world: GridWorld, policy: PolicyGraph, epsilon: float) -> Mechanism:
    """Instantiate a named mechanism for ``policy`` (any registry alias works)."""
    return resolve_mechanism(name)[1](world, policy, epsilon)


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for the E1-E8 runners (laptop-scale defaults).

    The defaults keep each runner under a few seconds while preserving the
    qualitative shapes recorded in EXPERIMENTS.md; crank ``world_size``,
    ``n_users`` and ``trials`` for smoother curves.

    ``shard_counts`` and ``backends`` drive the E8 scalability sweep (and any
    runner that calls the sharded release path); ``engine_spec`` — usually
    loaded from a JSON file via the CLI's ``--engine-spec`` — pins the whole
    sweep to one declarative engine (see :meth:`with_engine_spec`).

    ``eval_shards`` / ``eval_backend`` route the *evaluation* layer (the
    E1 / E2 / E3 / E4 / E5 / E11 metric runners) over the distributed-metric
    path (:mod:`repro.engine.distributed`): ``None`` / ``None`` (default)
    keeps the single-process batched metrics, anything else shards metric
    scoring with per-user / per-slot RNG streams on the named execution
    backend — results are then invariant under the shard count and backend,
    but use a different (equally deterministic) stream layout than the
    unsharded default.  The CLI maps ``repro experiment e1 --shards N
    --backend B`` onto these fields.

    ``async_ingest`` routes E8's sharded release runs through the server's
    bounded async commit queue (:class:`~repro.server.pipeline.
    AsyncShardCommitter`) so shard commits overlap release computation;
    per-user server state is element-wise unchanged.

    ``backend_params`` are extra keyword arguments for the ``rpc`` backend
    factory — how the CLI threads ``--worker-timeout`` (and, for non-E8
    runners, ``--workers``) into the worker cluster.  E8 applies them to
    its rpc row blocks only (in-process backends in a mixed sweep would
    reject cluster knobs); the metric runners forward them to whatever
    single ``eval_backend`` is named.  ``worker_counts`` makes E8 sweep the
    rpc worker-process count (one row block per count, reported in the
    ``workers`` column); other backends ignore it.

    ``array_backend`` selects the array namespace mechanism kernels compute
    on (:mod:`repro.core.xp`; ``None`` keeps the bit-exact numpy reference)
    and flows into every engine built through :meth:`make_engine`.
    ``float32`` runs the Bayesian attacker's batched GEMMs in single
    precision (~``1e-3`` relative tolerance on adversary metrics; see
    :class:`~repro.adversary.inference.BayesianAttacker`).  The CLI maps
    ``--array-backend`` / ``--float32`` onto these fields.

    ``store_path`` / ``resume`` make E8 additionally measure *durable*
    ingest: each sweep combination re-runs store-backed against a
    :class:`~repro.store.TraceStore` at that path (committing every shard
    transactionally, see ``docs/persistence.md``) and reports the durable
    throughput next to the in-memory one.  ``resume=True`` continues an
    interrupted store-backed run instead of starting fresh.  The CLI maps
    ``repro experiment e8 --store PATH [--resume]`` onto these fields.

    ``live_metrics`` attaches the default
    :mod:`~repro.server.live_metrics` views to E8's sharded release runs
    and reports, per sweep combination, whether every per-round live
    snapshot equals a from-scratch batch recompute bitwise plus the live
    query speedup over that recompute.  The CLI maps
    ``repro experiment e8 --live-metrics`` onto this field.
    """

    world_size: int = 12
    cell_size: float = 1.0
    epsilons: tuple[float, ...] = (0.1, 0.5, 1.0, 2.0)
    policies: tuple[str, ...] = ("G1", "Gb", "Ga", "G2")
    mechanisms: tuple[str, ...] = ("P-LM", "P-PIM")
    n_users: int = 30
    horizon: int = 72
    trials: int = 3
    seed: int = 2020
    dataset: str = "geolife"
    p_transmit: float = 0.3
    sigma: float = 0.25
    gamma: float = 0.1
    tracing_window: int = 72
    monitor_block: tuple[int, int] = (4, 4)
    shard_counts: tuple[int, ...] = (1, 2, 4)
    backends: tuple[str, ...] = ("serial", "thread", "process")
    eval_shards: int | None = None
    eval_backend: str | None = None
    async_ingest: bool = False
    backend_params: tuple[tuple[str, object], ...] = ()
    worker_counts: tuple[int, ...] | None = None
    store_path: str | None = None
    resume: bool = False
    live_metrics: bool = False
    array_backend: str | None = None
    float32: bool = False
    engine_spec: EngineSpec | None = field(default=None, compare=False)

    def make_world(self) -> GridWorld:
        return GridWorld(self.world_size, self.world_size, cell_size=self.cell_size)

    def rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def make_engine(
        self,
        mechanism: str | None = None,
        policy: str | None = None,
        epsilon: float | None = None,
        world: GridWorld | None = None,
    ) -> PrivacyEngine:
        """Spec-built engine using this config's defaults for omitted parts.

        When the config carries an ``engine_spec`` and no explicit
        mechanism/policy/epsilon override is given, the engine is built from
        that spec verbatim (including mechanism params and any execution
        block).  Otherwise defaults come from the config's sweep lists (first
        mechanism/policy, first epsilon), so ``config.make_engine()`` is
        always runnable.
        """
        target_world = world if world is not None else self.make_world()
        if self.engine_spec is not None and mechanism is None and policy is None and epsilon is None:
            return PrivacyEngine.from_spec(target_world, self.engine_spec)
        return PrivacyEngine.from_spec(
            target_world,
            mechanism=mechanism if mechanism is not None else self.mechanisms[0],
            policy=policy if policy is not None else self.policies[0],
            epsilon=epsilon if epsilon is not None else self.epsilons[0],
            array_backend=self.array_backend,
        )

    def with_engine_spec(self, spec: EngineSpec) -> "ExperimentConfig":
        """This config with every sweep pinned to one declarative engine.

        The spec's canonical mechanism/policy become the (single-element)
        sweep lists and its epsilon the only budget.  Runners that build
        engines through :meth:`make_engine` (E8) evaluate the spec verbatim,
        including mechanism/policy params; the name-based E1-E7 sweeps
        honour the names and epsilon only — factory params do not flow
        through ``build_mechanism``/``build_policy`` (the CLI warns when
        that would drop anything).  A spec carrying an
        :class:`~repro.engine.specs.ExecutionSpec` also pins the E8 backend
        sweep to its backend and folds its shard count into ``shard_counts``
        (keeping the 1-shard baseline for the determinism check).
        """
        overrides: dict = {
            "mechanisms": (spec.mechanism.canonical_name,),
            "policies": (spec.policy.canonical_name,),
            "epsilons": (float(spec.mechanism.epsilon),),
            "engine_spec": spec,
        }
        if spec.execution is not None:
            overrides["backends"] = (spec.execution.canonical_name,)
            overrides["shard_counts"] = tuple(sorted({1, int(spec.execution.shards)}))
            if spec.execution.store is not None:
                overrides["store_path"] = spec.execution.store
                overrides["resume"] = bool(spec.execution.resume)
            if spec.execution.live_metrics:
                overrides["live_metrics"] = True
        return replace(self, **overrides)
