"""Named policies, mechanisms, and the shared experiment configuration.

The registries here give experiments (and the CLI examples) a single source
of truth for the paper's policy menagerie — G1, G2, Ga, Gb, Gc — and the
mechanisms P-LM / P-PIM / graph-exponential plus the Geo-I baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.mechanisms import (
    GeoIndistinguishabilityMechanism,
    GraphExponentialMechanism,
    Mechanism,
    PolicyLaplaceMechanism,
    PolicyPlanarIsotropicMechanism,
)
from repro.core.policies import (
    area_policy,
    contact_tracing_policy,
    grid_policy,
    location_set_policy,
)
from repro.core.policy_graph import PolicyGraph
from repro.errors import ValidationError
from repro.geo.grid import GridWorld

__all__ = [
    "POLICY_BUILDERS",
    "MECHANISM_FACTORIES",
    "ExperimentConfig",
    "build_policy",
    "build_mechanism",
]


def _g2_full(world: GridWorld) -> PolicyGraph:
    """G2 over the whole map: complete indistinguishability (strictest)."""
    return location_set_policy(world, list(world), name="G2")


def _gc_default(world: GridWorld) -> PolicyGraph:
    """Gc with a deterministic infected corner, for policy-only sweeps.

    Real tracing runs derive the infected set from the diagnosed patient; the
    sweeps need *some* fixed Gc instance, so the top-left 2x2 block plays the
    infected area.
    """
    base = area_policy(world, 2, 2, name="Gb")
    rows = min(2, world.height)
    cols = min(2, world.width)
    infected = [world.cell_of(r, c) for r in range(rows) for c in range(cols)]
    return contact_tracing_policy(base, infected, name="Gc")


#: name -> builder(world) for the paper's named policy graphs.
POLICY_BUILDERS: dict[str, Callable[[GridWorld], PolicyGraph]] = {
    "G1": lambda world: grid_policy(world, name="G1"),
    "G2": _g2_full,
    "Ga": lambda world: area_policy(world, 4, 4, name="Ga"),
    "Gb": lambda world: area_policy(world, 2, 2, name="Gb"),
    "Gc": _gc_default,
}

#: name -> factory(world, policy, epsilon) for the mechanisms under test.
MECHANISM_FACTORIES: dict[str, Callable[[GridWorld, PolicyGraph, float], Mechanism]] = {
    "P-LM": PolicyLaplaceMechanism,
    "P-PIM": PolicyPlanarIsotropicMechanism,
    "GraphExp": GraphExponentialMechanism,
    "Geo-I": lambda world, policy, epsilon: GeoIndistinguishabilityMechanism(
        world, epsilon, graph=policy
    ),
}


def build_policy(name: str, world: GridWorld) -> PolicyGraph:
    """Instantiate a named policy over ``world``."""
    try:
        return POLICY_BUILDERS[name](world)
    except KeyError:
        raise ValidationError(f"unknown policy {name!r}; choose from {sorted(POLICY_BUILDERS)}") from None


def build_mechanism(name: str, world: GridWorld, policy: PolicyGraph, epsilon: float) -> Mechanism:
    """Instantiate a named mechanism for ``policy``."""
    try:
        return MECHANISM_FACTORIES[name](world, policy, epsilon)
    except KeyError:
        raise ValidationError(
            f"unknown mechanism {name!r}; choose from {sorted(MECHANISM_FACTORIES)}"
        ) from None


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for the E1-E8 runners (laptop-scale defaults).

    The defaults keep each runner under a few seconds while preserving the
    qualitative shapes recorded in EXPERIMENTS.md; crank ``world_size``,
    ``n_users`` and ``trials`` for smoother curves.
    """

    world_size: int = 12
    cell_size: float = 1.0
    epsilons: tuple[float, ...] = (0.1, 0.5, 1.0, 2.0)
    policies: tuple[str, ...] = ("G1", "Gb", "Ga", "G2")
    mechanisms: tuple[str, ...] = ("P-LM", "P-PIM")
    n_users: int = 30
    horizon: int = 72
    trials: int = 3
    seed: int = 2020
    dataset: str = "geolife"
    p_transmit: float = 0.3
    sigma: float = 0.25
    gamma: float = 0.1
    tracing_window: int = 72
    monitor_block: tuple[int, int] = (4, 4)

    def make_world(self) -> GridWorld:
        return GridWorld(self.world_size, self.world_size, cell_size=self.cell_size)

    def rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)
