"""Result tables: the rows/series every benchmark prints.

A :class:`ResultTable` is a light, dependency-free column-oriented table with
pretty printing, CSV export, filtering and grouping — enough to reproduce the
paper's figures as aligned text without a plotting stack.
"""

from __future__ import annotations

import io
from typing import Any, Callable, Iterable

from repro.errors import ValidationError

__all__ = ["ResultTable"]


class ResultTable:
    """An ordered collection of homogeneous result rows.

    Parameters
    ----------
    columns:
        Column names, fixed at construction.
    title:
        Heading used by :meth:`pretty` (usually the experiment id).
    """

    def __init__(self, columns: Iterable[str], title: str = "") -> None:
        self.columns = tuple(str(c) for c in columns)
        if not self.columns:
            raise ValidationError("a result table needs at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise ValidationError("duplicate column names")
        self.title = title
        self._rows: list[tuple] = []

    # ------------------------------------------------------------------
    def add_row(self, *values: Any, **named: Any) -> None:
        """Append a row, positionally or by column name (not both)."""
        if values and named:
            raise ValidationError("pass values positionally or by name, not both")
        if named:
            missing = set(self.columns) - set(named)
            extra = set(named) - set(self.columns)
            if missing or extra:
                raise ValidationError(f"row mismatch: missing={sorted(missing)}, extra={sorted(extra)}")
            values = tuple(named[c] for c in self.columns)
        if len(values) != len(self.columns):
            raise ValidationError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self._rows.append(tuple(values))

    @property
    def rows(self) -> list[tuple]:
        return list(self._rows)

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        index = self._column_index(name)
        return [row[index] for row in self._rows]

    def where(self, **conditions: Any) -> "ResultTable":
        """Rows matching all ``column=value`` equality conditions."""
        indices = {self._column_index(name): value for name, value in conditions.items()}
        out = ResultTable(self.columns, title=self.title)
        for row in self._rows:
            if all(row[i] == v for i, v in indices.items()):
                out._rows.append(row)
        return out

    def group_by(self, name: str) -> dict[Any, "ResultTable"]:
        """Split into sub-tables keyed by the values of one column."""
        index = self._column_index(name)
        groups: dict[Any, ResultTable] = {}
        for row in self._rows:
            groups.setdefault(row[index], ResultTable(self.columns, title=self.title))._rows.append(row)
        return groups

    def sort_by(self, *names: str) -> "ResultTable":
        """New table sorted by the given columns (ascending)."""
        indices = [self._column_index(n) for n in names]
        out = ResultTable(self.columns, title=self.title)
        out._rows = sorted(self._rows, key=lambda row: tuple(row[i] for i in indices))
        return out

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self._rows]

    # ------------------------------------------------------------------
    def pretty(self, float_format: str = "{:.4g}") -> str:
        """Aligned text rendering (what the benchmarks print)."""
        def fmt(value: Any) -> str:
            if isinstance(value, bool):
                return str(value)
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        cells = [[fmt(v) for v in row] for row in self._rows]
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in cells)) if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        out = io.StringIO()
        if self.title:
            out.write(f"== {self.title} ==\n")
        header = "  ".join(name.ljust(width) for name, width in zip(self.columns, widths))
        out.write(header + "\n")
        out.write("  ".join("-" * width for width in widths) + "\n")
        for row in cells:
            out.write("  ".join(cell.ljust(width) for cell, width in zip(row, widths)) + "\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """Comma-separated rendering with a header line."""
        lines = [",".join(self.columns)]
        for row in self._rows:
            lines.append(",".join(str(v) for v in row))
        return "\n".join(lines) + "\n"

    def map_column(self, name: str, func: Callable[[Any], Any]) -> "ResultTable":
        """New table with ``func`` applied to one column."""
        index = self._column_index(name)
        out = ResultTable(self.columns, title=self.title)
        for row in self._rows:
            mutated = list(row)
            mutated[index] = func(row[index])
            out._rows.append(tuple(mutated))
        return out

    # ------------------------------------------------------------------
    def _column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise ValidationError(f"unknown column {name!r}; have {self.columns}") from None

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"ResultTable(title={self.title!r}, columns={self.columns}, rows={len(self._rows)})"
