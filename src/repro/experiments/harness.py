"""Runners regenerating every evaluation artifact (experiments E1-E12).

Each function takes an :class:`~repro.experiments.configs.ExperimentConfig`
(laptop-scale defaults) and returns a
:class:`~repro.experiments.reporting.ResultTable` with the rows the
corresponding demo panel plots.  Every runner seeds all randomness from
``config.rng()``, so the same config reproduces the same table.

Two runners are execution-aware:

* E8 (:func:`run_scalability`) sweeps the sharded *release* path across
  ``config.backends x config.shard_counts`` and, since the distributed
  evaluation layer exists, times the sharded E1 metric over the same plan —
  release and eval throughput side by side, each with a live determinism
  column.  The micro-latency view (per-release / per-filter-step timings)
  additionally lives in ``benchmarks/bench_e8_scalability.py``.
* E1 / E2 / E3 / E4 / E5 / E11 route their metric calls over the
  distributed-metric path when ``config.eval_shards`` /
  ``config.eval_backend`` are set (the CLI's ``repro experiment e1 --shards
  N --backend B``): E1's monitoring report, E2's R0 occupancy counters,
  E3's tracing event sets, E4/E5's trial grids, and E11's metapopulation
  flow matrices all shard over the same plans.  One execution backend is
  opened per runner and shared by every metric call in the sweep, so a
  ``pool`` backend's workers stay warm across the whole table.
  ``config.async_ingest`` additionally overlaps E8's sharded release runs
  with server commits through the bounded async commit queue.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.adversary.inference import BayesianAttacker
from repro.adversary.metrics import adversary_error, utility_error
from repro.core.mechanisms import PolicyLaplaceMechanism, PolicyPlanarIsotropicMechanism
from repro.core.policies import random_policy
from repro.engine import EngineSpec, PrivacyEngine, ensure_backend
from repro.epidemic.analysis import r0_estimation_error
from repro.epidemic.monitor import monitoring_utility
from repro.epidemic.tracing import ContactTracingProtocol, static_tracing
from repro.experiments.configs import ExperimentConfig, build_mechanism, build_policy
from repro.experiments.reporting import ResultTable
from repro.epidemic.analysis import perturb_tracedb
from repro.server.pipeline import run_release_rounds_batched

__all__ = [
    "run_monitoring_utility",
    "run_r0_estimation",
    "run_contact_tracing",
    "run_adversary_error",
    "run_random_policy_tradeoff",
    "run_theorem_bounds",
    "run_policy_matrix",
    "run_scalability",
    "run_mechanism_ablation",
    "run_temporal_privacy",
    "run_metapop_forecast",
    "run_dataset_sensitivity",
]


def _dataset(config: ExperimentConfig, world):
    """Instantiate the configured workload (geolife/gowalla/random_waypoint)."""
    from repro.mobility.datasets import make_dataset

    kwargs = {"n_users": config.n_users, "horizon": config.horizon}
    if config.dataset == "gowalla":
        # Gowalla check-ins are sparse: at most one per step and well under
        # the horizon, mirroring the real feed's cadence.
        kwargs["checkins_per_user"] = max(2, config.horizon // 2)
    return make_dataset(config.dataset, world, rng=config.rng(), **kwargs)


@contextmanager
def _eval_execution(config: ExperimentConfig):
    """``(shards, backend)`` for a runner's metric calls, backend held open.

    ``(None, None)`` when the config doesn't request distributed evaluation
    (metrics then take their single-process paths).  Otherwise one live
    backend is opened for the *whole* runner and closed afterwards — so a
    ``pool`` backend forks its workers once per table, not once per metric
    call — and a missing shard count defaults to 1.
    """
    if config.eval_shards is None and config.eval_backend is None:
        yield None, None
        return
    with ensure_backend(config.eval_backend, **dict(config.backend_params)) as backend:
        yield (1 if config.eval_shards is None else int(config.eval_shards)), backend


def _metric_source(world, policy, policy_name, mechanism_name, epsilon, sharded: bool):
    """The release source a metric runner scores.

    Single-process runs get the bare mechanism (the seed behaviour).
    Sharded runs get the same mechanism wrapped in a spec-carrying
    :class:`~repro.engine.PrivacyEngine`, so shard tasks travel as
    :class:`~repro.engine.EngineRef` spec hashes and pool workers cache the
    built engine across the sweep instead of unpickling it per task.
    """
    mechanism = build_mechanism(mechanism_name, world, policy, epsilon)
    if not sharded:
        return mechanism
    spec = EngineSpec.named(mechanism_name, policy_name, epsilon=float(epsilon))
    return PrivacyEngine(world, policy, mechanism, spec=spec)


def run_monitoring_utility(config: ExperimentConfig = ExperimentConfig()) -> ResultTable:
    """E1: location-monitoring utility vs epsilon per policy x mechanism.

    One row per ``(policy, mechanism, epsilon)`` combination with the three
    monitoring metrics (mean Euclidean error, area accuracy, flow L1).  All
    draws come from one ``config.rng()`` stream consumed combination-major;
    with ``config.eval_shards`` / ``config.eval_backend`` set, each
    combination's scoring instead spawns per-user streams and fans out over
    the distributed-metric path (values are then invariant under shard
    count and backend, but follow that layout's — equally seeded — streams).
    """
    world = config.make_world()
    db = _dataset(config, world)
    table = ResultTable(
        ["policy", "mechanism", "epsilon", "mean_euclidean_error", "area_accuracy", "flow_l1_error"],
        title=f"E1: location monitoring utility ({config.dataset})",
    )
    rng = config.rng()
    with _eval_execution(config) as (shards, backend):
        for policy_name in config.policies:
            policy = build_policy(policy_name, world)
            for mechanism_name in config.mechanisms:
                for epsilon in config.epsilons:
                    source = _metric_source(
                        world, policy, policy_name, mechanism_name, epsilon, shards is not None
                    )
                    report = monitoring_utility(
                        world,
                        source,
                        db,
                        block_rows=config.monitor_block[0],
                        block_cols=config.monitor_block[1],
                        rng=rng,
                        shards=shards,
                        backend=backend,
                    )
                    table.add_row(
                        policy_name,
                        mechanism_name,
                        epsilon,
                        report.mean_euclidean_error,
                        report.area_accuracy,
                        report.flow_l1_error,
                    )
    return table


def run_r0_estimation(config: ExperimentConfig = ExperimentConfig()) -> ResultTable:
    """E2: error of the R0 estimate from perturbed vs true locations.

    One row per ``(policy, mechanism, epsilon)`` with the true and
    perturbed-data R0 estimates and their absolute difference.  All
    perturbation draws come from one ``config.rng()`` stream consumed
    combination-major (batched inside ``r0_estimation_error``, which keeps
    the scalar loop's stream).  With ``config.eval_shards`` /
    ``config.eval_backend`` set, each combination instead spawns per-user
    streams and folds epoch-keyed occupancy counters over the
    distributed-metric path (values invariant under shard count and
    backend).
    """
    world = config.make_world()
    db = _dataset(config, world)
    table = ResultTable(
        ["policy", "mechanism", "epsilon", "r0_true", "r0_perturbed", "abs_error"],
        title="E2: R0 estimation accuracy",
    )
    rng = config.rng()
    with _eval_execution(config) as (shards, backend):
        for policy_name in config.policies:
            policy = build_policy(policy_name, world)
            for mechanism_name in config.mechanisms:
                for epsilon in config.epsilons:
                    source = _metric_source(
                        world, policy, policy_name, mechanism_name, epsilon, shards is not None
                    )
                    r0_true, r0_perturbed, error = r0_estimation_error(
                        world,
                        source,
                        db,
                        p_transmit=config.p_transmit,
                        gamma=config.gamma,
                        rng=rng,
                        shards=shards,
                        backend=backend,
                    )
                    table.add_row(
                        policy_name, mechanism_name, epsilon, r0_true, r0_perturbed, error
                    )
    return table


def run_contact_tracing(config: ExperimentConfig = ExperimentConfig()) -> ResultTable:
    """E3: dynamic-Gc tracing vs the static perturbed-data baseline.

    Per epsilon, runs the dynamic contact-tracing protocol and the static
    baseline against the same diagnosed patient (the user with the most
    ground-truth contacts) and reports precision/recall/F1 plus the
    epsilon actually spent.  Both methods draw from the same
    ``config.rng()`` stream in interleaved order, so rows are reproducible
    per config seed.  With ``config.eval_shards`` / ``config.eval_backend``
    set, the dynamic protocol fans its non-patient population out over the
    distributed-metric path (per-user streams; outcomes invariant under
    shard count and backend) while the static baseline stays single-stream.
    """
    world = config.make_world()
    db = _dataset(config, world)
    diagnosis_time = db.times()[-1]
    window = min(config.tracing_window, config.horizon)
    start = diagnosis_time - window + 1
    # Patient: the user with the most ground-truth contacts, so both methods
    # have something to find.
    users = sorted(db.users())
    patient = max(users, key=lambda u: len(db.contacts_of(u, min_count=2, start=start, end=diagnosis_time)))
    base_policy = build_policy("Gb", world)
    table = ResultTable(
        ["method", "epsilon", "precision", "recall", "f1", "n_candidates", "epsilon_spent"],
        title=f"E3: contact tracing (patient={patient}, true contacts="
        f"{len(db.contacts_of(patient, min_count=2, start=start, end=diagnosis_time))})",
    )
    rng = config.rng()
    with _eval_execution(config) as (shards, backend):
        for epsilon in config.epsilons:
            protocol = ContactTracingProtocol(
                world,
                base_policy,
                PolicyLaplaceMechanism,
                epsilon,
                min_count=2,
                window=window,
            )
            outcome = protocol.run(
                db, patient, diagnosis_time, rng=rng, shards=shards, backend=backend
            )
            table.add_row(
                "dynamic-Gc",
                epsilon,
                outcome.precision,
                outcome.recall,
                outcome.f1,
                len(outcome.candidates),
                outcome.epsilon_spent,
            )
            mechanism = PolicyLaplaceMechanism(world, base_policy, epsilon)
            released = perturb_tracedb(world, mechanism, db, rng=rng)
            baseline = static_tracing(
                world, released, db, patient, diagnosis_time, window=window, min_count=2
            )
            table.add_row(
                "static",
                epsilon,
                baseline.precision,
                baseline.recall,
                baseline.f1,
                len(baseline.candidates),
                baseline.epsilon_spent,
            )
    return table


def run_adversary_error(config: ExperimentConfig = ExperimentConfig()) -> ResultTable:
    """E4: empirical privacy (Bayesian adversary error) per policy.

    One row per ``(policy, mechanism, epsilon)`` with the attacker's mean
    realised inference error and the matching utility error over one shared
    sample of true cells (``config.trials`` trials per cell).  Draws come
    from one ``config.rng()`` stream; with ``config.eval_shards`` /
    ``config.eval_backend`` set, both metrics fan out over the
    distributed-metric path with per-trial-slot streams (per-shard
    attackers are built inside the workers — under the ``pool`` backend
    their cached distance matrices survive the whole sweep).
    """
    world = config.make_world()
    rng = config.rng()
    sample_size = min(20, world.n_cells)
    true_cells = rng.choice(world.n_cells, size=sample_size, replace=False).tolist()
    table = ResultTable(
        ["policy", "mechanism", "epsilon", "adversary_error", "utility_error"],
        title="E4: empirical privacy (adversary inference error)",
    )
    with _eval_execution(config) as (shards, backend):
        for policy_name in config.policies:
            policy = build_policy(policy_name, world)
            for mechanism_name in config.mechanisms:
                for epsilon in config.epsilons:
                    sharded = shards is not None
                    source = _metric_source(
                        world, policy, policy_name, mechanism_name, epsilon, sharded
                    )
                    # One attacker per built mechanism, reused across all of
                    # this mechanism's batched adversary draws (sharded runs
                    # build per-shard attackers in the workers instead).
                    attacker = (
                        None
                        if sharded
                        else BayesianAttacker(world, source, float32=config.float32)
                    )
                    privacy = adversary_error(
                        world,
                        source,
                        true_cells,
                        rng=rng,
                        trials_per_cell=config.trials,
                        attacker=attacker,
                        shards=shards,
                        backend=backend,
                        float32=config.float32,
                    )
                    utility = utility_error(
                        world,
                        source,
                        true_cells,
                        rng=rng,
                        trials_per_cell=config.trials,
                        shards=shards,
                        backend=backend,
                    )
                    table.add_row(policy_name, mechanism_name, epsilon, privacy, utility)
    return table


def run_random_policy_tradeoff(
    config: ExperimentConfig = ExperimentConfig(),
    sizes: tuple[int, ...] = (20, 50),
    densities: tuple[float, ...] = (0.05, 0.1, 0.3),
    epsilon: float = 1.0,
) -> ResultTable:
    """E5: the demo's random-policy-graph privacy/utility explorer.

    For each ``(size, density)`` pair, samples a random policy graph from
    ``config.rng()``, builds P-LM at ``epsilon``, and scores utility and
    adversary error over (up to 20 of) its protected cells with
    ``config.trials`` trials each — graph sampling and metric draws share
    one stream, so the table is a pure function of the config seed.  With
    ``config.eval_shards`` / ``config.eval_backend`` set, both metrics fan
    out over the distributed-metric path with per-trial-slot streams
    (per-shard attackers are built inside the workers, as in E4).
    """
    world = config.make_world()
    rng = config.rng()
    table = ResultTable(
        ["size", "density", "n_edges", "utility_error", "adversary_error"],
        title=f"E5: random policy graphs (epsilon={epsilon})",
    )
    with _eval_execution(config) as (shards, backend):
        for size in sizes:
            for density in densities:
                policy = random_policy(world, size=size, density=density, rng=rng)
                mechanism = PolicyLaplaceMechanism(world, policy, epsilon)
                protected = [c for c in policy.nodes if not policy.is_disclosable(c)]
                if not protected:
                    continue
                cells = protected[: min(20, len(protected))]
                attacker = (
                    None
                    if shards is not None
                    else BayesianAttacker(world, mechanism, float32=config.float32)
                )
                utility = utility_error(
                    world, mechanism, cells, rng=rng, trials_per_cell=config.trials,
                    shards=shards, backend=backend,
                )
                privacy = adversary_error(
                    world, mechanism, cells, rng=rng, trials_per_cell=config.trials,
                    attacker=attacker, shards=shards, backend=backend,
                    float32=config.float32,
                )
                table.add_row(size, density, policy.n_edges, utility, privacy)
    return table


def run_theorem_bounds(
    config: ExperimentConfig = ExperimentConfig(),
    n_outputs: int = 40,
    n_pairs: int = 60,
) -> ResultTable:
    """E6: analytic verification of Theorems 2.1 and 2.2.

    For {eps, G1}-private P-LM, the Geo-I guarantee requires
    ``log(pdf(z|s)/pdf(z|s')) <= eps * d_E(s, s')`` for *all* pairs; for
    {eps, G2}-private P-PIM, location-set privacy requires a flat ``eps``
    bound within the set.  Densities are closed-form, so the observed maxima
    are exact up to float error.
    """
    world = config.make_world()
    rng = config.rng()
    table = ResultTable(
        ["theorem", "policy", "mechanism", "epsilon", "max_log_ratio", "bound", "holds"],
        title="E6: theorem 2.1 / 2.2 indistinguishability bounds",
    )
    outputs = np.column_stack(
        (
            rng.uniform(-world.width, 2 * world.width, n_outputs) * world.cell_size,
            rng.uniform(-world.height, 2 * world.height, n_outputs) * world.cell_size,
        )
    )
    for epsilon in config.epsilons:
        # Theorem 2.1: {eps, G1} implies eps-Geo-Indistinguishability.  The
        # pair draws keep the scalar loop's RNG order; all (pair, output)
        # log-ratios then come from one pdf_matrix call over the distinct
        # cells instead of 2 * n_pairs * n_outputs scalar pdf evaluations.
        policy = build_policy("G1", world)
        mechanism = PolicyLaplaceMechanism(world, policy, epsilon)
        pairs = np.asarray(
            [rng.choice(world.n_cells, size=2, replace=False) for _ in range(n_pairs)],
            dtype=int,
        )
        distinct, flat_index = np.unique(pairs.ravel(), return_inverse=True)
        column = flat_index.reshape(pairs.shape)
        log_pdf = np.log(mechanism.pdf_matrix(outputs, distinct))  # (n_outputs, k)
        coords_a = world.coords_array(pairs[:, 0])
        coords_b = world.coords_array(pairs[:, 1])
        distances = np.hypot(
            coords_a[:, 0] - coords_b[:, 0], coords_a[:, 1] - coords_b[:, 1]
        )
        ratios = (log_pdf[:, column[:, 0]] - log_pdf[:, column[:, 1]]) / distances[None, :]
        worst = max(0.0, float(ratios.max()))
        table.add_row("2.1 (Geo-I)", "G1", "P-LM", epsilon, worst, epsilon, worst <= epsilon + 1e-9)

        # Theorem 2.2: {eps, G2} over a location set implies eps-LS privacy.
        # The max over ordered pairs (a, b) of log pdf(z|a) - log pdf(z|b) is
        # each output row's max minus min in one (n_outputs, |set|) matrix.
        subset = sorted(rng.choice(world.n_cells, size=12, replace=False).tolist())
        from repro.core.policies import location_set_policy

        set_policy = location_set_policy(world, subset, name="G2")
        pim = PolicyPlanarIsotropicMechanism(world, set_policy, epsilon)
        log_pdf = np.log(pim.pdf_matrix(outputs, subset))
        worst = max(0.0, float((log_pdf.max(axis=1) - log_pdf.min(axis=1)).max()))
        table.add_row("2.2 (LocSet)", "G2", "P-PIM", epsilon, worst, epsilon, worst <= epsilon + 1e-9)
    return table


def run_policy_matrix(
    config: ExperimentConfig = ExperimentConfig(), epsilon: float = 1.0
) -> ResultTable:
    """E7: per-function utility of Ga / Gb / Gc — "no policy is best for all".

    One row per policy with all three app metrics side by side: monitoring
    area accuracy, R0 absolute error, and tracing F1 (with the policy as the
    tracing base).
    """
    world = config.make_world()
    db = _dataset(config, world)
    diagnosis_time = db.times()[-1]
    window = min(config.tracing_window, config.horizon)
    start = diagnosis_time - window + 1
    users = sorted(db.users())
    patient = max(
        users, key=lambda u: len(db.contacts_of(u, min_count=2, start=start, end=diagnosis_time))
    )
    table = ResultTable(
        ["policy", "monitoring_area_accuracy", "monitoring_error", "r0_abs_error", "tracing_f1"],
        title=f"E7: policy-by-function matrix (epsilon={epsilon})",
    )
    rng = config.rng()
    for policy_name in ("Ga", "Gb", "Gc"):
        policy = build_policy(policy_name, world)
        mechanism = PolicyLaplaceMechanism(world, policy, epsilon)
        monitoring = monitoring_utility(
            world,
            mechanism,
            db,
            block_rows=config.monitor_block[0],
            block_cols=config.monitor_block[1],
            rng=rng,
        )
        _, _, r0_error = r0_estimation_error(
            world, mechanism, db, p_transmit=config.p_transmit, gamma=config.gamma, rng=rng
        )
        protocol = ContactTracingProtocol(
            world, policy, PolicyLaplaceMechanism, epsilon, min_count=2, window=window
        )
        outcome = protocol.run(db, patient, diagnosis_time, rng=rng)
        table.add_row(
            policy_name,
            monitoring.area_accuracy,
            monitoring.mean_euclidean_error,
            r0_error,
            outcome.f1,
        )
    return table


def run_mechanism_ablation(
    config: ExperimentConfig = ExperimentConfig(),
    epsilon: float = 1.0,
    ablation_world_size: int = 6,
) -> ResultTable:
    """E9 (ablation): how close do the practical mechanisms get to optimal?

    On a small world (the LP has n^2 variables) every mechanism's *analytic*
    expected error is compared at one budget, for the isotropic G1 policy and
    for a deliberately anisotropic corridor policy where P-PIM's hull shines.
    """
    from repro.core.mechanisms import GraphExponentialMechanism, OptimalDiscreteMechanism
    from repro.core.policy_graph import PolicyGraph
    from repro.geo.grid import GridWorld

    world = GridWorld(ablation_world_size, ablation_world_size)
    rng = config.rng()

    def corridor_policy() -> PolicyGraph:
        """Horizontal chains only: a maximally anisotropic sensitivity hull."""
        edges = []
        for row in range(world.height):
            for col in range(world.width - 1):
                edges.append((world.cell_of(row, col), world.cell_of(row, col + 1)))
        return PolicyGraph(world, edges, name="corridor")

    policies = {"G1": build_policy("G1", world), "corridor": corridor_policy()}
    table = ResultTable(
        ["policy", "mechanism", "epsilon", "mean_empirical_error", "optimality_gap"],
        title=f"E9: mechanism ablation vs LP-optimal (epsilon={epsilon})",
    )
    sample_cells = [int(c) for c in rng.choice(world.n_cells, size=10, replace=False)]
    for policy_name, policy in policies.items():
        optimal = OptimalDiscreteMechanism(
            world, policy, epsilon, max_component_size=world.n_cells
        )
        optimal_error = float(
            np.mean([optimal.expected_error(cell) for cell in sample_cells])
        )
        mechanisms = {
            "P-LM": PolicyLaplaceMechanism(world, policy, epsilon),
            "P-PIM": PolicyPlanarIsotropicMechanism(world, policy, epsilon),
            "GraphExp": GraphExponentialMechanism(world, policy, epsilon),
            "Optimal-LP": optimal,
        }
        for mechanism_name, mechanism in mechanisms.items():
            from repro.adversary.metrics import utility_error

            empirical = utility_error(
                world, mechanism, sample_cells, rng=rng, trials_per_cell=40
            )
            table.add_row(
                policy_name,
                mechanism_name,
                epsilon,
                empirical,
                empirical - optimal_error,
            )
    return table


def run_temporal_privacy(
    config: ExperimentConfig = ExperimentConfig(),
    epsilon: float = 1.0,
    deltas: tuple[float, ...] = (0.0, 0.05, 0.2),
    horizon: int = 30,
    temporal_world_size: int = 8,
) -> ResultTable:
    """E10 (extension): streaming release with delta-location sets + repair.

    Follows one Markov-mobile user for ``horizon`` steps under each delta:
    the released stream's utility, the surrogate rate, the mean
    delta-location-set size, repair activity, and the *tracking* adversary's
    mean error (forward filtering over all releases, per-step mechanisms).
    """
    from repro.adversary.tracking import TrajectoryAttacker
    from repro.core.temporal import TemporalReleaser
    from repro.geo.grid import GridWorld
    from repro.mobility.markov import MarkovModel

    world = GridWorld(temporal_world_size, temporal_world_size)
    markov = MarkovModel.lazy_walk(world, p_stay=0.4)
    base_policy = build_policy("G1", world)
    rng = config.rng()
    start = int(rng.integers(world.n_cells))
    trajectory = markov.sample_trajectory(start, horizon, rng=rng)
    table = ResultTable(
        [
            "delta",
            "mean_set_size",
            "surrogate_rate",
            "repaired_edges",
            "utility_error",
            "tracking_error",
        ],
        title=f"E10: temporal release with delta-location sets (epsilon={epsilon})",
    )
    for delta in deltas:
        releaser = TemporalReleaser(
            world, base_policy, markov, PolicyLaplaceMechanism, epsilon, delta=delta
        )
        records = releaser.run(trajectory.cells, rng=rng)
        mechanisms = [
            PolicyLaplaceMechanism(world, record.repair.graph, epsilon)
            for record in records
        ]
        attacker = TrajectoryAttacker(world, markov)
        tracking = attacker.track(
            [record.release for record in records], mechanisms, trajectory.cells
        )
        table.add_row(
            delta,
            float(np.mean([len(record.delta_set) for record in records])),
            releaser.surrogate_rate(),
            sum(len(record.repair.added_edges) for record in records),
            releaser.mean_utility_error(),
            tracking.mean_error,
        )
    return table


def run_metapop_forecast(
    config: ExperimentConfig = ExperimentConfig(),
    beta: float = 0.6,
    mobility_rate: float = 0.3,
    forecast_steps: int = 120,
) -> ResultTable:
    """E11 (extension): epidemic forecasting from privacy-preserving flows.

    The monitoring app's end-to-end utility (Sec. 3.1's motivation): fit a
    metapopulation SEIR to the inter-area flows of the true stream and of
    each perturbed stream, and report the divergence between the forecast
    infectious curves, per policy and budget.  With ``config.eval_shards`` /
    ``config.eval_backend`` set, each combination's flow measurement fans
    out over the distributed-metric path (per-user streams; the merged flow
    matrices — and therefore the forecasts — are invariant under shard
    count and backend).
    """
    from repro.epidemic.metapop import forecast_divergence, forecast_from_flows
    from repro.epidemic.monitor import LocationMonitor, perturbed_flows

    world = config.make_world()
    db = _dataset(config, world)
    monitor = LocationMonitor(world, config.monitor_block[0], config.monitor_block[1])
    n_areas = monitor.n_areas
    # Populations proportional to true occupancy so areas are heterogeneous
    # and the forecast genuinely depends on the mobility matrix.
    _, _, occupied_cells = db.to_arrays()
    occupancy = np.bincount(
        monitor.area_of_batch(occupied_cells), minlength=n_areas
    ).astype(float)
    scale = 10.0 * config.n_users / max(occupancy.sum(), 1.0)
    populations = occupancy * scale * n_areas + 1.0

    def forecast(flows):
        return forecast_from_flows(
            flows,
            n_areas,
            populations,
            beta=beta,
            sigma=config.sigma,
            gamma=config.gamma,
            mobility_rate=mobility_rate,
            steps=forecast_steps,
        )

    reference = forecast(monitor.flows(db))
    table = ResultTable(
        ["policy", "epsilon", "forecast_divergence", "peak_time_true", "peak_time_perturbed"],
        title="E11: metapopulation forecast from perturbed flows",
    )
    rng = config.rng()
    with _eval_execution(config) as (shards, backend):
        for policy_name in config.policies:
            policy = build_policy(policy_name, world)
            for epsilon in config.epsilons:
                source = _metric_source(
                    world, policy, policy_name, "P-LM", epsilon, shards is not None
                )
                _, observed_flows = perturbed_flows(
                    world,
                    source,
                    db,
                    block_rows=config.monitor_block[0],
                    block_cols=config.monitor_block[1],
                    rng=rng,
                    shards=shards,
                    backend=backend,
                )
                candidate = forecast(observed_flows)
                table.add_row(
                    policy_name,
                    epsilon,
                    forecast_divergence(reference, candidate),
                    reference.peak_time(),
                    candidate.peak_time(),
                )
    return table


def run_scalability(config: ExperimentConfig = ExperimentConfig()) -> ResultTable:
    """E8: sharded release *and* evaluation throughput per backend x shards.

    For every ``(backend, shards)`` pair in ``config.backends x
    config.shard_counts`` this times two full runs over the configured
    workload:

    * the release path —
      :func:`~repro.server.pipeline.run_release_rounds_batched` with
      streaming shard ingestion (``seconds`` / ``releases_per_sec``);
    * the evaluation path — the sharded E1 metric
      (:func:`~repro.epidemic.monitor.monitoring_utility` over the same
      shard plan and backend), reported as ``eval_seconds`` /
      ``eval_releases_per_sec``.

    The engine comes from :meth:`ExperimentConfig.make_engine`, so
    ``--engine-spec`` files flow straight into this sweep.  One backend
    instance is built per backend name and shared across that backend's
    whole row block, which is what lets the ``pool`` backend amortise
    worker startup and engine pickling across the sweep.

    The ``workers`` column reports remote worker-process counts for the
    ``rpc`` backend: with ``config.worker_counts`` set, the rpc backend gets
    one row block per worker count (each count building its own persistent
    worker cluster, shared across that block's shard sweep, exactly like the
    pool amortisation above); without it, the backend's own default count is
    reported.  In-process backends have no remote workers and show ``None``.
    ``config.backend_params`` (e.g. ``worker_timeout``) are forwarded to
    every backend built here by name.

    Every run is seeded with ``config.seed`` under the sharded
    per-user-stream contract, so all combinations must produce identical
    values; ``matches_serial`` re-asserts that element-wise for the
    released rounds and ``eval_matches_serial`` compares the full
    :class:`~repro.epidemic.monitor.MonitoringReport` bit-for-bit — both
    against explicit serial 1-shard baselines computed up front, outside
    the timed sweep.  The checks ride along with the throughput numbers
    and stay meaningful even when the sweep is pinned to a single
    non-serial combination.

    With ``config.store_path`` set, each combination is additionally timed
    store-backed — every shard committed transactionally into a
    :class:`~repro.store.TraceStore` (fresh per combination, unless
    ``config.resume`` continues an existing run) — and reported in a
    ``durable_releases_per_sec`` column (``None`` without a store), whose
    output must also match the serial baseline.

    With ``config.live_metrics`` set, each combination additionally runs
    with the :mod:`~repro.server.live_metrics` views attached and reports
    ``live_matches_batch`` — whether every per-round
    :meth:`~repro.server.pipeline.Server.metrics_at` snapshot equals a
    from-scratch :func:`~repro.server.live_metrics.batch_recompute`
    bitwise — and ``live_query_speedup``, the cost of that full recompute
    over the cost of querying every live snapshot (both ``None`` when the
    flag is off).
    """
    world = config.make_world()
    db = _dataset(config, world)
    engine = config.make_engine(world=world)
    block_rows, block_cols = config.monitor_block
    table = ResultTable(
        [
            "backend",
            "workers",
            "shards",
            "seconds",
            "releases_per_sec",
            "matches_serial",
            "eval_seconds",
            "eval_releases_per_sec",
            "eval_matches_serial",
            "durable_releases_per_sec",
            "live_matches_batch",
            "live_query_speedup",
        ],
        title=(
            f"E8: sharded release + eval rounds ({config.dataset}, "
            f"{config.n_users} users x {config.horizon} steps, "
            f"{engine.mechanism.name})"
        ),
    )
    reference = run_release_rounds_batched(
        world, db, engine, rng=config.seed, shards=1, backend="serial"
    )
    baseline = list(reference.released_db.checkins())
    eval_baseline = monitoring_utility(
        world, engine, db, block_rows, block_cols,
        rng=config.seed, shards=1, backend="serial",
    )
    for backend_name in config.backends:
        if backend_name == "rpc" and config.worker_counts:
            worker_sweep: tuple[int | None, ...] = tuple(config.worker_counts)
        else:
            worker_sweep = (None,)
        for workers in worker_sweep:
            # backend_params carry rpc cluster knobs (worker_timeout, ...);
            # forwarding them to the in-process backends in a mixed sweep
            # would be a TypeError, so they apply to rpc row blocks only.
            params = dict(config.backend_params) if backend_name == "rpc" else {}
            if workers is not None:
                params["workers"] = int(workers)
            with ensure_backend(backend_name, **params) as backend:
                # Remote-worker backends report their cluster size; the
                # in-process backends have no matching notion and show None.
                reported_workers = getattr(backend, "workers", None) if backend_name == "rpc" else None
                for shards in config.shard_counts:
                    start = perf_counter()
                    server = run_release_rounds_batched(
                        world, db, engine, rng=config.seed, shards=shards, backend=backend,
                        async_ingest=config.async_ingest,
                    )
                    seconds = perf_counter() - start
                    start = perf_counter()
                    report = monitoring_utility(
                        world, engine, db, block_rows, block_cols,
                        rng=config.seed, shards=shards, backend=backend,
                    )
                    eval_seconds = perf_counter() - start
                    durable_rate = None
                    if config.store_path is not None:
                        # Fresh store per combination (each is a complete run
                        # of its own) unless the caller is resuming one;
                        # matching the serial baseline folds the durable
                        # output into the sweep's determinism check.
                        if not config.resume:
                            for suffix in ("", "-wal", "-shm"):
                                Path(config.store_path + suffix).unlink(missing_ok=True)
                        start = perf_counter()
                        durable_server = run_release_rounds_batched(
                            world, db, engine, rng=config.seed, shards=shards,
                            backend=backend, async_ingest=config.async_ingest,
                            store=config.store_path, resume=config.resume,
                        )
                        durable_seconds = perf_counter() - start
                        if list(durable_server.released_db.checkins()) != baseline:
                            raise AssertionError(
                                "store-backed run diverged from the serial baseline"
                            )
                        durable_rate = round(len(db) / durable_seconds, 1)
                    live_match = None
                    live_speedup = None
                    if config.live_metrics:
                        from repro.engine.sharding import (
                            ShardPlan,
                            stream_shard_releases,
                        )
                        from repro.server.live_metrics import (
                            batch_recompute,
                            default_views,
                        )

                        views = default_views(
                            world,
                            block_rows=block_rows,
                            block_cols=block_cols,
                            p_transmit=config.p_transmit,
                            gamma=config.gamma,
                        )
                        live_server = run_release_rounds_batched(
                            world, db, engine, rng=config.seed, shards=shards,
                            backend=backend, async_ingest=config.async_ingest,
                            live_metrics=views,
                        )
                        # Re-derive the raw release rows over the same plan
                        # (per-user streams make them identical to what the
                        # live run committed), outside both timed sections.
                        plan = ShardPlan.build(
                            sorted(db.users()), shards, rng=config.seed
                        )
                        rows = [
                            (np.asarray(s_users, dtype=int),
                             np.asarray(s_times, dtype=int),
                             s_batch.points,
                             np.asarray(s_batch.cells, dtype=int))
                            for s_users, s_times, s_batch
                            in stream_shard_releases(engine, db, plan)
                        ]
                        row_users = np.concatenate([r[0] for r in rows])
                        row_times = np.concatenate([r[1] for r in rows])
                        row_points = np.concatenate([r[2] for r in rows])
                        row_true = np.concatenate([r[3] for r in rows])
                        row_snapped = np.asarray(
                            world.snap_batch(row_points), dtype=int
                        )
                        start = perf_counter()
                        batch_values = batch_recompute(
                            views, plan, row_users, row_times, row_points,
                            row_true, row_snapped,
                        )
                        batch_seconds = perf_counter() - start
                        registry = live_server.metrics
                        start = perf_counter()
                        live_values = {
                            r: live_server.metrics_at(r) for r in registry.rounds
                        }
                        live_seconds = perf_counter() - start
                        live_match = (
                            set(live_values) == set(batch_values)
                            and all(
                                dict(live_values[r]) == batch_values[r]
                                for r in live_values
                            )
                        )
                        live_speedup = round(
                            batch_seconds / max(live_seconds, 1e-9), 1
                        )
                    table.add_row(
                        backend_name,
                        reported_workers,
                        shards,
                        round(seconds, 6),
                        round(len(db) / seconds, 1),
                        list(server.released_db.checkins()) == baseline,
                        round(eval_seconds, 6),
                        round(len(db) / eval_seconds, 1),
                        report == eval_baseline,
                        durable_rate,
                        live_match,
                        live_speedup,
                    )
    return table


def run_dataset_sensitivity(
    config: ExperimentConfig = ExperimentConfig(),
    datasets: tuple[str, ...] = ("geolife", "gowalla", "random_waypoint"),
    epsilon: float = 1.0,
) -> ResultTable:
    """E12 (robustness): are the E1 conclusions workload-independent?

    Runs the monitoring-utility metrics on all synthetic workloads at one
    budget, per policy.  The paper demonstrates on both Geolife and Gowalla;
    this runner checks that the policy ordering (finer = better point
    utility) does not depend on which workload is plugged in.
    """
    import dataclasses

    world = config.make_world()
    table = ResultTable(
        ["dataset", "policy", "epsilon", "mean_euclidean_error", "area_accuracy"],
        title=f"E12: dataset sensitivity of monitoring utility (epsilon={epsilon})",
    )
    rng = config.rng()
    for dataset in datasets:
        dataset_config = dataclasses.replace(config, dataset=dataset)
        db = _dataset(dataset_config, world)
        for policy_name in config.policies:
            policy = build_policy(policy_name, world)
            mechanism = PolicyLaplaceMechanism(world, policy, epsilon)
            report = monitoring_utility(
                world,
                mechanism,
                db,
                block_rows=config.monitor_block[0],
                block_cols=config.monitor_block[1],
                rng=rng,
            )
            table.add_row(
                dataset, policy_name, epsilon, report.mean_euclidean_error, report.area_accuracy
            )
    return table
