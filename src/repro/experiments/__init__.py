"""Experiment harness regenerating every evaluation artifact of the demo.

One runner per experiment (see DESIGN.md's index); each returns a
:class:`~repro.experiments.reporting.ResultTable` whose rows are what the
paper's interactive panels plot.  The ``benchmarks/`` directory wraps these
runners with pytest-benchmark and prints the tables.
"""

from repro.experiments.reporting import ResultTable
from repro.experiments.configs import (
    POLICY_BUILDERS,
    MECHANISM_FACTORIES,
    ExperimentConfig,
    build_policy,
    build_mechanism,
)
from repro.experiments.harness import (
    run_monitoring_utility,
    run_r0_estimation,
    run_contact_tracing,
    run_adversary_error,
    run_random_policy_tradeoff,
    run_theorem_bounds,
    run_policy_matrix,
    run_mechanism_ablation,
    run_temporal_privacy,
    run_metapop_forecast,
    run_dataset_sensitivity,
)

__all__ = [
    "ResultTable",
    "POLICY_BUILDERS",
    "MECHANISM_FACTORIES",
    "ExperimentConfig",
    "build_policy",
    "build_mechanism",
    "run_monitoring_utility",
    "run_r0_estimation",
    "run_contact_tracing",
    "run_adversary_error",
    "run_random_policy_tradeoff",
    "run_theorem_bounds",
    "run_policy_matrix",
    "run_mechanism_ablation",
    "run_temporal_privacy",
    "run_metapop_forecast",
    "run_dataset_sensitivity",
]
