"""Accelerator schema for the trace store: commit-time summary maintenance.

The query surface (:mod:`repro.query`) answers windowed analytics — contact
rates, flow matrices, top-k hot cells — without a full pass over
``releases``.  What makes that possible is this module: a small set of
per-round summary tables (the LSST-style accelerator layout) whose rows are
maintained *inside the same SQLite transaction* as the shard's release rows
and ``(shard, round)`` commit marks.  Because the deltas travel in the
shard's own transaction, the summaries can never be torn relative to
``shard_commits``: a crash either keeps the whole shard (rows, marks, and
summary increments) or none of it.

Tables (created by :func:`repro.store.schema.create_schema`):

``round_cell_counts``
    ``(kind, time, cell) -> n``: per-round occupancy.  ``kind`` 0 summarises
    the stored ``cell`` column (the server-side snapped view on the pipeline
    path); ``kind`` 1 the ground-truth cells a commit supplied via
    ``true_cells=`` — the store still never persists *per-row* ground truth,
    only these aggregate head counts, which is exactly what the monitoring
    estimators consume.
``round_flows``
    ``(kind, time, src, dst) -> n``: cell-to-cell transition counts, each
    ``(t-1, t)`` step assigned to its *destination* round ``t`` (the live
    metrics convention, so cumulative prefixes line up).  Area-level flow
    matrices are derived at query time by mapping cells to areas, which is
    an integer regrouping — any tiling is served exactly from one table.
``user_summary``
    ``user -> (n_rows, min_time, max_time)``: per-user bounds, serving
    :meth:`TraceStore.users <repro.store.store.TraceStore.users>` and
    trajectory planning without a ``SELECT DISTINCT`` scan.

Every delta is a pure function of the committed rows, merged by integer
addition (``ON CONFLICT ... DO UPDATE SET n = n + excluded.n``), so the
summary state is independent of shard count, backend, committer, commit
arrival order, and kill-resume — the same argument that makes the live
metric views bit-identical across those axes.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable

import numpy as np

__all__ = [
    "ACCELERATOR_TABLES",
    "KIND_OBSERVED",
    "KIND_TRUE",
    "apply_deltas",
    "boundary_flow_rows",
    "cell_count_rows",
    "flow_rows",
    "user_summary_rows",
]

#: ``kind`` column values: 0 summarises the stored rows, 1 the ground truth.
KIND_OBSERVED = 0
KIND_TRUE = 1

ACCELERATOR_TABLES = (
    """
    CREATE TABLE IF NOT EXISTS round_cell_counts (
        kind INTEGER NOT NULL,
        time INTEGER NOT NULL,
        cell INTEGER NOT NULL,
        n    INTEGER NOT NULL,
        PRIMARY KEY (kind, time, cell)
    ) WITHOUT ROWID
    """,
    """
    CREATE TABLE IF NOT EXISTS round_flows (
        kind INTEGER NOT NULL,
        time INTEGER NOT NULL,
        src  INTEGER NOT NULL,
        dst  INTEGER NOT NULL,
        n    INTEGER NOT NULL,
        PRIMARY KEY (kind, time, src, dst)
    ) WITHOUT ROWID
    """,
    """
    CREATE TABLE IF NOT EXISTS user_summary (
        user     INTEGER NOT NULL,
        n_rows   INTEGER NOT NULL,
        min_time INTEGER NOT NULL,
        max_time INTEGER NOT NULL,
        PRIMARY KEY (user)
    ) WITHOUT ROWID
    """,
)

_UPSERT_CELL_COUNTS = (
    "INSERT INTO round_cell_counts (kind, time, cell, n) VALUES (?, ?, ?, ?) "
    "ON CONFLICT(kind, time, cell) DO UPDATE SET n = n + excluded.n"
)
_UPSERT_FLOWS = (
    "INSERT INTO round_flows (kind, time, src, dst, n) VALUES (?, ?, ?, ?, ?) "
    "ON CONFLICT(kind, time, src, dst) DO UPDATE SET n = n + excluded.n"
)
_UPSERT_USER_SUMMARY = (
    "INSERT INTO user_summary (user, n_rows, min_time, max_time) "
    "VALUES (?, ?, ?, ?) "
    "ON CONFLICT(user) DO UPDATE SET "
    "n_rows = n_rows + excluded.n_rows, "
    "min_time = MIN(min_time, excluded.min_time), "
    "max_time = MAX(max_time, excluded.max_time)"
)


def cell_count_rows(kind: int, times: np.ndarray, cells: np.ndarray) -> list[tuple]:
    """``(kind, time, cell, n)`` occupancy increments for one commit's rows."""
    if len(times) == 0:
        return []
    # Encoded int64 keys: one flat np.unique instead of the (much slower)
    # axis=0 row-wise variant — this runs inside every commit.
    base = int(cells.max()) + 1
    codes = times.astype(np.int64) * base + cells
    uniques, counts = np.unique(codes, return_counts=True)
    kinds = np.full(len(uniques), int(kind), dtype=np.int64)
    return np.column_stack((kinds, uniques // base, uniques % base, counts)).tolist()


def flow_rows(
    kind: int, users: np.ndarray, times: np.ndarray, cells: np.ndarray
) -> list[tuple]:
    """``(kind, time, src, dst, n)`` transition increments within one commit.

    Rows are sorted user-major with times ascending, so a user's consecutive
    timesteps are adjacent; each ``(t-1, t)`` step contributes one count at
    destination round ``t``.  Only *within-commit* adjacency is counted —
    the shard streaming contract delivers each user's whole trace in one
    commit, and :func:`boundary_flow_rows` covers the stored side when a
    caller commits a user's trace piecewise.
    """
    if len(users) < 2:
        return []
    order = np.lexsort((times, users))
    u, t, c = users[order], times[order], cells[order]
    step = (u[1:] == u[:-1]) & (t[1:] == t[:-1] + 1)
    if not bool(step.any()):
        return []
    dst_times = t[1:][step]
    src_cells = c[:-1][step]
    dst_cells = c[1:][step]
    base = int(max(src_cells.max(), dst_cells.max())) + 1
    codes = (dst_times.astype(np.int64) * base + src_cells) * base + dst_cells
    uniques, counts = np.unique(codes, return_counts=True)
    kinds = np.full(len(uniques), int(kind), dtype=np.int64)
    return np.column_stack(
        (kinds, uniques // (base * base), uniques // base % base, uniques % base, counts)
    ).tolist()


def user_summary_rows(users: np.ndarray, times: np.ndarray) -> list[tuple]:
    """``(user, n_rows, min_time, max_time)`` increments for one commit."""
    if len(users) == 0:
        return []
    order = np.lexsort((times, users))
    u, t = users[order], times[order]
    uniques, starts, counts = np.unique(u, return_index=True, return_counts=True)
    stops = starts + counts - 1
    return np.column_stack((uniques, counts, t[starts], t[stops])).tolist()


def boundary_flow_rows(
    connection: sqlite3.Connection,
    users: np.ndarray,
    times: np.ndarray,
    cells: np.ndarray,
    prior_users: "set[int]",
) -> list[tuple]:
    """Observed-flow increments stitching new rows to already-stored ones.

    When a commit adds rows for a user who already has stored rows (a
    piecewise, per-round commit pattern rather than the whole-trace shard
    contract), transitions between an old row and a new row exist in the
    data but not in the commit's own adjacency.  This resolves them with
    point lookups against the ``releases`` primary key: for each new row at
    ``(user, t)`` whose neighbour round is *not* part of this commit, an
    existing row at ``t - 1`` contributes a ``(stored -> new)`` step and an
    existing row at ``t + 1`` a ``(new -> stored)`` step.  Only the stored
    (``kind`` 0) side can be stitched — ground-truth cells are never
    persisted per row, which is why piecewise commits refuse ``true_cells``.
    """
    if not prior_users:
        return []
    incoming: dict[int, dict[int, int]] = {}
    for user, time, cell in zip(users.tolist(), times.tolist(), cells.tolist()):
        if user in prior_users:
            incoming.setdefault(user, {})[time] = cell
    rows: list[tuple] = []
    lookup = connection.execute
    for user, trace in incoming.items():
        for time, cell in trace.items():
            if time - 1 not in trace:
                hit = lookup(
                    "SELECT cell FROM releases WHERE user = ? AND time = ?",
                    (user, time - 1),
                ).fetchone()
                if hit is not None:
                    rows.append((KIND_OBSERVED, time, int(hit[0]), cell, 1))
            if time + 1 not in trace:
                hit = lookup(
                    "SELECT cell FROM releases WHERE user = ? AND time = ?",
                    (user, time + 1),
                ).fetchone()
                if hit is not None:
                    rows.append((KIND_OBSERVED, time + 1, cell, int(hit[0]), 1))
    return rows


def apply_deltas(
    connection: sqlite3.Connection,
    cell_counts: Iterable[tuple],
    flows: Iterable[tuple],
    summaries: Iterable[tuple],
) -> None:
    """Apply one commit's summary increments (caller owns the transaction)."""
    connection.executemany(_UPSERT_CELL_COUNTS, cell_counts)
    connection.executemany(_UPSERT_FLOWS, flows)
    connection.executemany(_UPSERT_USER_SUMMARY, summaries)
