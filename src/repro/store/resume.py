"""Resume validation: the manifest a store records about the run it holds.

Every shard of a store-backed run is a pure function of ``(engine spec,
per-user seed streams, true traces)``, so *recovery is re-derivation*: a
resumed run simply re-runs the shards whose ``(shard, round)`` commit marks
are missing and is bit-identical to the uninterrupted run.  That only holds
if the resumed run really is the same function — same engine spec, same
world, same per-user seeds, same partition.  :class:`RunManifest` captures
exactly that identity:

* ``spec_hash`` — SHA-256 over the engine's canonical description (mechanism
  name, policy name, epsilon, spec dict when present, world geometry);
* ``plan_fingerprint`` — SHA-256 over the shard plan's sorted user list,
  per-user seed streams, and shard count (the *seed material*: a different
  parent ``rng`` or population yields a different fingerprint);
* the population / shard / world shape, kept as discrete fields so a
  mismatch can name what differs.

:meth:`TraceStore.begin_run <repro.store.store.TraceStore.begin_run>` writes
the manifest on first use and validates it on reopen, raising
:class:`~repro.errors.ResumeMismatchError` with the differing fields when a
resume would silently re-run a different experiment.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Mapping

from repro.errors import ResumeMismatchError

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.engine.engine import PrivacyEngine
    from repro.engine.sharding import ShardPlan
    from repro.geo.grid import GridWorld

__all__ = ["RunManifest", "engine_spec_hash"]


def engine_spec_hash(engine: "PrivacyEngine") -> str:
    """Deterministic SHA-256 identity of an engine's *output-relevant* parts.

    Hashes :meth:`~repro.engine.engine.PrivacyEngine.describe` — mechanism
    name, policy name, epsilon, world geometry, and the canonical spec dict
    when the engine was spec-built — with the spec's ``execution`` block
    stripped first.  Execution (backend, shard count, store/resume wiring)
    is pure run control: per-user RNG streams make released values invariant
    under it, so a run committed with ``backend="thread"`` may legitimately
    resume with ``backend="process"``.  Shard count *does* change the commit
    granularity, but that is covered by the plan fingerprint, which the
    manifest records separately.
    """
    description = engine.describe()
    spec = description.get("spec")
    if spec is not None:
        spec = dict(spec)
        spec.pop("execution", None)
        description = {**description, "spec": spec}
    payload = json.dumps(description, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class RunManifest:
    """The identity a store records for its run (all resume preconditions)."""

    spec_hash: str
    plan_fingerprint: str
    n_users: int
    n_shards: int
    world_width: int
    world_height: int
    cell_size: float

    @classmethod
    def for_run(
        cls, engine: "PrivacyEngine", plan: "ShardPlan", world: "GridWorld"
    ) -> "RunManifest":
        """Manifest for one store-backed sharded run."""
        return cls(
            spec_hash=engine_spec_hash(engine),
            plan_fingerprint=plan.fingerprint,
            n_users=len(plan.users),
            n_shards=int(plan.n_shards),
            world_width=int(world.width),
            world_height=int(world.height),
            cell_size=float(world.cell_size),
        )

    # ------------------------------------------------------------------
    def as_meta(self) -> dict[str, str]:
        """String key/value pairs for the store's ``meta`` table."""
        return {field.name: str(getattr(self, field.name)) for field in fields(self)}

    @classmethod
    def from_meta(cls, meta: Mapping[str, str]) -> "RunManifest | None":
        """Rebuild from ``meta`` rows; ``None`` when no manifest was recorded."""
        if "spec_hash" not in meta:
            return None
        return cls(
            spec_hash=meta["spec_hash"],
            plan_fingerprint=meta["plan_fingerprint"],
            n_users=int(meta["n_users"]),
            n_shards=int(meta["n_shards"]),
            world_width=int(meta["world_width"]),
            world_height=int(meta["world_height"]),
            cell_size=float(meta["cell_size"]),
        )

    def check_against(self, recorded: "RunManifest", path: str) -> None:
        """Raise :class:`ResumeMismatchError` naming every differing field."""
        diffs = [
            f"{field.name}: run has {getattr(self, field.name)!r}, "
            f"store recorded {getattr(recorded, field.name)!r}"
            for field in fields(self)
            if getattr(self, field.name) != getattr(recorded, field.name)
        ]
        if diffs:
            raise ResumeMismatchError(
                f"store {path!r} was recorded for a different run; resuming "
                f"would not reproduce it ({'; '.join(diffs)}).  Use a fresh "
                "store path, or re-run with the original spec and seed."
            )
