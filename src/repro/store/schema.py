"""SQLite schema and pragma recipe for the durable trace store.

One embedded database file per run.  The layout is deliberately small and
append-oriented (the LSST ingest shape: partitioned bulk appends plus a tiny
per-partition recovery-state table):

``meta``
    Key/value manifest: schema version plus the
    :class:`~repro.store.resume.RunManifest` fields (engine spec hash, shard
    plan fingerprint, world geometry).  Written once per run; validated on
    every reopen so a resume against the wrong spec or seeds aborts instead
    of silently producing a different trace.
``releases``
    The released trace, keyed ``(user, time)``: the snapped server-side cell,
    the raw released planar point, the exact-disclosure flag, and the budget
    charged.  ``WITHOUT ROWID`` clusters rows by the key, so per-user
    trajectory scans are contiguous range reads; the ``(time, user)`` index
    serves round-major queries.
``shard_commits``
    Per-``(shard, round)`` recovery state, modelled on Paper-Scanner's
    ``journal_state`` incremental-update tables: a pair is present iff that
    shard's releases for that round are durably committed.  Rows are written
    in the *same transaction* as their releases, so after any crash the pair
    set exactly describes the recoverable prefix — there is no separate
    log-replay step.
``local_windows``
    Spill space for out-of-core :class:`~repro.server.localdb.LocalLocationDB`
    instances (client-side rolling windows), keyed ``(user, time)``.
``round_cell_counts`` / ``round_flows`` / ``user_summary``
    The query accelerator (schema v2): per-round occupancy, per-round
    cell-transition counts, and per-user bounds, maintained inside every
    shard-commit transaction so windowed analytics never pay a full-table
    pass — see :mod:`repro.store.accelerator` for the layout and the
    merge-by-integer-addition argument.

Pragma rationale (the Paper-Scanner recipe, see ``docs/persistence.md``):

* ``journal_mode=WAL`` — writers append to a write-ahead log instead of
  rewriting pages in place, so a kill -9 mid-transaction never tears
  committed data, and concurrent readers (the resume poller, out-of-core
  scans) proceed without blocking the committer.
* ``synchronous=NORMAL`` — in WAL mode this fsyncs only at checkpoints;
  a power loss may drop the *last* transactions but never corrupts the
  database.  Since every shard is re-derivable from its seeds, losing a
  tail transaction just means re-deriving that shard on resume — the exact
  trade the recovery model is built around.
* ``busy_timeout`` — a blocked connection retries for a bounded window
  instead of failing immediately, which is what lets a read-only monitor
  poll the store while the committer holds the write lock.
* ``foreign_keys=ON`` — belt-and-braces referential integrity for future
  schema growth (the current tables are self-contained).
"""

from __future__ import annotations

import sqlite3

from repro.store.accelerator import ACCELERATOR_TABLES

__all__ = ["SCHEMA_VERSION", "BUSY_TIMEOUT_MS", "apply_pragmas", "create_schema"]

#: Bumped whenever the table layout changes; stores recorded under a
#: different version refuse to open rather than guess at a migration.
#: v2 added the query-accelerator tables (round_cell_counts, round_flows,
#: user_summary) maintained inside every shard-commit transaction.
SCHEMA_VERSION = 2

#: Default lock-retry window (milliseconds) for every connection.
BUSY_TIMEOUT_MS = 30_000

_TABLES = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    ) WITHOUT ROWID
    """,
    """
    CREATE TABLE IF NOT EXISTS releases (
        user    INTEGER NOT NULL,
        time    INTEGER NOT NULL,
        cell    INTEGER NOT NULL,
        x       REAL    NOT NULL,
        y       REAL    NOT NULL,
        exact   INTEGER NOT NULL,
        epsilon REAL    NOT NULL,
        PRIMARY KEY (user, time)
    ) WITHOUT ROWID
    """,
    """
    CREATE TABLE IF NOT EXISTS shard_commits (
        shard  INTEGER NOT NULL,
        round  INTEGER NOT NULL,
        n_rows INTEGER NOT NULL,
        PRIMARY KEY (shard, round)
    ) WITHOUT ROWID
    """,
    """
    CREATE TABLE IF NOT EXISTS local_windows (
        user INTEGER NOT NULL,
        time INTEGER NOT NULL,
        cell INTEGER NOT NULL,
        PRIMARY KEY (user, time)
    ) WITHOUT ROWID
    """,
    """
    CREATE INDEX IF NOT EXISTS releases_by_time ON releases (time, user)
    """,
) + ACCELERATOR_TABLES


def apply_pragmas(connection: sqlite3.Connection, busy_timeout_ms: int = BUSY_TIMEOUT_MS) -> None:
    """Apply the WAL/NORMAL/busy-timeout recipe to ``connection``.

    Safe to call on every open (pragmas are per-connection except
    ``journal_mode``, which persists in the database header).
    """
    connection.execute("PRAGMA journal_mode=WAL")
    connection.execute("PRAGMA synchronous=NORMAL")
    connection.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
    connection.execute("PRAGMA foreign_keys=ON")


def create_schema(connection: sqlite3.Connection) -> None:
    """Create every table/index if absent (idempotent)."""
    with connection:
        for statement in _TABLES:
            connection.execute(statement)
