"""Out-of-core trace access: a ``TraceDB``-shaped read view over the store.

:class:`StoredTraceDB` lets population-scale runs keep the released trace on
disk: a :class:`~repro.server.pipeline.Server` opened with
``out_of_core=True`` commits shards straight into the
:class:`~repro.store.store.TraceStore` and exposes this view as its
``released_db``, so server-side memory stays bounded by the largest single
shard instead of the whole population.  The view answers the ``TraceDB``
read API (:meth:`users`, :meth:`at_time`, :meth:`user_history`,
:meth:`checkins`, ...) by translating each call into an indexed SQLite query
— per-user trajectory scans are contiguous range reads thanks to the
``(user, time)`` clustering, round snapshots use the ``(time, user)`` index.

The view is read-only: mutation goes through the store's transactional
commit path (:meth:`TraceStore.commit_shard
<repro.store.store.TraceStore.commit_shard>`), never through this class —
that is what keeps "what's in the view" and "what a crash preserves"
the same set of rows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.errors import StoreError

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.mobility.trajectory import CheckIn, TraceDB
    from repro.store.store import TraceStore

__all__ = ["StoredTraceDB"]


class StoredTraceDB:
    """Read-only ``TraceDB`` facade over a :class:`TraceStore`'s releases."""

    def __init__(self, store: "TraceStore") -> None:
        self.store = store

    # ------------------------------------------------------------------
    # Mutation is refused: commits go through TraceStore.commit_shard.
    # ------------------------------------------------------------------
    def add(self, checkin) -> None:
        raise StoreError(
            "StoredTraceDB is a read-only view; commit rows via TraceStore.commit_shard"
        )

    def record(self, user: int, time: int, cell: int) -> None:
        self.add(None)

    def record_many(self, users, times, cells) -> None:
        self.add(None)

    # ------------------------------------------------------------------
    # TraceDB read API, served from disk
    # ------------------------------------------------------------------
    def users(self) -> frozenset[int]:
        return self.store.users()

    def times(self) -> list[int]:
        return self.store.times()

    def at_time(self, time: int) -> dict[int, int]:
        return self.store.at_time(time)

    def location(self, user: int, time: int) -> int | None:
        return self.store.location(user, time)

    def user_history(self, user: int, start: int | None = None, end: int | None = None) -> "list[CheckIn]":
        history = self.store.user_history(user)
        if start is None and end is None:
            return history
        return [
            checkin
            for checkin in history
            if (start is None or checkin.time >= start) and (end is None or checkin.time <= end)
        ]

    def cells_visited(self, user: int, start: int | None = None, end: int | None = None) -> set[int]:
        return {checkin.cell for checkin in self.user_history(user, start, end)}

    def checkins(self) -> "Iterator[CheckIn]":
        return self.store.checkins()

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(users, times, cells)`` in ``checkins()`` order — materialised.

        This pulls the whole trace into RAM (it exists for API parity and
        for evaluating modest stores); population-scale consumers should
        stream :meth:`checkins` or query per user instead.
        """
        rows = list(self.store.checkins())
        users = np.fromiter((c.user for c in rows), dtype=int, count=len(rows))
        times = np.fromiter((c.time for c in rows), dtype=int, count=len(rows))
        cells = np.fromiter((c.cell for c in rows), dtype=int, count=len(rows))
        return users, times, cells

    def load_tracedb(self) -> "TraceDB":
        """Materialise an in-memory :class:`TraceDB` (small stores only)."""
        return self.store.load_tracedb()

    def __len__(self) -> int:
        return len(self.store)

    def __repr__(self) -> str:
        return f"StoredTraceDB(path={self.store.path!r}, checkins={len(self)})"
