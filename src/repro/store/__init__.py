"""Durable, resumable trace persistence (the ``repro/store/`` subsystem).

An embedded-SQLite layer under :class:`~repro.server.pipeline.Server` and
``TraceDB``:

* :mod:`repro.store.schema` — the table layout and WAL pragma recipe;
* :class:`TraceStore` — transactional whole-shard commits, per-``(shard,
  round)`` recovery state, streaming reads;
* :class:`RunManifest` (:mod:`repro.store.resume`) — the spec-hash /
  seed-material identity that validates a resume;
* :class:`StoredTraceDB` — the out-of-core ``TraceDB`` read view.

See ``docs/persistence.md`` for the full recovery model ("recovery is
re-derivation") and usage walkthrough.
"""

from repro.store.outofcore import StoredTraceDB
from repro.store.resume import RunManifest, engine_spec_hash
from repro.store.schema import BUSY_TIMEOUT_MS, SCHEMA_VERSION, apply_pragmas, create_schema
from repro.store.store import TraceStore, open_store

__all__ = [
    "BUSY_TIMEOUT_MS",
    "RunManifest",
    "SCHEMA_VERSION",
    "StoredTraceDB",
    "TraceStore",
    "apply_pragmas",
    "create_schema",
    "engine_spec_hash",
    "open_store",
]
