"""The durable trace store: transactional shard commits over embedded SQLite.

:class:`TraceStore` is the persistence layer under
:class:`~repro.server.pipeline.Server`: every whole-shard atomic commit the
in-memory path already performs (:meth:`Server.ingest_shard
<repro.server.pipeline.Server.ingest_shard>`) maps onto exactly one SQLite
transaction that writes the shard's release rows *and* its per-``(shard,
round)`` commit marks together.  Because the marks travel in the same
transaction, the store can never hold a torn shard: after any crash —
including kill -9 mid-transaction, which WAL recovery rolls back on the next
open — the ``shard_commits`` table is a precise inventory of what survived,
and a resumed run re-derives only the missing shards from their seeds
(see :mod:`repro.store.resume`).

The same file doubles as the out-of-core backing for populations larger than
RAM: :class:`~repro.store.outofcore.StoredTraceDB` serves the ``TraceDB``
read API by streaming from the ``releases`` table, and
:class:`~repro.server.localdb.LocalLocationDB` can spill its rolling window
into ``local_windows``.

Threading: the single connection is opened with ``check_same_thread=False``
so the :class:`~repro.server.pipeline.AsyncShardCommitter` background thread
can commit while the main thread reads; CPython's ``sqlite3`` is built in
serialized threading mode, and all writes are additionally funnelled through
one committer at a time by the pipeline's queue contract.
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Mapping

import numpy as np

from repro.errors import StoreError
from repro.store import accelerator
from repro.store.resume import RunManifest
from repro.store.schema import BUSY_TIMEOUT_MS, SCHEMA_VERSION, apply_pragmas, create_schema

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.core.mechanisms.base import ReleaseBatch
    from repro.mobility.trajectory import CheckIn, TraceDB

__all__ = ["TraceStore"]

#: Rows fetched per cursor round-trip by the streaming readers.
_FETCH_BATCH = 10_000


class TraceStore:
    """One run's durable release store (a single SQLite file, WAL mode).

    Parameters
    ----------
    path:
        Database file path (created if absent), or ``":memory:"`` for an
        ephemeral store (useful in tests — it still exercises the exact
        transaction shapes, minus crash durability).
    busy_timeout_ms:
        Lock-retry window applied to the connection (see
        :mod:`repro.store.schema` for the full pragma rationale).

    Use as a context manager, or call :meth:`close` explicitly; all write
    methods are transactional (committed whole or rolled back).
    """

    def __init__(self, path: "str | os.PathLike[str]", busy_timeout_ms: int = BUSY_TIMEOUT_MS) -> None:
        self.path = str(path)
        try:
            self._connection = sqlite3.connect(self.path, check_same_thread=False)
        except sqlite3.Error as exc:
            raise StoreError(f"cannot open trace store {self.path!r}: {exc}") from exc
        apply_pragmas(self.connection, busy_timeout_ms)
        create_schema(self.connection)
        self._check_schema_version()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _check_schema_version(self) -> None:
        recorded = self._meta().get("schema_version")
        if recorded is None:
            with self.connection:
                self.connection.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)),
                )
        elif int(recorded) != SCHEMA_VERSION:
            raise StoreError(
                f"trace store {self.path!r} uses schema v{recorded}, this "
                f"build expects v{SCHEMA_VERSION}; migrate or use a new path"
            )

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying connection (read-only queries, maintenance)."""
        if self._connection is None:
            raise StoreError(f"trace store {self.path!r} is closed")
        return self._connection

    def close(self) -> None:
        """Close the connection (idempotent); pending work is rolled back."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None  # type: ignore[assignment]

    def __enter__(self) -> "TraceStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def file_size_bytes(self) -> int:
        """On-disk size of the database, sidecars included (0 for ``:memory:``).

        WAL mode keeps recent transactions in ``-wal`` (plus the ``-shm``
        index) until a checkpoint folds them into the main file, so the
        main file alone understates real disk usage on a live store — the
        sum over all three is what the E18/E19 footprint numbers report.
        """
        if self.path == ":memory:":
            return 0
        total = 0
        for suffix in ("", "-wal", "-shm"):
            sidecar = Path(self.path + suffix)
            if sidecar.exists():
                total += sidecar.stat().st_size
        return total

    # ------------------------------------------------------------------
    # Run manifest / resume contract
    # ------------------------------------------------------------------
    def _meta(self) -> dict[str, str]:
        rows = self.connection.execute("SELECT key, value FROM meta").fetchall()
        return dict(rows)

    def begin_run(self, manifest: RunManifest, resume: bool = False) -> frozenset[tuple[int, int]]:
        """Record or validate the run identity; return the committed pairs.

        First use of a store records ``manifest`` and returns an empty set.
        On reopen the manifest must match what was recorded —
        :class:`~repro.errors.ResumeMismatchError` names every differing
        field otherwise — and, when commits already exist, ``resume=True``
        must be passed explicitly so a forgotten old store is never silently
        extended (:class:`~repro.errors.StoreError`).

        Returns
        -------
        frozenset of ``(shard, round)``
            The durably committed pairs a resumed run may skip.
        """
        recorded = RunManifest.from_meta(self._meta())
        if recorded is None:
            with self.connection:
                self.connection.executemany(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    list(manifest.as_meta().items()),
                )
            return frozenset()
        manifest.check_against(recorded, self.path)
        committed = self.committed()
        if committed and not resume:
            raise StoreError(
                f"trace store {self.path!r} already holds {len(committed)} "
                "committed (shard, round) pairs from a matching run; pass "
                "resume=True to continue it, or choose a fresh store path"
            )
        return committed

    def manifest(self) -> RunManifest | None:
        """The recorded run manifest, if any."""
        return RunManifest.from_meta(self._meta())

    # ------------------------------------------------------------------
    # Transactional commits
    # ------------------------------------------------------------------
    def commit_shard(
        self, shard: int, users, times, batch: "ReleaseBatch", true_cells=None
    ) -> None:
        """Durably commit one shard's releases in a single transaction.

        Parameters
        ----------
        shard:
            The shard index in the run's :class:`~repro.engine.sharding.ShardPlan`.
        users / times:
            One user id / timestep per batch row (any order; rows are keyed
            ``(user, time)`` so the on-disk layout is order-independent).
        batch:
            The shard's releases.  ``batch.cells`` must already hold the
            *snapped* server-side cells (the pipeline stores the server
            view, exactly what the in-memory ``released_db`` records).
        true_cells:
            Optional ground-truth cell per row.  When given, the commit
            additionally maintains the accelerator's true-side summary
            rows (aggregate occupancy and flows only — per-row ground truth
            is still never persisted).  A store must be written
            consistently: mixing commits with and without ``true_cells``
            raises :class:`~repro.errors.StoreError`.

        The release rows, one ``(shard, round)`` mark per distinct
        timestep, *and* the accelerator summary increments
        (:mod:`repro.store.accelerator`) are written in the same
        transaction — either the whole shard becomes durable or none of it
        does, and the summaries can never be torn relative to the marks.

        Re-committing a shard whose ``(shard, round)`` marks are all
        already durable is an idempotent no-op (the summaries merge by
        addition, so replaying the rows would double-count them); a commit
        overlapping only *some* of its marks is a :class:`StoreError`.
        """
        users = np.asarray(users, dtype=np.int64)
        times = np.asarray(times, dtype=np.int64)
        cells = np.asarray(batch.cells, dtype=np.int64)
        rounds, counts = np.unique(times, return_counts=True)
        existing_rounds = {
            int(time)
            for (time,) in self.connection.execute(
                "SELECT round FROM shard_commits WHERE shard = ?", (int(shard),)
            ).fetchall()
        }
        incoming_rounds = set(rounds.tolist())
        if incoming_rounds & existing_rounds:
            if incoming_rounds <= existing_rounds:
                return  # the whole shard is already durable
            raise StoreError(
                f"shard {shard} commit overlaps rounds "
                f"{sorted(incoming_rounds & existing_rounds)} already marked "
                "durable; a shard's rounds must commit together exactly once"
            )
        maintains_true = self.maintains_true_summaries()
        if maintains_true is not None and maintains_true != (true_cells is not None):
            held = "maintains" if maintains_true else "does not maintain"
            raise StoreError(
                f"trace store {self.path!r} {held} true-side accelerator "
                "summaries; every commit must pass true_cells consistently"
            )
        prior_users: set[int] = set()
        if len(users):
            prior_users = {
                int(user)
                for (user,) in self.connection.execute(
                    "SELECT user FROM user_summary WHERE user BETWEEN ? AND ?",
                    (int(users.min()), int(users.max())),
                ).fetchall()
            } & set(users.tolist())
        if prior_users and true_cells is not None:
            raise StoreError(
                f"commit of shard {shard} extends users {sorted(prior_users)[:5]}"
                "... whose rows are already stored: true-side summaries "
                "cannot be stitched across commits (ground-truth cells are "
                "never persisted per row) — commit whole traces per shard"
            )
        cell_counts = accelerator.cell_count_rows(accelerator.KIND_OBSERVED, times, cells)
        flows = accelerator.flow_rows(accelerator.KIND_OBSERVED, users, times, cells)
        flows += accelerator.boundary_flow_rows(
            self.connection, users, times, cells, prior_users
        )
        if true_cells is not None:
            true_cells = np.asarray(true_cells, dtype=np.int64)
            cell_counts += accelerator.cell_count_rows(
                accelerator.KIND_TRUE, times, true_cells
            )
            flows += accelerator.flow_rows(
                accelerator.KIND_TRUE, users, times, true_cells
            )
        summaries = accelerator.user_summary_rows(users, times)
        rows = zip(
            users.tolist(),
            times.tolist(),
            cells.tolist(),
            batch.points[:, 0].tolist(),
            batch.points[:, 1].tolist(),
            batch.exact.astype(np.int64).tolist(),
            batch.epsilons.tolist(),
        )
        marks = zip([int(shard)] * len(rounds), rounds.tolist(), counts.tolist())
        try:
            with self.connection:
                self.connection.executemany(
                    "INSERT OR REPLACE INTO releases "
                    "(user, time, cell, x, y, exact, epsilon) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    rows,
                )
                self.connection.executemany(
                    "INSERT OR REPLACE INTO shard_commits (shard, round, n_rows) "
                    "VALUES (?, ?, ?)",
                    marks,
                )
                accelerator.apply_deltas(self.connection, cell_counts, flows, summaries)
                if maintains_true is None:
                    self.connection.execute(
                        "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                        ("accelerator_true", "1" if true_cells is not None else "0"),
                    )
        except sqlite3.Error as exc:
            raise StoreError(
                f"commit of shard {shard} ({len(users)} rows) failed: {exc}"
            ) from exc

    def maintains_true_summaries(self) -> "bool | None":
        """Whether commits maintain true-side summaries (None before any)."""
        recorded = self._meta().get("accelerator_true")
        return None if recorded is None else recorded == "1"

    def committed(self) -> frozenset[tuple[int, int]]:
        """Every durably committed ``(shard, round)`` pair."""
        rows = self.connection.execute("SELECT shard, round FROM shard_commits").fetchall()
        return frozenset((int(shard), int(time)) for shard, time in rows)

    # ------------------------------------------------------------------
    # Reads (streaming where it matters)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        (count,) = self.connection.execute("SELECT COUNT(*) FROM releases").fetchone()
        return int(count)

    def users(self) -> frozenset[int]:
        """Every user with stored rows, served from ``user_summary``.

        One row per user is maintained at commit time, so this is O(users)
        against a table of per-user bounds instead of the O(rows)
        ``SELECT DISTINCT`` scan over ``releases`` it used to be.
        """
        rows = self.connection.execute("SELECT user FROM user_summary").fetchall()
        return frozenset(int(user) for (user,) in rows)

    def times(self) -> list[int]:
        """Every stored timestep, served from the commit marks.

        ``shard_commits`` holds one mark per ``(shard, round)``, written in
        the same transaction as the rows, so the distinct rounds there are
        exactly the distinct times in ``releases`` — at O(marks) cost
        instead of a full-table ``SELECT DISTINCT`` scan.
        """
        rows = self.connection.execute(
            "SELECT DISTINCT round FROM shard_commits ORDER BY round"
        ).fetchall()
        return [int(time) for (time,) in rows]

    def location(self, user: int, time: int) -> int | None:
        row = self.connection.execute(
            "SELECT cell FROM releases WHERE user = ? AND time = ?", (int(user), int(time))
        ).fetchone()
        return None if row is None else int(row[0])

    def at_time(self, time: int) -> dict[int, int]:
        rows = self.connection.execute(
            "SELECT user, cell FROM releases WHERE time = ?", (int(time),)
        ).fetchall()
        return {int(user): int(cell) for user, cell in rows}

    def user_history(self, user: int) -> "list[CheckIn]":
        """Time-ordered check-ins of one user (a single clustered range read)."""
        from repro.mobility.trajectory import CheckIn

        rows = self.connection.execute(
            "SELECT time, cell FROM releases WHERE user = ? ORDER BY time", (int(user),)
        ).fetchall()
        return [CheckIn(time=int(t), user=int(user), cell=int(c)) for t, c in rows]

    def checkins(self) -> "Iterator[CheckIn]":
        """Stream every check-in in ``(user, time)`` order, out of core.

        Matches :meth:`TraceDB.checkins
        <repro.mobility.trajectory.TraceDB.checkins>` exactly (same order,
        same records), but holds only one fetch batch in memory at a time.
        """
        from repro.mobility.trajectory import CheckIn

        cursor = self.connection.execute(
            "SELECT user, time, cell FROM releases ORDER BY user, time"
        )
        while True:
            rows = cursor.fetchmany(_FETCH_BATCH)
            if not rows:
                return
            for user, time, cell in rows:
                yield CheckIn(time=int(time), user=int(user), cell=int(cell))

    def shard_rows(
        self, low_user: int, high_user: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Replay arrays for one shard's contiguous user range.

        Shard members are a contiguous block of the plan's sorted user list,
        so ``user BETWEEN low AND high`` retrieves exactly that shard's rows.
        Returned as ``(users, times, cells, epsilons)`` ordered by ``(time,
        user)`` — the commit order of :meth:`Server.ingest_shard
        <repro.server.pipeline.Server.ingest_shard>`, which is what makes a
        replayed shard's server state identical to a freshly committed one.
        """
        rows = self.connection.execute(
            "SELECT user, time, cell, epsilon FROM releases "
            "WHERE user BETWEEN ? AND ? ORDER BY time, user",
            (int(low_user), int(high_user)),
        ).fetchall()
        if not rows:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy(), np.empty(0, dtype=float)
        users, times, cells, epsilons = zip(*rows)
        return (
            np.asarray(users, dtype=np.int64),
            np.asarray(times, dtype=np.int64),
            np.asarray(cells, dtype=np.int64),
            np.asarray(epsilons, dtype=float),
        )

    def shard_release_rows(
        self, low_user: int, high_user: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`shard_rows` plus the released points and exact flags.

        ``(users, times, cells, points, exact, epsilons)`` in the same
        ``(time, user)`` order — everything a live-metric replay needs to
        re-derive a shard's delta partials bit-identically (SQLite REALs
        round-trip float64 exactly; only the ground-truth cells are absent,
        because the store deliberately never persists them).
        """
        rows = self.connection.execute(
            "SELECT user, time, cell, x, y, exact, epsilon FROM releases "
            "WHERE user BETWEEN ? AND ? ORDER BY time, user",
            (int(low_user), int(high_user)),
        ).fetchall()
        if not rows:
            empty = np.empty(0, dtype=np.int64)
            return (
                empty,
                empty.copy(),
                empty.copy(),
                np.empty((0, 2), dtype=float),
                np.empty(0, dtype=bool),
                np.empty(0, dtype=float),
            )
        users, times, cells, xs, ys, exact, epsilons = zip(*rows)
        return (
            np.asarray(users, dtype=np.int64),
            np.asarray(times, dtype=np.int64),
            np.asarray(cells, dtype=np.int64),
            np.column_stack((np.asarray(xs, dtype=float), np.asarray(ys, dtype=float))),
            np.asarray(exact, dtype=bool),
            np.asarray(epsilons, dtype=float),
        )

    def load_tracedb(self) -> "TraceDB":
        """Materialise the whole store as an in-memory ``TraceDB``.

        Convenience for post-hoc analysis of small runs; population-scale
        stores should use :class:`~repro.store.outofcore.StoredTraceDB`
        instead of pulling everything into RAM.
        """
        from repro.mobility.trajectory import TraceDB

        db = TraceDB()
        cursor = self.connection.execute("SELECT user, time, cell FROM releases")
        while True:
            rows = cursor.fetchmany(_FETCH_BATCH)
            if not rows:
                return db
            users, times, cells = zip(*rows)
            db.record_many(users, times, cells)

    # ------------------------------------------------------------------
    # Client-side rolling windows (LocalLocationDB spill space)
    # ------------------------------------------------------------------
    def window_newest(self, user: int) -> int | None:
        row = self.connection.execute(
            "SELECT MAX(time) FROM local_windows WHERE user = ?", (int(user),)
        ).fetchone()
        return None if row[0] is None else int(row[0])

    def window_record(self, user: int, time: int, cell: int, horizon: int) -> None:
        """Insert one window entry and prune expired ones, atomically."""
        with self.connection:
            self.connection.execute(
                "INSERT OR REPLACE INTO local_windows (user, time, cell) VALUES (?, ?, ?)",
                (int(user), int(time), int(cell)),
            )
            self.connection.execute(
                "DELETE FROM local_windows WHERE user = ? AND time < ?",
                (int(user), int(horizon)),
            )

    def window_location(self, user: int, time: int) -> int | None:
        row = self.connection.execute(
            "SELECT cell FROM local_windows WHERE user = ? AND time = ?",
            (int(user), int(time)),
        ).fetchone()
        return None if row is None else int(row[0])

    def window_history(self, user: int) -> list[tuple[int, int]]:
        rows = self.connection.execute(
            "SELECT time, cell FROM local_windows WHERE user = ? ORDER BY time",
            (int(user),),
        ).fetchall()
        return [(int(t), int(c)) for t, c in rows]

    def window_count(self, user: int) -> int:
        (count,) = self.connection.execute(
            "SELECT COUNT(*) FROM local_windows WHERE user = ?", (int(user),)
        ).fetchone()
        return int(count)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"TraceStore(path={self.path!r}, releases={len(self)}, commits={len(self.committed())})"


def open_store(store: "TraceStore | str | os.PathLike[str] | None") -> tuple["TraceStore | None", bool]:
    """Coerce a store argument: live instances pass through, paths open.

    Returns ``(store, owned)`` where ``owned`` is True when this call opened
    the connection (and the caller is therefore responsible for closing it).
    """
    if store is None:
        return None, False
    if isinstance(store, TraceStore):
        return store, False
    return TraceStore(store), True
