"""Naive full-scan references for every :class:`~repro.query.QueryEngine` answer.

Each ``full_scan_*`` function reads the *entire* ``releases`` table (a
deliberate O(rows) pass with no WHERE clause), filters and aggregates in
plain Python/NumPy, and produces the value the accelerator-served query
must equal **bitwise**.  They are the correctness oracle of the query
surface — the E22 benchmark also times them as the cost a reader without
the accelerator would pay — so they must stay naive: no index use, no
summary tables.

Ground truth is never persisted per row, so the true-side references take a
``true_resolver(users, times) -> cells`` callable (the same contract as the
resume replay path), typically built from the run's true
:class:`~repro.mobility.trajectory.TraceDB`.

The references answer over *whatever the store currently holds* — they do
not apply the coverage-frontier refusal.  That asymmetry is the point of
the Hypothesis interleaving property: at any commit prefix, a query either
refuses or equals the full scan of that prefix.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.epidemic.analysis import pair_events
from repro.epidemic.monitor import LocationMonitor
from repro.errors import DataError, StoreError, ValidationError
from repro.geo.grid import GridWorld
from repro.query.api import Window, WindowContactRate

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.mobility.trajectory import CheckIn
    from repro.store.store import TraceStore

__all__ = [
    "full_scan_contact_rate",
    "full_scan_epsilon_spent",
    "full_scan_flow_matrix",
    "full_scan_times",
    "full_scan_top_cells",
    "full_scan_trajectory",
    "full_scan_users",
]

TrueResolver = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _scan(store: "TraceStore") -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One full pass over ``releases``: ``(users, times, cells, epsilons)``."""
    rows = store.connection.execute(
        "SELECT user, time, cell, epsilon FROM releases"
    ).fetchall()
    if not rows:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy(), np.empty(0, dtype=float)
    users, times, cells, epsilons = zip(*rows)
    return (
        np.asarray(users, dtype=np.int64),
        np.asarray(times, dtype=np.int64),
        np.asarray(cells, dtype=np.int64),
        np.asarray(epsilons, dtype=float),
    )


def _resolve(
    kind: str,
    users: np.ndarray,
    times: np.ndarray,
    cells: np.ndarray,
    true_resolver: TrueResolver | None,
) -> np.ndarray:
    if kind == "observed":
        return cells
    if kind == "true":
        if true_resolver is None:
            raise StoreError(
                "true-side reference needs a true_resolver (ground-truth "
                "cells are never persisted per row)"
            )
        return np.asarray(true_resolver(users, times), dtype=np.int64)
    raise ValidationError(f"kind must be 'observed' or 'true', got {kind!r}")


def full_scan_contact_rate(
    store: "TraceStore",
    window: Window,
    kind: str = "observed",
    true_resolver: TrueResolver | None = None,
    p_transmit: float = 0.3,
    gamma: float = 0.1,
) -> WindowContactRate:
    """The E2 window estimate from a full pass: occupancy -> pair events."""
    users, times, cells, _ = _scan(store)
    cells = _resolve(kind, users, times, cells, true_resolver)
    occupancy: Counter = Counter()
    observations = 0
    for time, cell in zip(times.tolist(), cells.tolist()):
        if window.start <= time <= window.end:
            occupancy[(time, cell)] += 1
            observations += 1
    if observations == 0:
        raise DataError("window contains no observations")
    rate = 2.0 * pair_events(occupancy) / observations
    return WindowContactRate(
        window=window,
        kind=kind,
        contact_rate=rate,
        r0=float(p_transmit) * rate / float(gamma),
        pair_events=pair_events(occupancy),
        observations=observations,
    )


def full_scan_flow_matrix(
    store: "TraceStore",
    window: Window,
    world: GridWorld,
    kind: str = "observed",
    true_resolver: TrueResolver | None = None,
    block_rows: int = 4,
    block_cols: int = 4,
) -> Counter:
    """Window flow matrix from a full pass: sort, pair steps, count areas."""
    users, times, cells, _ = _scan(store)
    cells = _resolve(kind, users, times, cells, true_resolver)
    if len(users) < 2:
        return Counter()
    order = np.lexsort((times, users))
    u, t, c = users[order], times[order], cells[order]
    step = (u[1:] == u[:-1]) & (t[1:] == t[:-1] + 1)
    in_window = step & (t[1:] >= window.start) & (t[1:] <= window.end)
    monitor = LocationMonitor(world, block_rows, block_cols)
    return monitor.flows_between(c[:-1][in_window], c[1:][in_window])


def full_scan_top_cells(
    store: "TraceStore",
    window: Window,
    k: int,
    kind: str = "observed",
    true_resolver: TrueResolver | None = None,
) -> list[tuple[int, int]]:
    """Top-k hot cells from a full pass, same ``(-count, cell)`` tie-break."""
    users, times, cells, _ = _scan(store)
    cells = _resolve(kind, users, times, cells, true_resolver)
    counts: Counter = Counter()
    for time, cell in zip(times.tolist(), cells.tolist()):
        if window.start <= time <= window.end:
            counts[cell] += 1
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return [(int(cell), int(count)) for cell, count in ranked[: int(k)]]


def full_scan_epsilon_spent(store: "TraceStore", user: int, window: Window) -> float:
    """One user's window spend from a full pass, time-ascending accumulation.

    The scalar float adds run in the user's time order from 0.0 — the exact
    accumulation the server ledger (and therefore the accelerator query's
    :class:`~repro.core.accounting.BudgetLedger` fold) performs, so the
    float is identical bit for bit, not merely close.
    """
    users, times, _, epsilons = _scan(store)
    user = int(user)
    charges = sorted(
        (int(time), float(epsilon))
        for row_user, time, epsilon in zip(users.tolist(), times.tolist(), epsilons.tolist())
        if row_user == user and window.start <= time <= window.end
    )
    total = 0.0
    for _, epsilon in charges:
        total += epsilon
    return total


def full_scan_trajectory(
    store: "TraceStore", user: int, window: Window | None = None
) -> "list[CheckIn]":
    """One user's window check-ins from a full pass, times ascending."""
    from repro.mobility.trajectory import CheckIn

    users, times, cells, _ = _scan(store)
    user = int(user)
    picked = sorted(
        (int(time), int(cell))
        for row_user, time, cell in zip(users.tolist(), times.tolist(), cells.tolist())
        if row_user == user
        and (window is None or window.start <= time <= window.end)
    )
    return [CheckIn(time=time, user=user, cell=cell) for time, cell in picked]


def full_scan_users(store: "TraceStore") -> frozenset[int]:
    """The distinct stored users via the old full ``SELECT DISTINCT`` scan."""
    rows = store.connection.execute("SELECT DISTINCT user FROM releases").fetchall()
    return frozenset(int(user) for (user,) in rows)


def full_scan_times(store: "TraceStore") -> list[int]:
    """The distinct stored times via the old full ``SELECT DISTINCT`` scan."""
    rows = store.connection.execute(
        "SELECT DISTINCT time FROM releases ORDER BY time"
    ).fetchall()
    return [int(time) for (time,) in rows]
