"""Windowed analytics over the durable trace store (the query surface).

:class:`~repro.query.api.QueryEngine` answers sliding/tumbling time-window
aggregates — contact rate, flow matrices, top-k hot cells, per-user epsilon
spend, trajectory range scans — from the accelerator summary tables the
store maintains inside every shard-commit transaction
(:mod:`repro.store.accelerator`), never from a full pass over ``releases``.
:mod:`repro.query.reference` holds the naive full-scan implementations every
answer is bit-checked against.  See ``docs/queries.md``.
"""

from repro.query.api import (
    QueryEngine,
    Window,
    WindowContactRate,
    sliding_windows,
    tumbling_windows,
)

__all__ = [
    "QueryEngine",
    "Window",
    "WindowContactRate",
    "sliding_windows",
    "tumbling_windows",
]
