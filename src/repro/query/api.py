"""The windowed query API over :class:`~repro.store.TraceStore`.

Every query here is answered from the accelerator layout
(:mod:`repro.store.accelerator`) — per-round summary tables and the
``releases`` covering indexes — in time proportional to the *answer*, never
to the stored population.  Each is bit-identical to its naive full-scan
counterpart in :mod:`repro.query.reference`:

* integer components (occupancy counts, flow counts, pair events) merge by
  addition, which no aggregation order can perturb;
* the only float arithmetic (contact rate, R0, epsilon accumulation) is the
  *same expression over the same integers* — or, for epsilon spend, the
  same scalar accumulation order (time-ascending per user) the server's
  :class:`~repro.core.accounting.BudgetLedger` uses.

Consistency follows the live-metrics coverage-frontier rule: a window is
only answered once every shard expected at or before its last round has
committed — anything less raises
:class:`~repro.errors.SnapshotUnavailableError` naming the missing shards,
because whole-shard transactions make a *committed* shard trustworthy but
say nothing about its absent peers.  Pass ``expected=``
(:func:`~repro.server.live_metrics.expected_coverage`) for the exact
schedule; without it the engine derives a conservative one from the commit
marks and the run manifest.
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, AbstractSet, Mapping

from repro.core.accounting import BudgetLedger
from repro.errors import DataError, SnapshotUnavailableError, StoreError, ValidationError
from repro.geo.grid import GridWorld
from repro.store.accelerator import KIND_OBSERVED, KIND_TRUE
from repro.store.store import TraceStore, open_store

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.mobility.trajectory import CheckIn

__all__ = [
    "QueryEngine",
    "Window",
    "WindowContactRate",
    "sliding_windows",
    "tumbling_windows",
]

_KINDS = {"observed": KIND_OBSERVED, "true": KIND_TRUE}


@dataclass(frozen=True, order=True)
class Window:
    """A closed time interval ``[start, end]`` of release rounds.

    Both endpoints are inclusive, matching the cumulative round semantics
    of the live metric views (``metrics_at(round=r)`` covers rows with
    ``time <= r``).  Flow queries count a ``(t-1, t)`` transition when its
    *destination* round ``t`` lies inside the window, so a window starting
    at ``s`` includes arrivals from round ``s - 1``.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if int(self.end) < int(self.start):
            raise ValidationError(f"window end {self.end} precedes start {self.start}")
        object.__setattr__(self, "start", int(self.start))
        object.__setattr__(self, "end", int(self.end))

    def __len__(self) -> int:
        return self.end - self.start + 1

    def __contains__(self, time: int) -> bool:
        return self.start <= int(time) <= self.end


def tumbling_windows(start: int, end: int, width: int) -> list[Window]:
    """Non-overlapping ``width``-round windows tiling ``[start, end]``.

    The last window is clipped at ``end`` when the span is not an exact
    multiple of ``width``.
    """
    if width < 1:
        raise ValidationError(f"window width must be >= 1, got {width}")
    return [
        Window(low, min(low + width - 1, int(end)))
        for low in range(int(start), int(end) + 1, int(width))
    ]


def sliding_windows(start: int, end: int, width: int, step: int = 1) -> list[Window]:
    """``width``-round windows advancing by ``step``, clipped at ``end``."""
    if width < 1 or step < 1:
        raise ValidationError(f"window width/step must be >= 1, got {width}/{step}")
    return [
        Window(low, min(low + width - 1, int(end)))
        for low in range(int(start), int(end) + 1, int(step))
    ]


@dataclass(frozen=True)
class WindowContactRate:
    """Contact-rate estimate over one window (the E2 arithmetic).

    ``contact_rate = 2 * pair_events / observations`` and
    ``r0 = p_transmit * contact_rate / gamma`` — integers plus the same two
    float expressions the live views and batch estimators use, which is why
    accelerator and full-scan values agree bitwise.
    """

    window: Window
    kind: str
    contact_rate: float
    r0: float
    pair_events: int
    observations: int


class QueryEngine:
    """Windowed analytics over one trace store, accelerator-served.

    Parameters
    ----------
    store:
        A live :class:`~repro.store.TraceStore` or a path (opened, and then
        closed by :meth:`close` / the context manager).
    world:
        The run's :class:`~repro.geo.grid.GridWorld`, needed only by
        area-level flow queries.  Defaults to the geometry in the store's
        run manifest; a bare store with no manifest must pass it.
    expected:
        Optional ``shard -> rounds`` coverage schedule (the live-metrics
        :func:`~repro.server.live_metrics.expected_coverage` shape) gating
        every windowed answer.  Without it the engine derives a
        conservative schedule: every shard named by the run manifest (or
        seen in the commit marks) is expected at every round any shard has
        committed.
    p_transmit / gamma:
        The E2 R0 parameters applied by :meth:`contact_rate`.
    """

    def __init__(
        self,
        store: "TraceStore | str | os.PathLike[str]",
        world: GridWorld | None = None,
        expected: "Mapping[int, AbstractSet[int]] | None" = None,
        p_transmit: float = 0.3,
        gamma: float = 0.1,
    ) -> None:
        self.store, self._owned = open_store(store)
        if self.store is None:
            raise ValidationError("QueryEngine requires a store or a store path")
        self._world = world
        self._expected = (
            None
            if expected is None
            else {
                int(shard): frozenset(int(time) for time in rounds)
                for shard, rounds in expected.items()
                if rounds
            }
        )
        self.p_transmit = float(p_transmit)
        self.gamma = float(gamma)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the store if this engine opened it (idempotent)."""
        if self._owned and self.store is not None:
            self.store.close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def world(self) -> GridWorld:
        """The run's world, built lazily from the manifest when not given."""
        if self._world is None:
            manifest = self.store.manifest()
            if manifest is None:
                raise ValidationError(
                    "store has no run manifest; pass world= to QueryEngine "
                    "for area-level queries"
                )
            self._world = GridWorld(
                manifest.world_width, manifest.world_height, manifest.cell_size
            )
        return self._world

    # ------------------------------------------------------------------
    # Coverage (the live-metrics frontier rule)
    # ------------------------------------------------------------------
    def missing_shards(self, upto: int) -> list[int]:
        """Shards still owed a commit at any round ``<= upto`` (sorted)."""
        committed = self.store.committed()
        expected = self._expected
        if expected is None:
            rounds = frozenset(time for _, time in committed)
            manifest = self.store.manifest()
            if manifest is not None:
                shard_ids = range(manifest.n_shards)
            else:
                shard_ids = sorted({shard for shard, _ in committed})
            expected = {shard: rounds for shard in shard_ids}
        upto = int(upto)
        return sorted(
            {
                shard
                for shard, rounds in expected.items()
                for time in rounds
                if time <= upto and (shard, time) not in committed
            }
        )

    def _check_coverage(self, upto: int) -> None:
        missing = self.missing_shards(upto)
        if missing:
            raise SnapshotUnavailableError(
                f"window through round {upto} is not consistent yet: "
                f"waiting on shard commit(s) {missing}"
            )

    def _kind(self, kind: str) -> int:
        try:
            code = _KINDS[kind]
        except KeyError:
            raise ValidationError(
                f"kind must be one of {sorted(_KINDS)}, got {kind!r}"
            ) from None
        if code == KIND_TRUE and self.store.maintains_true_summaries() is not True:
            raise StoreError(
                f"trace store {self.store.path!r} holds no true-side "
                "accelerator summaries (its commits never passed true_cells)"
            )
        return code

    # ------------------------------------------------------------------
    # Windowed aggregates
    # ------------------------------------------------------------------
    def contact_rate(self, window: Window, kind: str = "observed") -> WindowContactRate:
        """E2 contact rate / R0 over one window, from per-round occupancy.

        One primary-key range read of ``round_cell_counts`` — O(distinct
        ``(time, cell)`` pairs in the window), independent of the stored
        population.  Raises :class:`~repro.errors.DataError` for a window
        with no observations (both sides of the bit-check agree on that).
        """
        code = self._kind(kind)
        self._check_coverage(window.end)
        rows = self.store.connection.execute(
            "SELECT n FROM round_cell_counts WHERE kind = ? AND time BETWEEN ? AND ?",
            (code, window.start, window.end),
        ).fetchall()
        observations = sum(count for (count,) in rows)
        if observations == 0:
            raise DataError("window contains no observations")
        pairs = sum(count * (count - 1) // 2 for (count,) in rows)
        rate = 2.0 * pairs / observations
        return WindowContactRate(
            window=window,
            kind=kind,
            contact_rate=rate,
            r0=self.p_transmit * rate / self.gamma,
            pair_events=pairs,
            observations=observations,
        )

    def flow_matrix(
        self,
        window: Window,
        kind: str = "observed",
        block_rows: int = 4,
        block_cols: int = 4,
    ) -> Counter:
        """Inter-area flow counts whose destination round lies in the window.

        Served from the cell-level ``round_flows`` table: a primary-key
        range read, then an integer regroup of cell pairs into the
        requested area tiling — any ``(block_rows, block_cols)`` is exact,
        because the cell-level counts are the finest grain.
        """
        code = self._kind(kind)
        self._check_coverage(window.end)
        # Regrouping cells into areas inside SQLite keeps the Python side at
        # O(area pairs): the expressions below are the same integer
        # arithmetic as GridWorld.area_of — (cell//width//block_rows) *
        # ceil(width/block_cols) + (cell%width)//block_cols — on
        # non-negative ints, so the Counter equals the full scan bitwise
        # without materialising one Python tuple per cell pair.
        world = self.world
        world.n_areas(block_rows, block_cols)  # validates the tiling args
        blocks_per_row = -(-world.width // int(block_cols))
        area_of = (
            "({cell} / {width} / {rows}) * {per_row} + ({cell} % {width}) / {cols}"
        )
        src_area = area_of.format(
            cell="src", width=world.width, rows=int(block_rows),
            per_row=blocks_per_row, cols=int(block_cols),
        )
        dst_area = src_area.replace("src", "dst")
        rows = self.store.connection.execute(
            f"SELECT {src_area}, {dst_area}, SUM(n) FROM round_flows "
            "WHERE kind = ? AND time BETWEEN ? AND ? GROUP BY 1, 2",
            (code, window.start, window.end),
        ).fetchall()
        return Counter({(int(src), int(dst)): int(count) for src, dst, count in rows})

    def top_cells(self, window: Window, k: int, kind: str = "observed") -> list[tuple[int, int]]:
        """The ``k`` busiest cells over the window as ``(cell, count)`` pairs.

        Occupancy is summed per cell from ``round_cell_counts`` (one
        primary-key range read + GROUP BY); ties break deterministically on
        the lower cell id, so accelerator and full-scan rankings agree
        exactly, not just up to tie shuffling.
        """
        if int(k) < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        code = self._kind(kind)
        self._check_coverage(window.end)
        rows = self.store.connection.execute(
            "SELECT cell, SUM(n) FROM round_cell_counts "
            "WHERE kind = ? AND time BETWEEN ? AND ? GROUP BY cell",
            (code, window.start, window.end),
        ).fetchall()
        ranked = sorted(rows, key=lambda row: (-row[1], row[0]))
        return [(int(cell), int(count)) for cell, count in ranked[: int(k)]]

    def epsilon_spent(self, user: int, window: Window) -> float:
        """One user's epsilon expenditure over the window, ledger-exact.

        A clustered primary-key range read of that user's rows (times
        ascending), folded through a
        :class:`~repro.core.accounting.BudgetLedger` — the same scalar
        accumulation order the live server's ledger charges in, so the
        value is bit-identical to both the full-scan reference and the
        server's own in-window total.
        """
        self._check_coverage(window.end)
        rows = self.store.connection.execute(
            "SELECT time, epsilon FROM releases "
            "WHERE user = ? AND time BETWEEN ? AND ? ORDER BY time",
            (int(user), window.start, window.end),
        ).fetchall()
        ledger = BudgetLedger(record_entries=False)
        ledger.charge_many(
            [int(user)] * len(rows),
            [time for time, _ in rows],
            [epsilon for _, epsilon in rows],
            purpose="query",
        )
        return ledger.spent(int(user))

    def trajectory(self, user: int, window: Window | None = None) -> "list[CheckIn]":
        """One user's released check-ins over the window, times ascending.

        ``releases`` is clustered on ``(user, time)``, so this is one
        contiguous primary-key range scan (the whole history when
        ``window`` is ``None``).
        """
        from repro.mobility.trajectory import CheckIn

        if window is None:
            bounds = self.store.connection.execute(
                "SELECT min_time, max_time FROM user_summary WHERE user = ?",
                (int(user),),
            ).fetchone()
            if bounds is None:
                return []
            window = Window(int(bounds[0]), int(bounds[1]))
        self._check_coverage(window.end)
        rows = self.store.connection.execute(
            "SELECT time, cell FROM releases "
            "WHERE user = ? AND time BETWEEN ? AND ? ORDER BY time",
            (int(user), window.start, window.end),
        ).fetchall()
        return [CheckIn(time=int(time), user=int(user), cell=int(cell)) for time, cell in rows]

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Store-level shape at summary-table cost (no ``releases`` pass)."""
        connection = self.store.connection
        (n_users, n_rows) = connection.execute(
            "SELECT COUNT(*), COALESCE(SUM(n_rows), 0) FROM user_summary"
        ).fetchone()
        times = self.store.times()
        return {
            "path": self.store.path,
            "rows": int(n_rows),
            "users": int(n_users),
            "rounds": len(times),
            "first_round": times[0] if times else None,
            "last_round": times[-1] if times else None,
            "committed_shards": len({shard for shard, _ in self.store.committed()}),
            "true_summaries": bool(self.store.maintains_true_summaries()),
        }

    def __repr__(self) -> str:
        return f"QueryEngine(store={self.store.path!r})"
