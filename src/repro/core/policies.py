"""Builders for every policy graph appearing in the paper.

* ``grid_policy``          — **G1** (Fig. 2 left): each location connected to
  its closest eight map neighbors; ``{eps, G1}``-privacy implies
  eps-Geo-Indistinguishability (Theorem 2.1).
* ``complete_policy`` / ``location_set_policy`` — **G2** (Fig. 2 right): a
  complete graph over a (delta-)location set; implies delta-Location Set
  Privacy (Theorem 2.2).
* ``area_policy``          — **Ga / Gb** (Fig. 4): indistinguishability inside
  each coarse-grained area, none across areas.  Ga uses large blocks
  (location monitoring), Gb smaller blocks (epidemic analysis).
* ``contact_tracing_policy`` — **Gc** (Fig. 4): start from a base policy and
  isolate every infected location, making it disclosable.
* ``random_policy``        — the demo's "Random Policy Graph" generator
  (Fig. 5: *Size* and *Density* knobs).
* ``full_disclosure_policy`` — the diagnosed-patient policy: every node
  isolated, i.e. true locations may be released (Sec. 1: "allowing to
  disclose a user's true locations ... if she is a diagnosed patient").
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from repro.core.policy_graph import PolicyGraph
from repro.errors import PolicyError
from repro.geo.grid import GridWorld
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_integer, check_probability

__all__ = [
    "grid_policy",
    "complete_policy",
    "location_set_policy",
    "area_policy",
    "contact_tracing_policy",
    "random_policy",
    "full_disclosure_policy",
]


def grid_policy(world: GridWorld, connectivity: int = 8, name: str = "G1") -> PolicyGraph:
    """G1: every cell adjacent to its closest ``connectivity`` map neighbors."""
    edges = []
    for cell in world:
        for nbr in world.neighbors(cell, connectivity=connectivity):
            if cell < nbr:
                edges.append((cell, nbr))
    return PolicyGraph(world, edges, name=name)


def complete_policy(nodes: Iterable[int], name: str = "G2") -> PolicyGraph:
    """G2: a complete graph — pairwise indistinguishability for all ``nodes``."""
    node_list = sorted({int(n) for n in nodes})
    if not node_list:
        raise PolicyError("complete_policy needs at least one node")
    return PolicyGraph(node_list, combinations(node_list, 2), name=name)


def location_set_policy(
    world: GridWorld,
    location_set: Iterable[int],
    include_rest: bool = True,
    name: str = "G2",
) -> PolicyGraph:
    """Complete graph over a delta-location set, embedded in the full world.

    With ``include_rest=True`` the remaining cells are kept as isolated nodes
    so the policy is defined over the whole secret domain (they carry no
    constraint; the adversary is assumed to already know the user is inside
    the location set, exactly as in delta-Location Set Privacy [19]).
    """
    inside = sorted({world.check_cell(c) for c in location_set})
    if not inside:
        raise PolicyError("location set must not be empty")
    nodes = list(world) if include_rest else inside
    return PolicyGraph(nodes, combinations(inside, 2), name=name)


def area_policy(
    world: GridWorld,
    block_rows: int,
    block_cols: int,
    mode: str = "clique",
    name: str | None = None,
) -> PolicyGraph:
    """Ga / Gb: indistinguishability inside each coarse area, none across.

    Parameters
    ----------
    block_rows, block_cols:
        Area size in cells.  Large blocks give the paper's Ga (location
        monitoring between "cities"), small blocks give Gb (fine-grained
        epidemic analysis).
    mode:
        ``"clique"`` places an edge between every pair inside an area (each
        in-area pair is a 1-neighbor); ``"grid"`` keeps only map adjacency
        restricted to the area (in-area pairs protected at ``eps * d_G``).
    """
    if mode not in ("clique", "grid"):
        raise PolicyError(f"mode must be 'clique' or 'grid', got {mode!r}")
    check_integer("block_rows", block_rows, minimum=1)
    check_integer("block_cols", block_cols, minimum=1)
    edges: list[tuple[int, int]] = []
    for cells in world.areas(block_rows, block_cols).values():
        if mode == "clique":
            edges.extend(combinations(sorted(cells), 2))
        else:
            members = set(cells)
            for cell in cells:
                for nbr in world.neighbors(cell, connectivity=8):
                    if cell < nbr and nbr in members:
                        edges.append((cell, nbr))
    label = name or f"area[{block_rows}x{block_cols}]"
    return PolicyGraph(world, edges, name=label)


def contact_tracing_policy(
    base: PolicyGraph,
    infected_locations: Iterable[int],
    name: str = "Gc",
) -> PolicyGraph:
    """Gc: the base policy with every infected location made disclosable.

    Implements the paper's tracing policy — "ensuring indistinguishability
    only if the user is not in an infected area, but allowing disclose true
    location if the user accesses an infected location" — by deleting every
    edge incident to an infected location, which isolates it (Lemma 2.1's
    disclosable case).
    """
    infected = {int(c) for c in infected_locations}
    unknown = infected - set(base.nodes)
    if unknown:
        raise PolicyError(f"infected locations {sorted(unknown)} are not in the base policy")
    return base.without_node_edges(infected, name=name)


def random_policy(
    world: GridWorld,
    size: int,
    density: float,
    rng=None,
    include_rest: bool = True,
    name: str | None = None,
) -> PolicyGraph:
    """The demo's random policy graph: ``size`` nodes, edge prob ``density``.

    Mirrors the "Random Policy Graph / Size / Density" panel of Fig. 5: a
    uniform sample of ``size`` cells receives each of its possible edges
    independently with probability ``density`` (an Erdos-Renyi graph over the
    sampled cells).  Remaining cells stay isolated when ``include_rest``.
    """
    check_integer("size", size, minimum=1)
    if size > world.n_cells:
        raise PolicyError(f"size {size} exceeds the {world.n_cells}-cell world")
    check_probability("density", density)
    generator = ensure_rng(rng)
    chosen = sorted(generator.choice(world.n_cells, size=size, replace=False).tolist())
    pairs = list(combinations(chosen, 2))
    if pairs:
        mask = generator.random(len(pairs)) < density
        edges = [pair for pair, keep in zip(pairs, mask) if keep]
    else:
        edges = []
    nodes = list(world) if include_rest else chosen
    label = name or f"random[size={size},density={density:g}]"
    return PolicyGraph(nodes, edges, name=label)


def full_disclosure_policy(nodes: Iterable[int], name: str = "disclose-all") -> PolicyGraph:
    """The diagnosed-patient policy: every node isolated (exact release allowed)."""
    node_list = sorted({int(n) for n in nodes})
    if not node_list:
        raise PolicyError("full_disclosure_policy needs at least one node")
    return PolicyGraph(node_list, (), name=name)
