"""Location policy graphs (paper Definitions 2.1 - 2.3).

A :class:`PolicyGraph` is an undirected graph ``G = (S, E)`` whose nodes are
location identifiers (grid-world cell ids) and whose edges are required
indistinguishability constraints: a mechanism satisfying
``{epsilon, G}``-location privacy must make every pair of 1-neighbors
epsilon-indistinguishable (Definition 2.4), which by Lemma 2.1 extends to
``epsilon * d_G(s, s')`` for any connected pair and imposes *no* constraint
across components.  A node with no edges is **disclosable**: the policy
permits releasing it exactly (the contact-tracing policy Gc relies on this).

Instances are immutable after construction; builders that derive new policies
(restriction, edge additions) return new graphs.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, Mapping

from repro.core import graph_ops
from repro.errors import PolicyError

__all__ = ["PolicyGraph", "INFINITY"]

#: Sentinel distance for disconnected node pairs (``d_G = infinity``).
INFINITY = float("inf")


class PolicyGraph:
    """An immutable undirected location policy graph.

    Parameters
    ----------
    nodes:
        All locations the policy speaks about (the secret domain ``S``).
        Nodes may be isolated, which marks them as disclosable.
    edges:
        Iterable of ``(u, v)`` indistinguishability requirements.  Self loops
        are rejected; both endpoints must appear in ``nodes``.
    name:
        Optional human-readable label (``"G1"``, ``"Ga"``, ...) used in
        experiment tables.
    """

    def __init__(
        self,
        nodes: Iterable[int],
        edges: Iterable[tuple[int, int]] = (),
        name: str = "policy",
    ) -> None:
        adjacency: dict[int, set[int]] = {int(node): set() for node in nodes}
        if not adjacency:
            raise PolicyError("a policy graph needs at least one node")
        for edge in edges:
            u, v = int(edge[0]), int(edge[1])
            if u == v:
                raise PolicyError(f"self loop on node {u} is not a valid policy edge")
            if u not in adjacency or v not in adjacency:
                raise PolicyError(f"edge ({u}, {v}) references a node outside the graph")
            adjacency[u].add(v)
            adjacency[v].add(u)
        self._adjacency = adjacency
        self.name = str(name)
        self._components: list[frozenset[int]] | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> frozenset[int]:
        """All locations in the policy (the secret domain ``S``)."""
        return frozenset(self._adjacency)

    @property
    def n_nodes(self) -> int:
        return len(self._adjacency)

    @property
    def n_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def __contains__(self, node: int) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return self.n_nodes

    def __iter__(self) -> Iterator[int]:
        return iter(self._adjacency)

    def __repr__(self) -> str:
        return (
            f"PolicyGraph(name={self.name!r}, n_nodes={self.n_nodes}, "
            f"n_edges={self.n_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolicyGraph):
            return NotImplemented
        return self._adjacency == other._adjacency

    def neighbors(self, node: int) -> frozenset[int]:
        """The 1-neighbors of ``node`` (the direct indistinguishability set)."""
        self._check_node(node)
        return frozenset(self._adjacency[node])

    def degree(self, node: int) -> int:
        self._check_node(node)
        return len(self._adjacency[node])

    def has_edge(self, u: int, v: int) -> bool:
        return u in self._adjacency and v in self._adjacency[u]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Each undirected edge once, as ``(u, v)`` with ``u < v``."""
        return graph_ops.edge_iter(self._adjacency)

    def adjacency(self) -> Mapping[int, frozenset[int]]:
        """Read-only view of the adjacency structure."""
        return {node: frozenset(nbrs) for node, nbrs in self._adjacency.items()}

    # ------------------------------------------------------------------
    # Definitions 2.2 / 2.3
    # ------------------------------------------------------------------
    def distance(self, u: int, v: int) -> float:
        """Policy-graph distance ``d_G`` (Def. 2.2); ``inf`` when disconnected."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            return 0.0
        dist = graph_ops.bfs_distances(self._adjacency, u)
        return float(dist.get(v, INFINITY))

    def distances_from(self, node: int) -> dict[int, int]:
        """Hop distances from ``node`` to its whole component."""
        self._check_node(node)
        return graph_ops.bfs_distances(self._adjacency, node)

    def k_neighbors(self, node: int, k: int) -> frozenset[int]:
        """``N^k(s)``: nodes within ``k`` hops of ``node``, inclusive (Def. 2.3)."""
        self._check_node(node)
        if k < 0:
            raise PolicyError(f"k must be >= 0, got {k}")
        return frozenset(graph_ops.bfs_limited(self._adjacency, node, k))

    def infinity_neighbors(self, node: int) -> frozenset[int]:
        """``N^inf(s)``: every node sharing a path with ``node`` (its component)."""
        self._check_node(node)
        return graph_ops.component_of(self._adjacency, node)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def components(self) -> list[frozenset[int]]:
        """Connected components (cached)."""
        if self._components is None:
            self._components = graph_ops.connected_components(self._adjacency)
        return self._components

    def component_of(self, node: int) -> frozenset[int]:
        self._check_node(node)
        for component in self.components():
            if node in component:
                return component
        raise PolicyError(f"node {node} missing from component index")  # pragma: no cover

    def is_disclosable(self, node: int) -> bool:
        """Whether the policy allows releasing ``node`` without perturbation.

        True exactly when the node has no indistinguishability requirement
        (degree zero) — Lemma 2.1's extreme case.
        """
        return self.degree(node) == 0

    def disclosable_nodes(self) -> frozenset[int]:
        """All nodes the policy allows to be released exactly."""
        return frozenset(n for n, nbrs in self._adjacency.items() if not nbrs)

    def density(self) -> float:
        """Edge density: ``|E| / C(|S|, 2)`` (0 for a single-node graph)."""
        if self.n_nodes < 2:
            return 0.0
        return self.n_edges / (self.n_nodes * (self.n_nodes - 1) / 2)

    def diameter(self) -> int:
        """Largest finite ``d_G`` over all pairs (ignores disconnection)."""
        return graph_ops.graph_diameter(self._adjacency)

    # ------------------------------------------------------------------
    # Derivation of new policies
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[int], name: str | None = None) -> "PolicyGraph":
        """Policy induced on ``nodes`` (unknown ids are ignored)."""
        keep = [node for node in nodes if node in self._adjacency]
        if not keep:
            raise PolicyError("subgraph would be empty")
        induced = graph_ops.induced_adjacency(self._adjacency, keep)
        edges = list(graph_ops.edge_iter(induced))
        return PolicyGraph(keep, edges, name=name or f"{self.name}|sub")

    def with_edges(self, edges: Iterable[tuple[int, int]], name: str | None = None) -> "PolicyGraph":
        """A new policy with additional indistinguishability requirements."""
        combined = list(self.edges()) + [tuple(edge) for edge in edges]
        return PolicyGraph(self.nodes, combined, name=name or self.name)

    def without_node_edges(self, nodes: Iterable[int], name: str | None = None) -> "PolicyGraph":
        """A new policy where every edge incident to ``nodes`` is dropped.

        This is how the contact-tracing policy Gc is derived: infected
        locations lose all their indistinguishability requirements and become
        disclosable, while the rest of the policy is untouched.
        """
        drop = {int(node) for node in nodes}
        edges = [(u, v) for u, v in self.edges() if u not in drop and v not in drop]
        return PolicyGraph(self.nodes, edges, name=name or f"{self.name}|isolated")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe representation (sorted for determinism)."""
        return {
            "name": self.name,
            "nodes": sorted(self._adjacency),
            "edges": sorted(self.edges()),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "PolicyGraph":
        return cls(payload["nodes"], [tuple(e) for e in payload["edges"]], name=payload.get("name", "policy"))

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "PolicyGraph":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if node not in self._adjacency:
            raise PolicyError(f"node {node} not in policy graph {self.name!r}")
