"""Low-level graph algorithms on adjacency dictionaries.

:class:`~repro.core.policy_graph.PolicyGraph` delegates its combinatorial
queries here.  Graphs are represented as ``dict[int, set[int]]`` adjacency
maps; all functions treat them as immutable inputs.  A dedicated
implementation (rather than networkx) keeps the hot paths — BFS distances
inside mechanism constructors and the exponential mechanism — allocation-light
and dependency-free.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

__all__ = [
    "bfs_distances",
    "bfs_limited",
    "shortest_path",
    "connected_components",
    "component_of",
    "induced_adjacency",
    "edge_iter",
    "graph_diameter",
]

Adjacency = dict[int, set[int]]


def bfs_distances(adjacency: Adjacency, source: int) -> dict[int, int]:
    """Hop distances from ``source`` to every reachable node (Def. 2.2)."""
    if source not in adjacency:
        raise KeyError(f"source {source} not in graph")
    dist = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        base = dist[node]
        for nbr in adjacency[node]:
            if nbr not in dist:
                dist[nbr] = base + 1
                queue.append(nbr)
    return dist


def bfs_limited(adjacency: Adjacency, source: int, cutoff: int) -> dict[int, int]:
    """Hop distances from ``source`` truncated at ``cutoff`` hops.

    Used for k-neighbor queries (Def. 2.3) without exploring the whole
    component.
    """
    if source not in adjacency:
        raise KeyError(f"source {source} not in graph")
    if cutoff < 0:
        raise ValueError(f"cutoff must be >= 0, got {cutoff}")
    dist = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        base = dist[node]
        if base >= cutoff:
            continue
        for nbr in adjacency[node]:
            if nbr not in dist:
                dist[nbr] = base + 1
                queue.append(nbr)
    return dist


def shortest_path(adjacency: Adjacency, source: int, target: int) -> list[int] | None:
    """One shortest path from ``source`` to ``target``; ``None`` if disconnected."""
    if source not in adjacency or target not in adjacency:
        raise KeyError("source/target not in graph")
    if source == target:
        return [source]
    parent: dict[int, int] = {source: source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for nbr in adjacency[node]:
            if nbr in parent:
                continue
            parent[nbr] = node
            if nbr == target:
                path = [target]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(nbr)
    return None


def connected_components(adjacency: Adjacency) -> list[frozenset[int]]:
    """All connected components, each as a frozenset, in first-seen order."""
    seen: set[int] = set()
    components: list[frozenset[int]] = []
    for start in adjacency:
        if start in seen:
            continue
        member = set(bfs_distances(adjacency, start))
        seen |= member
        components.append(frozenset(member))
    return components


def component_of(adjacency: Adjacency, node: int) -> frozenset[int]:
    """The connected component containing ``node``."""
    return frozenset(bfs_distances(adjacency, node))


def induced_adjacency(adjacency: Adjacency, nodes: Iterable[int]) -> Adjacency:
    """Adjacency of the subgraph induced by ``nodes`` (missing ids ignored)."""
    keep = {node for node in nodes if node in adjacency}
    return {node: adjacency[node] & keep for node in keep}


def edge_iter(adjacency: Adjacency) -> Iterator[tuple[int, int]]:
    """Iterate each undirected edge exactly once as ``(u, v)`` with ``u < v``."""
    for node, nbrs in adjacency.items():
        for nbr in nbrs:
            if node < nbr:
                yield (node, nbr)


def graph_diameter(adjacency: Adjacency) -> int:
    """Largest finite hop distance over all node pairs (0 for edgeless graphs).

    Runs a BFS per node; policy graphs in the experiments have at most a few
    thousand nodes, for which this exact computation is fast enough.
    """
    best = 0
    for node in adjacency:
        dist = bfs_distances(adjacency, node)
        if dist:
            best = max(best, max(dist.values()))
    return best
