"""Policy restriction and repair under adversarial feasibility constraints.

When releases accumulate over time, the adversary's feasible region for the
user (e.g. the delta-location set derived from a Markov mobility prior)
shrinks.  Restricting a policy graph to the feasible cells can strand nodes
that were connected in the original policy: they lose every 1-neighbor and
silently become disclosable, *weakening* the user's protection — the
"protectable graph" problem discussed in the PGLP technical report.

:func:`restrict_policy` performs the restriction and then repairs stranded
nodes by reconnecting each one to its nearest feasible node from the node's
original component (nearest by original graph distance, ties broken by cell
id for determinism).  Nodes that were disclosable in the *original* policy
stay disclosable — the policy author intended that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.policy_graph import PolicyGraph
from repro.errors import PolicyError

__all__ = ["RepairReport", "restrict_policy"]


@dataclass(frozen=True)
class RepairReport:
    """Outcome of a policy restriction + repair.

    Attributes
    ----------
    graph:
        The restricted (and repaired) policy.
    removed_nodes:
        Original nodes outside the feasible set.
    stranded_nodes:
        Feasible nodes that lost all their neighbors in the restriction.
    added_edges:
        Repair edges reconnecting stranded nodes (empty when ``repair=False``
        or nothing was stranded).
    unprotectable_nodes:
        Stranded nodes that could not be repaired because no feasible node of
        their original component survived; they remain disclosable and the
        caller should treat them as a policy violation to surface to the user.
    """

    graph: PolicyGraph
    removed_nodes: frozenset[int]
    stranded_nodes: frozenset[int]
    added_edges: tuple[tuple[int, int], ...] = ()
    unprotectable_nodes: frozenset[int] = frozenset()

    @property
    def is_protectable(self) -> bool:
        """True when every originally protected feasible node kept an edge."""
        return not self.unprotectable_nodes


def restrict_policy(
    graph: PolicyGraph,
    feasible: Iterable[int],
    repair: bool = True,
    name: str | None = None,
) -> RepairReport:
    """Restrict ``graph`` to ``feasible`` cells, optionally repairing strands.

    Parameters
    ----------
    graph:
        The policy to restrict.
    feasible:
        Cells the adversary still considers possible; must intersect the
        graph's nodes.
    repair:
        When True (default), every stranded node is reconnected to the
        nearest surviving member of its original component.
    """
    feasible_set = {int(cell) for cell in feasible} & set(graph.nodes)
    if not feasible_set:
        raise PolicyError("feasible set does not intersect the policy graph")
    removed = frozenset(graph.nodes - feasible_set)

    restricted = graph.subgraph(feasible_set, name=name or f"{graph.name}|feasible")
    stranded = frozenset(
        node
        for node in feasible_set
        if restricted.degree(node) == 0 and not graph.is_disclosable(node)
    )
    if not repair or not stranded:
        return RepairReport(
            graph=restricted,
            removed_nodes=removed,
            stranded_nodes=stranded,
            unprotectable_nodes=stranded if not repair else _unprotectable(graph, stranded, feasible_set),
        )

    added: list[tuple[int, int]] = []
    unprotectable: list[int] = []
    for node in sorted(stranded):
        partner = _nearest_feasible(graph, node, feasible_set)
        if partner is None:
            unprotectable.append(node)
        else:
            added.append((node, partner))
    repaired = restricted.with_edges(added, name=restricted.name) if added else restricted
    return RepairReport(
        graph=repaired,
        removed_nodes=removed,
        stranded_nodes=stranded,
        added_edges=tuple(added),
        unprotectable_nodes=frozenset(unprotectable),
    )


def _nearest_feasible(graph: PolicyGraph, node: int, feasible: set[int]) -> int | None:
    """Closest feasible node (by original d_G) in ``node``'s component."""
    distances = graph.distances_from(node)
    best: tuple[int, int] | None = None  # (distance, cell)
    for other, hops in distances.items():
        if other == node or other not in feasible:
            continue
        key = (hops, other)
        if best is None or key < best:
            best = key
    return None if best is None else best[1]


def _unprotectable(graph: PolicyGraph, stranded: frozenset[int], feasible: set[int]) -> frozenset[int]:
    """Stranded nodes with no feasible companion in their original component."""
    return frozenset(
        node for node in stranded if _nearest_feasible(graph, node, feasible) is None
    )
