"""Array-namespace seam: numpy by default, CuPy / torch by registry name.

The batched kernels (``Mechanism._perturb_batch`` / ``_pdf_batch``, the
adversary GEMMs) are written against an *array namespace* ``xp`` instead of
a hard-coded ``numpy`` import.  An :class:`ArrayBackend` bundles that
namespace with the two transfer functions the host boundary needs
(``from_numpy`` / ``asnumpy``), and a tiny registry — mirroring
:func:`repro.engine.backends.register_backend` — resolves backends by name:

* ``numpy`` — always available, the bit-exact reference.  Every seeded
  numpy run (batched, fused, sharded) is element-wise identical to the
  scalar release loop.
* ``cupy`` / ``torch`` — optional accelerators, probed via
  :mod:`importlib` so listing them never imports (let alone requires)
  the package.  Uniform draws still come from the *numpy* generator and
  are transferred to the device, so the consumed RNG stream is identical;
  floating-point results are only *distributionally* equivalent
  (different FMA/rounding), never asserted bit-equal.

Resolving an unavailable backend raises
:class:`~repro.errors.ValidationError` with the availability table — a
one-line operator error, not an ImportError traceback (the CLI maps it to
exit code 1).
"""

from __future__ import annotations

import importlib
import importlib.util
from typing import Any, Callable

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "ArrayBackend",
    "NUMPY_BACKEND",
    "array_backend_names",
    "probe_array_backends",
    "register_array_backend",
    "resolve_array_backend",
]


class ArrayBackend:
    """One array namespace plus its host-transfer functions.

    Attributes
    ----------
    name:
        Canonical registry name (``"numpy"``, ``"cupy"``, ``"torch"``).
    xp:
        The namespace module the kernels call (``xp.log1p``, ``xp.cos``,
        ``xp.exp`` ... the numpy-compatible subset only).
    from_numpy / asnumpy:
        Host-to-device and device-to-host transfers.  For numpy both are
        identity-like (``np.asarray``).
    """

    __slots__ = ("name", "xp", "from_numpy", "asnumpy")

    def __init__(
        self,
        name: str,
        xp: Any,
        from_numpy: Callable[[np.ndarray], Any],
        asnumpy: Callable[[Any], np.ndarray],
    ) -> None:
        self.name = name
        self.xp = xp
        self.from_numpy = from_numpy
        self.asnumpy = asnumpy

    @property
    def is_numpy(self) -> bool:
        """Whether this is the bit-exact numpy reference backend."""
        return self.xp is np

    def __repr__(self) -> str:
        return f"ArrayBackend({self.name!r})"


NUMPY_BACKEND = ArrayBackend("numpy", np, np.asarray, np.asarray)

#: canonical name -> (module probed for availability, loader).  The loader
#: runs only on resolve; listing probes ``importlib.util.find_spec`` so the
#: optional packages are never imported just to print a table.
_ARRAY_BACKENDS: dict[str, tuple[str | None, Callable[[], ArrayBackend]]] = {}
_ARRAY_ALIASES: dict[str, str] = {}


def register_array_backend(
    name: str,
    loader: Callable[[], ArrayBackend],
    aliases: tuple[str, ...] = (),
    probe_module: str | None = None,
) -> None:
    """Register an array backend under ``name`` (plus case-insensitive aliases).

    ``probe_module`` is the import name checked (without importing) to
    report availability; ``None`` means always available.
    """
    _ARRAY_BACKENDS[name] = (probe_module, loader)
    _ARRAY_ALIASES[name.casefold()] = name
    for alias in aliases:
        _ARRAY_ALIASES[alias.casefold()] = name


def _canonical(name: str) -> str:
    canonical = _ARRAY_ALIASES.get(str(name).casefold())
    if canonical is None:
        known = ", ".join(sorted(_ARRAY_BACKENDS))
        raise ValidationError(
            f"unknown array backend {name!r}; registered backends: {known}"
        )
    return canonical


def array_backend_available(name: str) -> bool:
    """Whether ``name`` resolves without an import error (probe only)."""
    probe_module, _ = _ARRAY_BACKENDS[_canonical(name)]
    if probe_module is None:
        return True
    try:
        return importlib.util.find_spec(probe_module) is not None
    except (ImportError, ValueError):  # pragma: no cover - broken namespace pkg
        return False


def array_backend_names() -> list[str]:
    """Sorted canonical backend names (available or not)."""
    return sorted(_ARRAY_BACKENDS)


def probe_array_backends() -> dict[str, bool]:
    """``{name: available}`` for every registered backend, without importing."""
    return {name: array_backend_available(name) for name in array_backend_names()}


def resolve_array_backend(name: "str | ArrayBackend | None") -> ArrayBackend:
    """Live :class:`ArrayBackend` for ``name`` (``None`` means numpy).

    Unknown names and registered-but-uninstalled backends both raise
    :class:`~repro.errors.ValidationError` with the availability table, so
    callers (the CLI in particular) never surface a deep ImportError.
    """
    if name is None:
        return NUMPY_BACKEND
    if isinstance(name, ArrayBackend):
        return name
    canonical = _canonical(name)
    _, loader = _ARRAY_BACKENDS[canonical]
    try:
        return loader()
    except ImportError as exc:
        status = ", ".join(
            f"{key} ({'available' if ok else 'not installed'})"
            for key, ok in probe_array_backends().items()
        )
        raise ValidationError(
            f"array backend {canonical!r} is registered but not installed "
            f"in this environment; backends: {status}"
        ) from exc


# ----------------------------------------------------------------------
# Built-in backends
# ----------------------------------------------------------------------
def _load_numpy() -> ArrayBackend:
    return NUMPY_BACKEND


def _load_cupy() -> ArrayBackend:
    cupy = importlib.import_module("cupy")
    return ArrayBackend("cupy", cupy, cupy.asarray, cupy.asnumpy)


def _load_torch() -> ArrayBackend:
    torch = importlib.import_module("torch")

    def asnumpy(value):
        if isinstance(value, torch.Tensor):
            return value.detach().cpu().numpy()
        return np.asarray(value)

    return ArrayBackend("torch", torch, torch.as_tensor, asnumpy)


register_array_backend("numpy", _load_numpy, aliases=("np",))
register_array_backend("cupy", _load_cupy, aliases=("gpu",), probe_module="cupy")
register_array_backend("torch", _load_torch, aliases=("pytorch",), probe_module="torch")
