"""Privacy-budget accounting for repeated location releases.

PANDA's clients release a perturbed location every timestep and may *re-send*
their recent history under an updated policy during contact tracing.  Each
noisy release costs its mechanism's epsilon; exact (policy-permitted)
disclosures cost nothing.  :class:`BudgetLedger` records every expenditure
per user and enforces sequential composition against an optional cap, which
is how the experiments report the total privacy cost of the tracing protocol.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import BudgetError
from repro.utils.validation import check_non_negative

__all__ = ["BudgetEntry", "BudgetLedger"]


@dataclass(frozen=True)
class BudgetEntry:
    """One recorded expenditure: ``user`` spent ``epsilon`` at time ``t``."""

    user: int
    time: int
    epsilon: float
    purpose: str = ""


class BudgetLedger:
    """Sequential-composition ledger of per-user epsilon expenditure.

    Parameters
    ----------
    cap:
        Optional per-user lifetime budget.  :meth:`charge` raises
        :class:`~repro.errors.BudgetError` when an expenditure would exceed
        it, *before* recording the entry.
    """

    def __init__(self, cap: float | None = None) -> None:
        if cap is not None:
            check_non_negative("cap", cap)
        self.cap = cap
        self._entries: list[BudgetEntry] = []
        self._spent: dict[int, float] = defaultdict(float)

    # ------------------------------------------------------------------
    def charge(self, user: int, time: int, epsilon: float, purpose: str = "") -> BudgetEntry:
        """Record an expenditure; zero-cost entries (exact disclosures) allowed."""
        check_non_negative("epsilon", epsilon)
        if self.cap is not None and self._spent[user] + epsilon > self.cap + 1e-12:
            raise BudgetError(
                f"user {user} would spend {self._spent[user] + epsilon:.4g} "
                f"exceeding cap {self.cap:.4g}"
            )
        entry = BudgetEntry(user=int(user), time=int(time), epsilon=float(epsilon), purpose=purpose)
        self._entries.append(entry)
        self._spent[entry.user] += entry.epsilon
        return entry

    def spent(self, user: int) -> float:
        """Total epsilon spent by ``user`` (sequential composition)."""
        return self._spent.get(int(user), 0.0)

    def remaining(self, user: int) -> float:
        """Budget left for ``user``; infinite when no cap is set."""
        if self.cap is None:
            return float("inf")
        return max(self.cap - self.spent(user), 0.0)

    def spent_in_window(self, user: int, start: int, end: int) -> float:
        """Epsilon spent by ``user`` with ``start <= time <= end``."""
        return sum(
            entry.epsilon
            for entry in self._entries
            if entry.user == int(user) and start <= entry.time <= end
        )

    # ------------------------------------------------------------------
    @property
    def entries(self) -> tuple[BudgetEntry, ...]:
        return tuple(self._entries)

    def users(self) -> frozenset[int]:
        return frozenset(self._spent)

    def total_spent(self) -> float:
        """Epsilon summed over all users (system-wide cost metric)."""
        return sum(self._spent.values())

    def by_purpose(self) -> dict[str, float]:
        """Total epsilon grouped by the ``purpose`` tag of each entry."""
        totals: dict[str, float] = defaultdict(float)
        for entry in self._entries:
            totals[entry.purpose] += entry.epsilon
        return dict(totals)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"BudgetLedger(entries={len(self._entries)}, users={len(self._spent)}, "
            f"cap={self.cap})"
        )
