"""Privacy-budget accounting for repeated location releases.

PANDA's clients release a perturbed location every timestep and may *re-send*
their recent history under an updated policy during contact tracing.  Each
noisy release costs its mechanism's epsilon; exact (policy-permitted)
disclosures cost nothing.  :class:`BudgetLedger` records every expenditure
per user and enforces sequential composition against an optional cap, which
is how the experiments report the total privacy cost of the tracing protocol.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.errors import BudgetError
from repro.utils.validation import check_non_negative

__all__ = ["BudgetEntry", "BudgetLedger"]


def _as_scalar_list(values) -> list:
    """Plain Python scalars from an array-like (fast bulk-charge path)."""
    if isinstance(values, np.ndarray):
        return values.tolist()
    return list(values)


@dataclass(frozen=True)
class BudgetEntry:
    """One recorded expenditure: ``user`` spent ``epsilon`` at time ``t``."""

    user: int
    time: int
    epsilon: float
    purpose: str = ""


class BudgetLedger:
    """Sequential-composition ledger of per-user epsilon expenditure.

    Parameters
    ----------
    cap:
        Optional per-user lifetime budget.  :meth:`charge` raises
        :class:`~repro.errors.BudgetError` when an expenditure would exceed
        it, *before* recording the entry.
    record_entries:
        When ``False`` the ledger keeps only the per-user running totals
        and skips the per-charge :class:`BudgetEntry` log — the
        population-scale setting (a 10M-row ingest would otherwise retain
        ~10M entry objects).  Cap enforcement and every total
        (:meth:`spent`, :meth:`total_spent`) are unaffected;
        :attr:`entries` / :meth:`spent_in_window` / :meth:`by_purpose`
        cover only recorded entries.  Store-backed runs lose nothing: the
        ``releases`` table *is* the durable per-charge log.
    """

    def __init__(self, cap: float | None = None, record_entries: bool = True) -> None:
        if cap is not None:
            check_non_negative("cap", cap)
        self.cap = cap
        self.record_entries = bool(record_entries)
        self._entries: list[BudgetEntry] = []
        self._spent: dict[int, float] = defaultdict(float)

    # ------------------------------------------------------------------
    def charge(self, user: int, time: int, epsilon: float, purpose: str = "") -> BudgetEntry:
        """Record an expenditure; zero-cost entries (exact disclosures) allowed."""
        check_non_negative("epsilon", epsilon)
        if self.cap is not None and self._spent[user] + epsilon > self.cap + 1e-12:
            raise BudgetError(
                f"user {user} would spend {self._spent[user] + epsilon:.4g} "
                f"exceeding cap {self.cap:.4g}"
            )
        entry = BudgetEntry(user=int(user), time=int(time), epsilon=float(epsilon), purpose=purpose)
        if self.record_entries:
            self._entries.append(entry)
        self._spent[entry.user] += entry.epsilon
        return entry

    def charge_many(self, users, times, epsilons, purpose: str = "") -> int:
        """Bulk :meth:`charge` over parallel arrays; returns the row count.

        Semantically ``for u, t, e in zip(...): self.charge(u, t, e,
        purpose)`` — same sequential cap enforcement, same scalar float
        accumulation order (so per-user totals are bit-identical to the
        scalar loop), same entries when ``record_entries`` is on — minus
        the per-row method-call and dataclass overhead on the batched
        ingest hot path.  Raises mid-way exactly where the scalar loop
        would; rows before the offending one remain charged.
        """
        cap = self.cap
        spent = self._spent
        entries = self._entries
        record = self.record_entries
        count = 0
        for user, time, epsilon in zip(
            _as_scalar_list(users), _as_scalar_list(times), _as_scalar_list(epsilons)
        ):
            if epsilon < 0:
                check_non_negative("epsilon", epsilon)
            user = int(user)
            epsilon = float(epsilon)
            if cap is not None and spent[user] + epsilon > cap + 1e-12:
                raise BudgetError(
                    f"user {user} would spend {spent[user] + epsilon:.4g} "
                    f"exceeding cap {cap:.4g}"
                )
            if record:
                entries.append(
                    BudgetEntry(user=user, time=int(time), epsilon=epsilon, purpose=purpose)
                )
            spent[user] += epsilon
            count += 1
        return count

    def spent(self, user: int) -> float:
        """Total epsilon spent by ``user`` (sequential composition)."""
        return self._spent.get(int(user), 0.0)

    def remaining(self, user: int) -> float:
        """Budget left for ``user``; infinite when no cap is set."""
        if self.cap is None:
            return float("inf")
        return max(self.cap - self.spent(user), 0.0)

    def spent_in_window(self, user: int, start: int, end: int) -> float:
        """Epsilon spent by ``user`` with ``start <= time <= end``."""
        return sum(
            entry.epsilon
            for entry in self._entries
            if entry.user == int(user) and start <= entry.time <= end
        )

    # ------------------------------------------------------------------
    @property
    def entries(self) -> tuple[BudgetEntry, ...]:
        return tuple(self._entries)

    def users(self) -> frozenset[int]:
        return frozenset(self._spent)

    def total_spent(self) -> float:
        """Epsilon summed over all users (system-wide cost metric)."""
        return sum(self._spent.values())

    def by_purpose(self) -> dict[str, float]:
        """Total epsilon grouped by the ``purpose`` tag of each entry."""
        totals: dict[str, float] = defaultdict(float)
        for entry in self._entries:
            totals[entry.purpose] += entry.epsilon
        return dict(totals)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"BudgetLedger(entries={len(self._entries)}, users={len(self._spent)}, "
            f"cap={self.cap})"
        )
