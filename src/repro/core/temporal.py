"""Temporal PGLP release with delta-location sets and policy repair.

Location release is rarely one-shot: PANDA's clients stream a location every
timestep, and an adversary with a (public) Markov mobility model narrows the
feasible region release after release — the setting of Xiao-Xiong's
delta-Location Set Privacy [19] and the "protectable graph" discussion of
the PGLP report.  :class:`TemporalReleaser` implements the full online loop:

1. **predict** the adversary's prior with the Markov model;
2. compute the **delta-location set** (smallest high-probability region);
3. **restrict + repair** the base policy graph to that set
   (:func:`repro.core.repair.restrict_policy`) so that no originally
   protected location is silently stranded into disclosability;
4. if the true location fell outside the set, substitute the nearest
   in-set **surrogate** (Xiao-Xiong's drift handling);
5. release through a fresh mechanism over the repaired policy and
6. **update** the adversary posterior with the mechanism density.

The per-step record exposes everything an experiment needs: the set size,
repair report, surrogate flag, and the release itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.mechanisms.base import Mechanism, Release
from repro.core.policy_graph import PolicyGraph
from repro.core.repair import RepairReport, restrict_policy
from repro.errors import PolicyError
from repro.geo.grid import GridWorld
from repro.mobility.hmm import BayesFilter, delta_location_set
from repro.mobility.markov import MarkovModel
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_epsilon, check_probability

__all__ = ["TimestepRelease", "TemporalReleaser"]

MechanismFactory = Callable[[GridWorld, PolicyGraph, float], Mechanism]


@dataclass(frozen=True)
class TimestepRelease:
    """Everything produced by one temporal release step."""

    release: Release
    delta_set: frozenset[int]
    repair: RepairReport
    true_cell: int
    input_cell: int

    @property
    def used_surrogate(self) -> bool:
        """True when the true location was outside the delta-location set."""
        return self.input_cell != self.true_cell


class TemporalReleaser:
    """Online PGLP releaser tracking the adversary's belief across steps.

    Parameters
    ----------
    world, base_policy:
        The location universe and the user's consented policy graph.
    markov:
        Public mobility model driving both the adversary's prediction and the
        delta-location set.
    mechanism_factory:
        Builds the per-step mechanism over the repaired policy.
    epsilon:
        Budget per release.
    delta:
        Mass excluded from the location set (0 keeps the whole support; the
        paper's experiments use small values like 0.01-0.1).
    repair:
        Whether to reconnect stranded nodes (True reproduces the PGLP
        report's protectable-graph behaviour; False shows the raw hazard).
    """

    def __init__(
        self,
        world: GridWorld,
        base_policy: PolicyGraph,
        markov: MarkovModel,
        mechanism_factory: MechanismFactory,
        epsilon: float,
        delta: float = 0.05,
        repair: bool = True,
        prior: np.ndarray | None = None,
    ) -> None:
        self.world = world
        self.base_policy = base_policy
        self.markov = markov
        self.mechanism_factory = mechanism_factory
        self.epsilon = check_epsilon(epsilon)
        self.delta = check_probability("delta", delta)
        self.repair = repair
        self.filter = BayesFilter(markov, prior=prior)
        self.history: list[TimestepRelease] = []

    # ------------------------------------------------------------------
    def step(self, true_cell: int, rng=None) -> TimestepRelease:
        """Release the user's location for one timestep."""
        true_cell = self.world.check_cell(true_cell)
        if true_cell not in self.base_policy:
            raise PolicyError(f"cell {true_cell} is not covered by the base policy")
        generator = ensure_rng(rng)

        prior = self.filter.predict()
        delta_set = delta_location_set(prior, self.delta)
        input_cell = (
            true_cell if true_cell in delta_set else self._surrogate(true_cell, delta_set)
        )
        report = restrict_policy(self.base_policy, delta_set, repair=self.repair)
        mechanism = self.mechanism_factory(self.world, report.graph, self.epsilon)
        release = mechanism.release(input_cell, rng=generator)
        self.filter.update(release, mechanism)
        record = TimestepRelease(
            release=release,
            delta_set=frozenset(delta_set),
            repair=report,
            true_cell=true_cell,
            input_cell=input_cell,
        )
        self.history.append(record)
        return record

    def run(self, cells, rng=None) -> list[TimestepRelease]:
        """Release a whole trajectory; returns the per-step records."""
        generator = ensure_rng(rng)
        return [self.step(cell, rng=generator) for cell in cells]

    # ------------------------------------------------------------------
    def _surrogate(self, true_cell: int, delta_set: set[int]) -> int:
        """Nearest in-set cell by Euclidean distance (ties: smallest id)."""
        best: tuple[float, int] | None = None
        for candidate in sorted(delta_set):
            distance = self.world.distance(true_cell, candidate)
            if best is None or (distance, candidate) < best:
                best = (distance, candidate)
        if best is None:
            raise PolicyError("delta-location set is empty")  # pragma: no cover
        return best[1]

    # ------------------------------------------------------------------
    def mean_utility_error(self) -> float:
        """Mean Euclidean error of all releases so far (vs the true cells)."""
        if not self.history:
            raise PolicyError("no releases recorded yet")
        total = 0.0
        for record in self.history:
            x, y = self.world.coords(record.true_cell)
            total += float(np.hypot(record.release.point[0] - x, record.release.point[1] - y))
        return total / len(self.history)

    def surrogate_rate(self) -> float:
        """Fraction of steps that had to substitute a surrogate location."""
        if not self.history:
            raise PolicyError("no releases recorded yet")
        return sum(r.used_surrogate for r in self.history) / len(self.history)

    def unprotectable_steps(self) -> int:
        """Steps whose restricted policy had unprotectable stranded nodes."""
        return sum(1 for r in self.history if not r.repair.is_protectable)
