"""Graph-exponential mechanism: discrete PGLP release over policy nodes.

A cell-valued alternative to the continuous mechanisms: the release is a cell
of the true location's component, drawn with probability::

    Pr(z | s) ∝ exp(-(eps / 2) * d_G(s, z))

The eps/2 factor covers the shift of the normalising constant between
1-neighbors: both the unnormalised weight ratio and the partition-function
ratio are bounded by ``exp(eps/2)``, so the released pmf satisfies
Definition 2.4 with budget eps.  Discrete output is what a production
"health code" service would publish (cell/area ids rather than raw
coordinates); it also demonstrates that PGLP is not tied to planar noise.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.mechanisms.base import Mechanism
from repro.core.policy_graph import PolicyGraph
from repro.errors import MechanismError
from repro.geo.grid import GridWorld

__all__ = ["GraphExponentialMechanism"]


class GraphExponentialMechanism(Mechanism):
    """Exponential mechanism scored by policy-graph distance."""

    discrete = True

    def __init__(self, world: GridWorld, graph: PolicyGraph, epsilon: float) -> None:
        super().__init__(world, graph, epsilon)
        # Per non-singleton component: sorted candidate cells; per node:
        # probability vector over those candidates (computed lazily, cached).
        self._candidates: dict[int, tuple[int, ...]] = {}
        self._pmf_cache: dict[int, np.ndarray] = {}
        self._cmf_cache: dict[int, np.ndarray] = {}
        self._dense_cache: dict[int, np.ndarray] = {}
        for component in graph.components():
            if len(component) < 2:
                continue
            ordered = tuple(sorted(component))
            for node in component:
                self._candidates[node] = ordered

    def support(self, cell: int) -> tuple[int, ...]:
        """The candidate output cells for true cell ``cell``."""
        if cell not in self._candidates:
            raise MechanismError(f"cell {cell} is disclosable; no discrete support")
        return self._candidates[cell]

    def pmf(self, cell: int) -> np.ndarray:
        """Release pmf over :meth:`support` for true cell ``cell``."""
        if cell not in self._candidates:
            raise MechanismError(f"cell {cell} is disclosable; no pmf defined")
        cached = self._pmf_cache.get(cell)
        if cached is not None:
            return cached
        candidates = self._candidates[cell]
        distances = self.graph.distances_from(cell)
        weights = np.array(
            [math.exp(-self.epsilon / 2.0 * distances[candidate]) for candidate in candidates]
        )
        probabilities = weights / weights.sum()
        self._pmf_cache[cell] = probabilities
        return probabilities

    def _cmf(self, cell: int) -> np.ndarray:
        """Cumulative pmf over :meth:`support`, for inverse-CDF sampling."""
        cached = self._cmf_cache.get(cell)
        if cached is None:
            cached = np.cumsum(self.pmf(cell))
            cached[-1] = 1.0  # guard against float drift at the top end
            self._cmf_cache[cell] = cached
        return cached

    # ------------------------------------------------------------------
    def _perturb(self, cell: int, rng: np.random.Generator) -> np.ndarray:
        return self._perturb_batch(np.array([cell]), rng)[0]

    def _perturb_batch(
        self,
        cells: np.ndarray,
        rng: np.random.Generator,
        out: np.ndarray | None = None,
        workspace=None,
    ) -> np.ndarray:
        # One uniform per cell, mapped through the cell's cumulative pmf.
        # The inverse-CDF walk is per-cell Python either way (table lookups,
        # not arithmetic); the workspace path pools the uniform/choice
        # buffers and writes the centres in place.
        n = len(cells)
        if workspace is not None:
            u = workspace.buffer("gexp_uniforms", n)
            rng.random(out=u)
            choices = workspace.int_buffer("gexp_choices", n)
        else:
            u = rng.random(n)
            choices = np.empty(n, dtype=int)
        for i, cell in enumerate(cells):
            candidates = self._candidates[int(cell)]
            index = int(np.searchsorted(self._cmf(int(cell)), u[i], side="right"))
            choices[i] = candidates[min(index, len(candidates) - 1)]
        return self.world.coords_array(choices, out=out, workspace=workspace)

    def _pdf(self, point: np.ndarray, cell: int) -> float:
        """Pmf of the cell whose centre the released point snaps to."""
        released_cell = self.world.snap(point)
        candidates = self._candidates[cell]
        try:
            index = candidates.index(released_cell)
        except ValueError:
            return 0.0
        return float(self.pmf(cell)[index])

    def _dense_pmf(self, cell: int) -> np.ndarray:
        """Pmf scattered over all world cells (cached; pmfs are immutable)."""
        cached = self._dense_cache.get(cell)
        if cached is None:
            cached = np.zeros(self.world.n_cells)
            cached[list(self._candidates[cell])] = self.pmf(cell)
            self._dense_cache[cell] = cached
        return cached

    def _pdf_batch(self, points: np.ndarray, cells: np.ndarray) -> np.ndarray:
        released = self.world.snap_batch(points)
        out = np.empty((len(points), len(cells)))
        for j, cell in enumerate(cells):
            out[:, j] = self._dense_pmf(int(cell))[released]
        return out
