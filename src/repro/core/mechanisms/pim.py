"""P-PIM: the policy-aware Planar Isotropic Mechanism.

The Planar Isotropic Mechanism (Xiao & Xiong, CCS'15) is the optimal
mechanism for Location Set Privacy; the PGLP report adapts it to a policy
graph by replacing the location-set sensitivity hull with the **edge
sensitivity hull** of the component containing the true location::

    K(C) = conv{ +-(x(s_i) - x(s_j)) : (s_i, s_j) in E(C) }

and releasing with the K-norm mechanism ``pdf(z|s) ∝ exp(-eps * ||z - x(s)||_K)``.
For 1-neighbors, ``x(s) - x(s')`` is a vertex generator of ``K`` so its
K-norm is at most 1, giving ``pdf(z|s)/pdf(z|s') <= exp(eps)`` (Def. 2.4);
k-hop pairs follow by the gauge's triangle inequality (Lemma 2.1).

Sampling uses the Hardt-Talwar decomposition for d = 2:
``z = x(s) + r * u`` with ``r ~ Gamma(3, 1/eps)`` and ``u ~ Uniform(K)``,
whose density is exactly ``eps^2 * exp(-eps*||z-x||_K) / (2*area(K))``.
The K-norm mechanism is affine-equivariant, so Xiao-Xiong's isotropic
transform leaves the release distribution unchanged; we expose the hull's
isotropic statistics for analysis instead (see ``hull_eccentricity``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.mechanisms.base import Mechanism
from repro.core.policy_graph import PolicyGraph
from repro.errors import MechanismError
from repro.geo.geometry import ConvexPolygon, isotropic_transform
from repro.geo.grid import GridWorld

__all__ = ["PolicyPlanarIsotropicMechanism"]


class PolicyPlanarIsotropicMechanism(Mechanism):
    """K-norm mechanism over the per-component edge sensitivity hull."""

    def __init__(self, world: GridWorld, graph: PolicyGraph, epsilon: float) -> None:
        super().__init__(world, graph, epsilon)
        # Sensitivity hulls are pure (world, graph) geometry — epsilon only
        # scales the gamma radius at sample time — so they are cached on the
        # (immutable) graph instance and shared across epsilon sweeps.
        cache = graph.__dict__.setdefault("_ppim_hull_cache", {})
        cached = cache.get(world)
        if cached is None:
            hulls: list[ConvexPolygon] = []
            index_of: dict[int, int] = {}
            for component in graph.components():
                hull = self._sensitivity_hull(component)
                if hull is None:
                    continue  # singleton: disclosable
                index = len(hulls)
                hulls.append(hull)
                for node in component:
                    index_of[node] = index
            # Dense cell -> component table (-1 = disclosable) so the batch
            # kernels group by component with one np.take instead of a
            # per-release Python dict walk.
            table = np.full(world.n_cells, -1, dtype=int)
            for node, index in index_of.items():
                table[node] = index
            table.setflags(write=False)
            cached = (hulls, index_of, table)
            cache[world] = cached
        self._hull_by_component, self._component_index, self._component_table = cached

    def _sensitivity_hull(self, component: frozenset[int]) -> ConvexPolygon | None:
        """Symmetrised convex hull of edge coordinate differences."""
        differences: list[tuple[float, float]] = []
        for node in component:
            xa, ya = self.world.coords(node)
            for nbr in self.graph.neighbors(node):
                if node < nbr:
                    xb, yb = self.world.coords(nbr)
                    differences.append((xa - xb, ya - yb))
                    differences.append((xb - xa, yb - ya))
        if not differences:
            return None
        return ConvexPolygon.from_points(differences, min_width=1e-9)

    # ------------------------------------------------------------------
    def sensitivity_hull(self, cell: int) -> ConvexPolygon:
        """The sensitivity hull governing releases at ``cell``."""
        if cell not in self._component_index:
            raise MechanismError(f"cell {cell} is disclosable; no sensitivity hull")
        return self._hull_by_component[self._component_index[cell]]

    def hull_eccentricity(self, cell: int) -> float:
        """Anisotropy of the hull: condition number of its isotropic transform.

        1.0 means the hull is already isotropic (P-PIM coincides with a
        radially symmetric mechanism); large values are where P-PIM beats
        P-LM, which wastes budget on the hull's short axis.
        """
        transform = isotropic_transform(self.sensitivity_hull(cell))
        singular_values = np.linalg.svd(transform, compute_uv=False)
        return float(singular_values.max() / singular_values.min())

    def knorm(self, cell: int, vector) -> float:
        """``||vector||_K`` for the hull at ``cell`` (test/analysis hook)."""
        return self.sensitivity_hull(cell).gauge(vector)

    def expected_error(self, cell: int) -> float:
        """Mean Euclidean release error at ``cell``.

        ``E||r * u||`` with ``r ~ Gamma(3, 1/eps)`` independent of ``u``:
        ``(3/eps) * E||u||`` where ``u ~ Uniform(K)``, estimated from the
        hull's second moment: ``E||u|| <= sqrt(trace(cov) + ||centroid||^2)``
        (exact enough for screen-radius calibration).
        """
        hull = self.sensitivity_hull(cell)
        second_moment = float(np.trace(hull.covariance()) + np.dot(hull.centroid, hull.centroid))
        return 3.0 / self.epsilon * math.sqrt(second_moment)

    # ------------------------------------------------------------------
    def _perturb(self, cell: int, rng: np.random.Generator) -> np.ndarray:
        return self._perturb_batch(np.array([cell]), rng)[0]

    def _sample_directions(
        self, component: np.ndarray, u: np.ndarray, directions: np.ndarray
    ) -> np.ndarray:
        """Fill ``directions`` with Uniform(K) draws grouped by component."""
        for index in np.unique(component):
            mask = component == index
            directions[mask] = self._hull_by_component[index].sample_from_uniforms(
                u[mask, 3], u[mask, 4], u[mask, 5]
            )
        return directions

    def _perturb_batch(
        self,
        cells: np.ndarray,
        rng: np.random.Generator,
        out: np.ndarray | None = None,
        workspace=None,
    ) -> np.ndarray:
        # Hardt-Talwar: z = x(s) + r * u with r ~ Gamma(3, 1/eps) (three
        # exponentials by inverse CDF) and u ~ Uniform(K).  Six uniforms per
        # row keep the stream identical to scalar sequential releases; cells
        # are then grouped by component so each hull samples vectorized.
        n = len(cells)
        backend = self.array_backend
        if not backend.is_numpy:
            # Hull sampling is host geometry; the radius/combine arithmetic
            # runs on the device namespace (uniforms stay on the numpy RNG).
            xp = backend.xp
            u = rng.random((n, 6))
            component = np.take(self._component_table, cells)
            directions = self._sample_directions(component, u, np.empty((n, 2)))
            du = backend.from_numpy(u[:, :3])
            radii = -(
                xp.log1p(-du[:, 0]) + xp.log1p(-du[:, 1]) + xp.log1p(-du[:, 2])
            ) / self.epsilon
            device = backend.from_numpy(self.world.coords_array(cells)) + radii[
                :, None
            ] * backend.from_numpy(directions)
            result = np.asarray(backend.asnumpy(device), dtype=float)
            if out is not None:
                out[...] = result
                return out
            return result
        if workspace is not None:
            u = workspace.buffer("ppim_uniforms", n, cols=6)
            rng.random(out=u)
            u0, u1, u2 = u[:, 0], u[:, 1], u[:, 2]
            np.negative(u0, out=u0)
            np.log1p(u0, out=u0)
            np.negative(u1, out=u1)
            np.log1p(u1, out=u1)
            np.negative(u2, out=u2)
            np.log1p(u2, out=u2)
            np.add(u0, u1, out=u0)
            np.add(u0, u2, out=u0)
            np.negative(u0, out=u0)
            np.divide(u0, self.epsilon, out=u0)  # u0 now holds the radii
            component = np.take(
                self._component_table, cells, out=workspace.int_buffer("ppim_component", n)
            )
            directions = self._sample_directions(
                component, u, workspace.points_buffer("ppim_directions", n)
            )
            centres = self.world.coords_array(
                cells, out=workspace.points_buffer("ppim_centres", n), workspace=workspace
            )
            if out is None:
                out = workspace.points_buffer("ppim_points", n)
            np.multiply(directions, u[:, 0:1], out=out)
            np.add(out, centres, out=out)
            return out
        u = rng.random((n, 6))
        radii = -(
            np.log1p(-u[:, 0]) + np.log1p(-u[:, 1]) + np.log1p(-u[:, 2])
        ) / self.epsilon
        component = np.take(self._component_table, cells)
        directions = self._sample_directions(component, u, np.empty((n, 2)))
        centres = self.world.coords_array(cells)
        result = centres + radii[:, None] * directions
        if out is not None:
            out[...] = result
            return out
        return result

    def _pdf(self, point: np.ndarray, cell: int) -> float:
        hull = self._hull_by_component[self._component_index[cell]]
        x, y = self.world.coords(cell)
        gauge = hull.gauge((point[0] - x, point[1] - y))
        return self.epsilon**2 / (2.0 * hull.area) * math.exp(-self.epsilon * gauge)

    def _pdf_batch(self, points: np.ndarray, cells: np.ndarray) -> np.ndarray:
        backend = self.array_backend
        centres = self.world.coords_array(cells)
        component = np.take(self._component_table, cells)
        out = np.empty((len(points), len(cells)))
        for index in np.unique(component):
            mask = component == index
            hull = self._hull_by_component[index]
            displacements = points[:, None, :] - centres[None, mask, :]
            gauges = hull.gauge_many(displacements)  # host geometry
            scale = self.epsilon**2 / (2.0 * hull.area)
            if backend.is_numpy:
                out[:, mask] = scale * np.exp(-self.epsilon * gauges)
            else:
                device = scale * backend.xp.exp(
                    -self.epsilon * backend.from_numpy(np.asarray(gauges))
                )
                out[:, mask] = np.asarray(backend.asnumpy(device), dtype=float)
        return out
