"""LP-optimal discrete PGLP mechanism (utility-optimality baseline).

For small location universes the utility-optimal ``{eps, G}``-private
mechanism with discrete output can be computed exactly as a linear program
(the classic construction behind optimal-LPPM work and the optimality
discussion of PIM [19]):

    minimise   sum_s prior(s) * sum_z p[s, z] * d_E(s, z)
    subject to sum_z p[s, z] = 1                          for every s
               p[s, z] <= e^eps * p[s', z]                for every edge (s, s'), every z
               p >= 0

Edge constraints suffice: chaining along shortest paths yields Lemma 2.1's
``eps * d_G`` bound for every connected pair.  The LP has ``n^2`` variables
per component, so this mechanism is gated by ``max_component_size`` — it is
an *ablation baseline* quantifying how close P-LM / P-PIM / graph-exponential
get to optimal, not a production path.

Requires scipy (an optional test dependency); importing this module without
scipy raises at construction time, not import time.
"""

from __future__ import annotations

import numpy as np

from repro.core.mechanisms.base import Mechanism
from repro.core.policy_graph import PolicyGraph
from repro.errors import MechanismError
from repro.geo.grid import GridWorld

__all__ = ["OptimalDiscreteMechanism"]


class OptimalDiscreteMechanism(Mechanism):
    """Exact utility-optimal discrete mechanism via linear programming.

    Parameters
    ----------
    world, graph, epsilon:
        As for every mechanism.
    prior:
        Optional weight over cells for the objective (defaults to uniform
        over each component); only its restriction to each component matters.
    max_component_size:
        Guard against accidentally solving an enormous LP; components larger
        than this raise :class:`~repro.errors.MechanismError`.
    """

    discrete = True

    def __init__(
        self,
        world: GridWorld,
        graph: PolicyGraph,
        epsilon: float,
        prior: np.ndarray | None = None,
        max_component_size: int = 64,
    ) -> None:
        super().__init__(world, graph, epsilon)
        try:
            from scipy.optimize import linprog  # noqa: F401
        except ImportError as exc:  # pragma: no cover - scipy ships in CI
            raise MechanismError("OptimalDiscreteMechanism requires scipy") from exc
        if prior is not None:
            prior = np.asarray(prior, dtype=float)
            if prior.shape != (world.n_cells,) or np.any(prior < 0):
                raise MechanismError("prior must be a non-negative vector over all cells")
        self._support: dict[int, tuple[int, ...]] = {}
        self._pmf_rows: dict[int, np.ndarray] = {}
        self._cmf_rows: dict[int, np.ndarray] = {}
        self._dense_rows: dict[int, np.ndarray] = {}
        for component in graph.components():
            if len(component) < 2:
                continue
            if len(component) > max_component_size:
                raise MechanismError(
                    f"component of size {len(component)} exceeds "
                    f"max_component_size={max_component_size}"
                )
            self._solve_component(sorted(component), prior)

    # ------------------------------------------------------------------
    def _solve_component(self, cells: list[int], prior: np.ndarray | None) -> None:
        from scipy import sparse
        from scipy.optimize import linprog

        n = len(cells)
        index = {cell: i for i, cell in enumerate(cells)}
        coords = self.world.coords_array(cells)
        diff = coords[:, None, :] - coords[None, :, :]
        distances = np.sqrt((diff**2).sum(axis=2))  # d_E(s, z)

        if prior is None:
            weights = np.full(n, 1.0 / n)
        else:
            weights = prior[cells]
            total = weights.sum()
            weights = np.full(n, 1.0 / n) if total <= 0 else weights / total

        # Variable p[s, z] is x[s * n + z].
        cost = (weights[:, None] * distances).ravel()

        grow = np.exp(self.epsilon)
        edges = [
            (index[u], index[v])
            for u, v in self.graph.edges()
            if u in index and v in index
        ]
        # Inequalities: p[u, z] - e^eps p[v, z] <= 0, both directions.
        n_rows = 2 * len(edges) * n
        data = np.empty(2 * n_rows)
        rows = np.empty(2 * n_rows, dtype=np.int64)
        cols = np.empty(2 * n_rows, dtype=np.int64)
        cursor = 0
        row = 0
        for u, v in edges:
            for z in range(n):
                for a, b in ((u, v), (v, u)):
                    rows[cursor], cols[cursor], data[cursor] = row, a * n + z, 1.0
                    cursor += 1
                    rows[cursor], cols[cursor], data[cursor] = row, b * n + z, -grow
                    cursor += 1
                    row += 1
        a_ub = sparse.coo_matrix((data, (rows, cols)), shape=(n_rows, n * n)).tocsr()
        b_ub = np.zeros(n_rows)

        # Equalities: each row of p sums to 1.
        eq_rows = np.repeat(np.arange(n), n)
        eq_cols = np.arange(n * n)
        a_eq = sparse.coo_matrix((np.ones(n * n), (eq_rows, eq_cols)), shape=(n, n * n)).tocsr()
        b_eq = np.ones(n)

        result = linprog(
            cost, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
            bounds=(0, None), method="highs",
        )
        if not result.success:  # pragma: no cover - the LP is always feasible
            raise MechanismError(f"optimal-mechanism LP failed: {result.message}")
        pmf = np.clip(result.x.reshape(n, n), 0.0, None)
        pmf /= pmf.sum(axis=1, keepdims=True)
        support = tuple(cells)
        for cell in cells:
            self._support[cell] = support
            self._pmf_rows[cell] = pmf[index[cell]]

    # ------------------------------------------------------------------
    def support(self, cell: int) -> tuple[int, ...]:
        """Candidate output cells for true cell ``cell``."""
        if cell not in self._support:
            raise MechanismError(f"cell {cell} is disclosable; no discrete support")
        return self._support[cell]

    def pmf(self, cell: int) -> np.ndarray:
        """Optimal release pmf over :meth:`support` for ``cell``."""
        if cell not in self._pmf_rows:
            raise MechanismError(f"cell {cell} is disclosable; no pmf defined")
        return self._pmf_rows[cell]

    def expected_error(self, cell: int) -> float:
        """Expected Euclidean release error at ``cell`` (the LP's objective row)."""
        support = self.support(cell)
        coords = self.world.coords_array(support)
        x, y = self.world.coords(cell)
        distances = np.sqrt(((coords - (x, y)) ** 2).sum(axis=1))
        return float(self.pmf(cell) @ distances)

    # ------------------------------------------------------------------
    def _cmf(self, cell: int) -> np.ndarray:
        cached = self._cmf_rows.get(cell)
        if cached is None:
            cached = np.cumsum(self._pmf_rows[cell])
            cached[-1] = 1.0  # guard against float drift at the top end
            self._cmf_rows[cell] = cached
        return cached

    def _perturb(self, cell: int, rng: np.random.Generator) -> np.ndarray:
        return self._perturb_batch(np.array([cell]), rng)[0]

    def _perturb_batch(
        self,
        cells: np.ndarray,
        rng: np.random.Generator,
        out: np.ndarray | None = None,
        workspace=None,
    ) -> np.ndarray:
        # One uniform per cell through the LP row's cumulative pmf; the
        # workspace path pools the uniform/choice buffers and writes the
        # centres in place (see GraphExponentialMechanism._perturb_batch).
        n = len(cells)
        if workspace is not None:
            u = workspace.buffer("opt_uniforms", n)
            rng.random(out=u)
            choices = workspace.int_buffer("opt_choices", n)
        else:
            u = rng.random(n)
            choices = np.empty(n, dtype=int)
        for i, cell in enumerate(cells):
            support = self._support[int(cell)]
            index = int(np.searchsorted(self._cmf(int(cell)), u[i], side="right"))
            choices[i] = support[min(index, len(support) - 1)]
        return self.world.coords_array(choices, out=out, workspace=workspace)

    def _pdf(self, point: np.ndarray, cell: int) -> float:
        released = self.world.snap(point)
        support = self._support[cell]
        try:
            position = support.index(released)
        except ValueError:
            return 0.0
        return float(self._pmf_rows[cell][position])

    def _dense_pmf(self, cell: int) -> np.ndarray:
        """Pmf scattered over all world cells (cached; LP rows are immutable)."""
        cached = self._dense_rows.get(cell)
        if cached is None:
            cached = np.zeros(self.world.n_cells)
            cached[list(self._support[cell])] = self._pmf_rows[cell]
            self._dense_rows[cell] = cached
        return cached

    def _pdf_batch(self, points: np.ndarray, cells: np.ndarray) -> np.ndarray:
        released = self.world.snap_batch(points)
        out = np.empty((len(points), len(cells)))
        for j, cell in enumerate(cells):
            out[:, j] = self._dense_pmf(int(cell))[released]
        return out
