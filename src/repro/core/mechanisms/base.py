"""Mechanism interface shared by all PGLP mechanisms and baselines.

A mechanism maps a true location (grid cell) to a *released* planar point.
Every implementation provides:

* :meth:`Mechanism.release` — draw a perturbed location;
* :meth:`Mechanism.pdf` — the release density (or pmf for discrete
  mechanisms), used by the Bayesian adversary and the analytic privacy tests;
* :meth:`Mechanism.is_exact` — whether the policy discloses a cell exactly
  (isolated policy nodes, Lemma 2.1's extreme case).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.policy_graph import PolicyGraph
from repro.errors import MechanismError
from repro.geo.grid import GridWorld
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_epsilon

__all__ = ["Release", "Mechanism"]


@dataclass(frozen=True)
class Release:
    """One perturbed location release.

    Attributes
    ----------
    point:
        The released planar coordinate ``(x, y)``.
    exact:
        True when the policy allowed exact disclosure of the true location
        (the release carries no noise).
    mechanism:
        Name of the producing mechanism, for experiment bookkeeping.
    epsilon:
        The privacy budget charged for this release (0 when ``exact`` —
        disclosure is a policy decision, not a budget expenditure).
    """

    point: tuple[float, float]
    exact: bool = False
    mechanism: str = ""
    epsilon: float = 0.0
    metadata: dict = field(default_factory=dict, compare=False)


class Mechanism(abc.ABC):
    """Base class for ``{epsilon, G}``-location-privacy mechanisms.

    Parameters
    ----------
    world:
        The grid world supplying node coordinates.
    graph:
        The location policy graph; must cover a subset of the world's cells.
    epsilon:
        Privacy budget per release.
    """

    #: Whether :meth:`pdf` is a probability *mass* function over cells
    #: (discrete output) rather than a planar density.
    discrete: bool = False

    def __init__(self, world: GridWorld, graph: PolicyGraph, epsilon: float) -> None:
        self.world = world
        self.graph = graph
        self.epsilon = check_epsilon(epsilon)
        outside = [node for node in graph.nodes if node not in world]
        if outside:
            raise MechanismError(
                f"policy graph {graph.name!r} has nodes outside the world: {sorted(outside)[:5]}"
            )

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return type(self).__name__

    def is_exact(self, cell: int) -> bool:
        """Whether the policy discloses ``cell`` without perturbation."""
        return self.graph.is_disclosable(cell)

    def release(self, cell: int, rng=None) -> Release:
        """Release a (possibly perturbed) location for true cell ``cell``."""
        if cell not in self.graph:
            raise MechanismError(f"cell {cell} is not covered by policy {self.graph.name!r}")
        if self.is_exact(cell):
            return Release(
                point=self.world.coords(cell),
                exact=True,
                mechanism=self.name,
                epsilon=0.0,
            )
        point = self._perturb(cell, ensure_rng(rng))
        return Release(
            point=(float(point[0]), float(point[1])),
            exact=False,
            mechanism=self.name,
            epsilon=self.epsilon,
        )

    def pdf(self, point: Sequence[float], cell: int) -> float:
        """Density (or pmf) of releasing ``point`` when the truth is ``cell``.

        Undefined for disclosable cells (their release is a Dirac mass);
        callers must branch on :meth:`is_exact` first.
        """
        if cell not in self.graph:
            raise MechanismError(f"cell {cell} is not covered by policy {self.graph.name!r}")
        if self.is_exact(cell):
            raise MechanismError(
                f"cell {cell} is disclosable; its release distribution is a point mass"
            )
        return self._pdf(np.asarray(point, dtype=float), cell)

    def pdf_vector(self, point: Sequence[float], cells: Sequence[int]) -> np.ndarray:
        """``pdf(point | cell)`` for many candidate cells (0 for exact cells).

        The Bayesian adversary calls this per observed release; exact cells
        get likelihood 0 because a continuous released point almost surely
        differs from any disclosed cell centre.
        """
        z = np.asarray(point, dtype=float)
        out = np.zeros(len(cells))
        for i, cell in enumerate(cells):
            if cell in self.graph and not self.is_exact(cell):
                out[i] = self._pdf(z, cell)
        return out

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _perturb(self, cell: int, rng: np.random.Generator) -> np.ndarray:
        """Draw a noisy release for a non-disclosable cell."""

    @abc.abstractmethod
    def _pdf(self, point: np.ndarray, cell: int) -> float:
        """Release density at ``point`` for a non-disclosable ``cell``."""

    def __repr__(self) -> str:
        return (
            f"{self.name}(epsilon={self.epsilon}, policy={self.graph.name!r}, "
            f"world={self.world.width}x{self.world.height})"
        )
