"""Mechanism interface shared by all PGLP mechanisms and baselines.

A mechanism maps a true location (grid cell) to a *released* planar point.
Every implementation provides:

* :meth:`Mechanism.release` — draw a perturbed location;
* :meth:`Mechanism.pdf` — the release density (or pmf for discrete
  mechanisms), used by the Bayesian adversary and the analytic privacy tests;
* :meth:`Mechanism.is_exact` — whether the policy discloses a cell exactly
  (isolated policy nodes, Lemma 2.1's extreme case).

Batched interface
-----------------
The scalar methods above are thin wrappers over two overridable hooks:

* :meth:`Mechanism._perturb_batch` — draw releases for many cells at once,
  returning an ``(n, 2)`` array;
* :meth:`Mechanism._pdf_batch` — evaluate the density on an ``(m, 2)`` grid
  of points against ``n`` cells at once, returning ``(m, n)``.

The base class provides generic Python-loop fallbacks, so subclasses only
need the scalar ``_perturb`` / ``_pdf``; the first-party mechanisms override
the batch hooks with true NumPy vectorization and delegate the scalar hooks
to singleton batches.  Because vectorized samplers consume uniforms from
``rng.random((n, k))`` blocks row by row, ``release_batch(cells, rng)``
draws *exactly* the stream that sequential ``release(cell, rng)`` calls
would — batching is a pure throughput optimisation, not a semantic change.
:meth:`release_batch` returns a :class:`ReleaseBatch` (structure-of-arrays),
and :meth:`pdf_matrix` is the batched likelihood the Bayesian adversary and
the HMM filter consume.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.core.policy_graph import PolicyGraph
from repro.core.workspace import RoundWorkspace
from repro.core.xp import NUMPY_BACKEND, ArrayBackend, resolve_array_backend
from repro.errors import MechanismError
from repro.geo.grid import GridWorld
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_epsilon

__all__ = ["Release", "ReleaseBatch", "Mechanism"]


@dataclass(frozen=True)
class Release:
    """One perturbed location release.

    Attributes
    ----------
    point:
        The released planar coordinate ``(x, y)``.
    exact:
        True when the policy allowed exact disclosure of the true location
        (the release carries no noise).
    mechanism:
        Name of the producing mechanism, for experiment bookkeeping.
    epsilon:
        The privacy budget charged for this release (0 when ``exact`` —
        disclosure is a policy decision, not a budget expenditure).
    """

    point: tuple[float, float]
    exact: bool = False
    mechanism: str = ""
    epsilon: float = 0.0
    metadata: dict = field(default_factory=dict, compare=False)


@dataclass(frozen=True)
class ReleaseBatch:
    """Many releases in structure-of-arrays layout.

    The batched counterpart of :class:`Release`, produced by
    :meth:`Mechanism.release_batch`.  Keeping the columns as flat arrays is
    what lets the server pipeline, the monitoring apps and the benchmarks
    stay allocation-free on the hot path; :meth:`to_releases` recovers the
    scalar records when object-per-release ergonomics are wanted.

    Attributes
    ----------
    points:
        ``(n, 2)`` released planar coordinates.
    exact:
        ``(n,)`` bool — True where the policy disclosed the cell exactly.
    epsilons:
        ``(n,)`` budget charged per release (0 where ``exact``).
    cells:
        ``(n,)`` the true cells the releases were drawn for.
    mechanism:
        Name of the producing mechanism.
    """

    points: np.ndarray
    exact: np.ndarray
    epsilons: np.ndarray
    cells: np.ndarray
    mechanism: str = ""

    def __post_init__(self) -> None:
        n = len(self.cells)
        if self.points.shape != (n, 2):
            raise MechanismError(
                f"points must have shape ({n}, 2), got {self.points.shape}"
            )
        if self.exact.shape != (n,) or self.epsilons.shape != (n,):
            raise MechanismError("exact and epsilons must be flat arrays over the batch")

    def __len__(self) -> int:
        return len(self.cells)

    def __getitem__(self, index: int) -> Release:
        i = int(index)
        return Release(
            point=(float(self.points[i, 0]), float(self.points[i, 1])),
            exact=bool(self.exact[i]),
            mechanism=self.mechanism,
            epsilon=float(self.epsilons[i]),
        )

    def __iter__(self) -> Iterator[Release]:
        return (self[i] for i in range(len(self)))

    def to_releases(self) -> list[Release]:
        """The batch as scalar :class:`Release` records (AoS view)."""
        return [self[i] for i in range(len(self))]


class Mechanism(abc.ABC):
    """Base class for ``{epsilon, G}``-location-privacy mechanisms.

    Parameters
    ----------
    world:
        The grid world supplying node coordinates.
    graph:
        The location policy graph; must cover a subset of the world's cells.
    epsilon:
        Privacy budget per release.
    """

    #: Whether :meth:`pdf` is a probability *mass* function over cells
    #: (discrete output) rather than a planar density.
    discrete: bool = False

    def __init__(self, world: GridWorld, graph: PolicyGraph, epsilon: float) -> None:
        self.world = world
        self.graph = graph
        self.epsilon = check_epsilon(epsilon)
        outside = [node for node in graph.nodes if node not in world]
        if outside:
            raise MechanismError(
                f"policy graph {graph.name!r} has nodes outside the world: {sorted(outside)[:5]}"
            )

    # ------------------------------------------------------------------
    # Array-backend seam
    # ------------------------------------------------------------------
    @property
    def array_backend(self) -> ArrayBackend:
        """The array backend the batched kernels compute on (default numpy)."""
        backend = getattr(self, "_array_backend", None)
        return backend if backend is not None else NUMPY_BACKEND

    @property
    def xp(self):
        """The live array namespace (``numpy`` unless a backend was set)."""
        return self.array_backend.xp

    def use_array_backend(self, backend) -> "Mechanism":
        """Route the batched kernels through a registry-named array backend.

        ``backend`` is a name (``"numpy"`` / ``"cupy"`` / ``"torch"``), a
        live :class:`~repro.core.xp.ArrayBackend`, or ``None`` (numpy).
        Uniform draws stay on the *numpy* generator regardless (the RNG
        stream contract), so a non-numpy backend changes floating-point
        rounding only: results are distributionally equivalent, while the
        numpy backend remains the bit-exact reference.  Returns ``self``
        for chaining.
        """
        self._array_backend = resolve_array_backend(backend)
        return self

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return type(self).__name__

    def is_exact(self, cell: int) -> bool:
        """Whether the policy discloses ``cell`` without perturbation."""
        return self.graph.is_disclosable(cell)

    def release(self, cell: int, rng=None) -> Release:
        """Release a (possibly perturbed) location for true cell ``cell``."""
        if cell not in self.graph:
            raise MechanismError(f"cell {cell} is not covered by policy {self.graph.name!r}")
        if self.is_exact(cell):
            return Release(
                point=self.world.coords(cell),
                exact=True,
                mechanism=self.name,
                epsilon=0.0,
            )
        point = self._perturb(cell, ensure_rng(rng))
        return Release(
            point=(float(point[0]), float(point[1])),
            exact=False,
            mechanism=self.name,
            epsilon=self.epsilon,
        )

    def pdf(self, point: Sequence[float], cell: int) -> float:
        """Density (or pmf) of releasing ``point`` when the truth is ``cell``.

        Undefined for disclosable cells (their release is a Dirac mass);
        callers must branch on :meth:`is_exact` first.
        """
        if cell not in self.graph:
            raise MechanismError(f"cell {cell} is not covered by policy {self.graph.name!r}")
        if self.is_exact(cell):
            raise MechanismError(
                f"cell {cell} is disclosable; its release distribution is a point mass"
            )
        return self._pdf(np.asarray(point, dtype=float), cell)

    def pdf_vector(self, point: Sequence[float], cells: Sequence[int]) -> np.ndarray:
        """``pdf(point | cell)`` for many candidate cells (0 for exact cells).

        The Bayesian adversary calls this per observed release; exact cells
        get likelihood 0 because a continuous released point almost surely
        differs from any disclosed cell centre.  This is a single-point view
        of :meth:`pdf_matrix`, so vectorized ``_pdf_batch`` overrides speed
        up every historical caller for free.
        """
        z = np.asarray(point, dtype=float).reshape(1, 2)
        return self.pdf_matrix(z, cells)[0]

    # ------------------------------------------------------------------
    # Batched interface
    # ------------------------------------------------------------------
    def release_batch(
        self,
        cells: Sequence[int],
        rng=None,
        workspace: "RoundWorkspace | None" = None,
    ) -> ReleaseBatch:
        """Release many (possibly perturbed) locations in one call.

        Semantically equivalent to ``[self.release(c, rng) for c in cells]``
        — including the consumed RNG stream, so a seeded batched run
        reproduces a seeded scalar run element-wise — but the noisy subset is
        drawn by :meth:`_perturb_batch`, which the first-party mechanisms
        vectorize.

        With ``workspace`` (a :class:`~repro.core.workspace.RoundWorkspace`)
        every output column and kernel temporary lives in the workspace's
        reused buffers instead of fresh allocations; the returned batch then
        holds *views* that the next workspace-backed call overwrites.
        Output is element-wise identical either way — uniforms are drawn
        with ``rng.random(out=...)``, which consumes the same stream as the
        allocating ``rng.random((n, k))``.
        """
        if not isinstance(cells, np.ndarray):
            cells = list(cells)
        cell_arr = np.asarray(cells, dtype=int)
        if cell_arr.ndim != 1:
            raise MechanismError(f"cells must be a flat sequence, got shape {cell_arr.shape}")
        n = len(cell_arr)
        covered, disclosed = self._coverage_masks()
        in_world = (cell_arr >= 0) & (cell_arr < self.world.n_cells)
        if not in_world.all():
            bad = cell_arr[~in_world]
            raise MechanismError(
                f"cell {int(bad[0])} is not covered by policy {self.graph.name!r}"
            )
        if not covered[cell_arr].all():
            bad = cell_arr[~covered[cell_arr]]
            raise MechanismError(
                f"cell {int(bad[0])} is not covered by policy {self.graph.name!r}"
            )
        if workspace is None or not self.array_backend.is_numpy:
            exact = disclosed[cell_arr]
            points = np.empty((n, 2), dtype=float)
            epsilons = np.where(exact, 0.0, self.epsilon)
        else:
            exact = np.take(disclosed, cell_arr, out=workspace.bool_buffer("release_exact", n))
            points = workspace.points_buffer("release_points", n)
            epsilons = workspace.buffer("release_epsilons", n)
            epsilons.fill(self.epsilon)
        has_exact = bool(exact.any())
        if has_exact:
            points[exact] = self.world.coords_array(cell_arr[exact])
            if workspace is not None and self.array_backend.is_numpy:
                epsilons[exact] = 0.0
            noisy = np.flatnonzero(~exact)
            if noisy.size:
                points[noisy] = self._perturb_batch(
                    cell_arr[noisy], ensure_rng(rng), workspace=workspace
                )
        elif n:
            # Hot path: nothing disclosed, so the kernel can write straight
            # into the full points view (allocation-free with a workspace).
            drawn = self._perturb_batch(
                cell_arr,
                ensure_rng(rng),
                out=points if workspace is not None and self.array_backend.is_numpy else None,
                workspace=workspace,
            )
            if drawn is not points:
                points[...] = drawn
        if workspace is not None:
            workspace.rounds_served += 1
        return ReleaseBatch(
            points=points,
            exact=exact,
            epsilons=epsilons,
            cells=cell_arr,
            mechanism=self.name,
        )

    def pdf_matrix(
        self, points, cells: Sequence[int] | None = None, dtype=None
    ) -> np.ndarray:
        """``(m, n)`` matrix of ``pdf(point_i | cell_j)``.

        Follows :meth:`pdf_vector` semantics (not :meth:`pdf`'s): cells
        outside the policy and disclosable cells contribute likelihood 0
        instead of raising, which is exactly what Bayesian inference wants.
        ``cells`` defaults to the whole world.

        ``dtype`` selects the output precision (default float64).  The
        float32 adversary mode passes ``np.float32`` so the downstream
        GEMMs run single precision; the density itself is still evaluated
        in float64 and rounded once on store, keeping the relative error
        within one float32 ulp (~1.2e-7) per entry.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise MechanismError(f"points must have shape (m, 2), got {pts.shape}")
        if cells is None:
            cell_arr = np.arange(self.world.n_cells)
            valid = self._world_pdf_mask()
        else:
            if not isinstance(cells, np.ndarray):
                cells = list(cells)
            cell_arr = np.asarray(cells, dtype=int)
            mask = self._world_pdf_mask()
            in_world = (cell_arr >= 0) & (cell_arr < self.world.n_cells)
            valid = np.zeros(len(cell_arr), dtype=bool)
            valid[in_world] = mask[cell_arr[in_world]]
        out = np.zeros((len(pts), len(cell_arr)), dtype=dtype if dtype is not None else float)
        index = np.flatnonzero(valid)
        if index.size:
            out[:, index] = self._pdf_batch(pts, cell_arr[index])
        return out

    def _coverage_masks(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached per-world-cell ``(covered, disclosed)`` boolean masks.

        Policy graphs are immutable after construction, so both masks are
        computed once *per (policy, world) pair* and shared by every
        mechanism instance built on that pair — they live next to the other
        per-pair construction caches on the graph (the P-LM delta cache,
        the P-PIM hull cache), so rebuilding a mechanism costs no mask
        recomputation.  ``disclosed`` goes through :meth:`is_exact`;
        mechanisms that *override* it (Geo-I never discloses) get an
        instance-level disclosed mask instead of polluting the shared
        cache.
        """
        cached = getattr(self, "_coverage_masks_cache", None)
        if cached is not None:
            return cached
        n = self.world.n_cells
        pair_cache = self.graph.__dict__.setdefault("_coverage_mask_cache", {})
        shared = pair_cache.get(self.world)
        if shared is None:
            covered = np.fromiter(
                (cell in self.graph for cell in range(n)), dtype=bool, count=n
            )
            graph_disclosed = np.fromiter(
                (covered[cell] and self.graph.is_disclosable(cell) for cell in range(n)),
                dtype=bool,
                count=n,
            )
            covered.setflags(write=False)
            graph_disclosed.setflags(write=False)
            shared = (covered, graph_disclosed)
            pair_cache[self.world] = shared
        covered, disclosed = shared
        if type(self).is_exact is not Mechanism.is_exact:
            disclosed = np.fromiter(
                (covered[cell] and self.is_exact(cell) for cell in range(n)),
                dtype=bool,
                count=n,
            )
            disclosed.setflags(write=False)
        cached = (covered, disclosed)
        self._coverage_masks_cache = cached
        return cached

    def _world_pdf_mask(self) -> np.ndarray:
        """Mask of world cells with a defined density (covered and noisy).

        Cached per instance — :meth:`pdf_matrix` is called once per
        adversary scoring round, and the mask never changes.
        """
        cached = getattr(self, "_world_pdf_mask_cache", None)
        if cached is None:
            covered, disclosed = self._coverage_masks()
            cached = covered & ~disclosed
            cached.setflags(write=False)
            self._world_pdf_mask_cache = cached
        return cached

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _perturb(self, cell: int, rng: np.random.Generator) -> np.ndarray:
        """Draw a noisy release for a non-disclosable cell."""

    @abc.abstractmethod
    def _pdf(self, point: np.ndarray, cell: int) -> float:
        """Release density at ``point`` for a non-disclosable ``cell``."""

    def _perturb_batch(
        self,
        cells: np.ndarray,
        rng: np.random.Generator,
        out: np.ndarray | None = None,
        workspace: RoundWorkspace | None = None,
    ) -> np.ndarray:
        """Draw noisy releases for many non-disclosable cells: ``(n, 2)``.

        Generic fallback: a Python loop over :meth:`_perturb`.  Vectorized
        mechanisms override this (and usually delegate ``_perturb`` back to a
        singleton batch so scalar and batched runs share one RNG stream).
        ``out`` (an ``(n, 2)`` float array) receives the draws in place when
        given; ``workspace`` pools the kernel temporaries.  Both are
        optional for overrides too — the fused path supplies them, the
        staged path does not, and results are element-wise identical.
        """
        if out is None:
            out = np.empty((len(cells), 2), dtype=float)
        for i, cell in enumerate(cells):
            out[i] = self._perturb(int(cell), rng)
        return out

    def _pdf_batch(self, points: np.ndarray, cells: np.ndarray) -> np.ndarray:
        """Density of each point under each non-disclosable cell: ``(m, n)``.

        Generic fallback: a Python double loop over :meth:`_pdf`.
        """
        out = np.empty((len(points), len(cells)), dtype=float)
        for j, cell in enumerate(cells):
            for i in range(len(points)):
                out[i, j] = self._pdf(points[i], int(cell))
        return out

    def __repr__(self) -> str:
        return (
            f"{self.name}(epsilon={self.epsilon}, policy={self.graph.name!r}, "
            f"world={self.world.width}x{self.world.height})"
        )
