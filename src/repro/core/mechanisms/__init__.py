"""``{epsilon, G}``-location-privacy mechanisms and DP baselines.

All mechanisms expose closed-form release densities, which is what lets the
test suite verify Definition 2.4 / Lemma 2.1 / Theorems 2.1-2.2 *analytically*
(no sampling slack) and lets the adversary module run exact Bayesian
inference.
"""

from repro.core.mechanisms.base import Mechanism, Release, ReleaseBatch
from repro.core.mechanisms.laplace import PolicyLaplaceMechanism
from repro.core.mechanisms.pim import PolicyPlanarIsotropicMechanism
from repro.core.mechanisms.exponential import GraphExponentialMechanism
from repro.core.mechanisms.optimal import OptimalDiscreteMechanism
from repro.core.mechanisms.baselines import (
    GeoIndistinguishabilityMechanism,
    LocationSetPIMechanism,
)

__all__ = [
    "Mechanism",
    "Release",
    "ReleaseBatch",
    "PolicyLaplaceMechanism",
    "PolicyPlanarIsotropicMechanism",
    "GraphExponentialMechanism",
    "OptimalDiscreteMechanism",
    "GeoIndistinguishabilityMechanism",
    "LocationSetPIMechanism",
]
