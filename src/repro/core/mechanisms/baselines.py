"""Baseline mechanisms the paper compares against / generalises.

* :class:`GeoIndistinguishabilityMechanism` — the planar Laplace mechanism of
  Andres et al. [5]: ``eps * d_E`` indistinguishability between *all* pairs of
  locations.  PGLP with policy G1 implies this guarantee (Theorem 2.1), so the
  baseline is both a comparator and a correctness oracle for the tests.
* :class:`LocationSetPIMechanism` — the Planar Isotropic Mechanism of Xiao &
  Xiong [19] for delta-Location Set Privacy, realised here as P-PIM over a
  complete policy graph on the location set (Theorem 2.2 states the
  equivalence in the other direction).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.core.mechanisms.base import Mechanism, Release
from repro.core.mechanisms.laplace import planar_laplace_pdf, planar_laplace_perturb
from repro.core.mechanisms.pim import PolicyPlanarIsotropicMechanism
from repro.core.policies import complete_policy, grid_policy, location_set_policy
from repro.core.policy_graph import PolicyGraph
from repro.geo.grid import GridWorld
from repro.utils.rng import ensure_rng

__all__ = ["GeoIndistinguishabilityMechanism", "LocationSetPIMechanism"]


class GeoIndistinguishabilityMechanism(Mechanism):
    """Planar Laplace with rate ``epsilon`` per unit of Euclidean distance.

    The budget parameter follows Geo-I's convention: two locations at
    Euclidean distance ``d`` are ``epsilon * d``-indistinguishable.  The
    policy graph attached to the mechanism is G1 (grid adjacency), recording
    the PGLP policy whose guarantee Geo-I matches on unit-spaced grids.
    """

    def __init__(self, world: GridWorld, epsilon: float, graph: PolicyGraph | None = None) -> None:
        super().__init__(world, graph if graph is not None else grid_policy(world), epsilon)

    def is_exact(self, cell: int) -> bool:
        """Geo-I never discloses: every location gets planar Laplace noise."""
        return False

    def _perturb(self, cell: int, rng: np.random.Generator) -> np.ndarray:
        return self._perturb_batch(np.array([cell]), rng)[0]

    def _perturb_batch(
        self,
        cells: np.ndarray,
        rng: np.random.Generator,
        out: np.ndarray | None = None,
        workspace=None,
    ) -> np.ndarray:
        # Same inverse-CDF planar Laplace as P-LM, at the constant Geo-I rate.
        n = len(cells)
        backend = self.array_backend
        if not backend.is_numpy:
            device = planar_laplace_perturb(
                backend.from_numpy(self.world.coords_array(cells)),
                self.epsilon,
                backend.from_numpy(rng.random((n, 3))),
                xp=backend.xp,
            )
            result = np.asarray(backend.asnumpy(device), dtype=float)
            if out is not None:
                out[...] = result
                return out
            return result
        if workspace is not None:
            centres = self.world.coords_array(
                cells, out=workspace.points_buffer("geoi_centres", n), workspace=workspace
            )
            u = workspace.buffer("geoi_uniforms", n, cols=3)
            rng.random(out=u)
            if out is None:
                out = workspace.points_buffer("geoi_points", n)
            return planar_laplace_perturb(centres, self.epsilon, u, out=out)
        return planar_laplace_perturb(
            self.world.coords_array(cells), self.epsilon, rng.random((n, 3)), out=out
        )

    def _pdf(self, point: np.ndarray, cell: int) -> float:
        x, y = self.world.coords(cell)
        distance = math.hypot(point[0] - x, point[1] - y)
        return self.epsilon**2 / (2.0 * math.pi) * math.exp(-self.epsilon * distance)

    def _pdf_batch(self, points: np.ndarray, cells: np.ndarray) -> np.ndarray:
        backend = self.array_backend
        if backend.is_numpy:
            return planar_laplace_pdf(points, self.world.coords_array(cells), self.epsilon)
        device = planar_laplace_pdf(
            backend.from_numpy(np.asarray(points, dtype=float)),
            backend.from_numpy(self.world.coords_array(cells)),
            self.epsilon,
            xp=backend.xp,
        )
        return np.asarray(backend.asnumpy(device), dtype=float)


class LocationSetPIMechanism(PolicyPlanarIsotropicMechanism):
    """Xiao-Xiong PIM over a (delta-)location set.

    Built as P-PIM with a complete policy over ``location_set``: the
    sensitivity hull equals the hull of pairwise differences of the set,
    which is exactly the sensitivity hull of delta-Location Set Privacy.
    """

    def __init__(
        self,
        world: GridWorld,
        location_set: Iterable[int],
        epsilon: float,
        embed_in_world: bool = False,
    ) -> None:
        cells = sorted({world.check_cell(c) for c in location_set})
        if embed_in_world:
            graph = location_set_policy(world, cells, include_rest=True, name="G2")
        else:
            graph = complete_policy(cells, name="G2")
        super().__init__(world, graph, epsilon)
        self.location_set = tuple(cells)

    def release(self, cell: int, rng=None) -> Release:
        """Release; single-cell location sets disclose (no indistinguishability pair).

        With ``embed_in_world=True`` cells outside the set are isolated policy
        nodes and therefore disclosed exactly — matching [19], where the
        adversary already knows the user is inside the delta-location set.
        """
        return super().release(cell, rng=ensure_rng(rng))
