"""P-LM: the policy-aware (planar) Laplace mechanism.

The paper's companion report adapts the Laplace mechanism to a policy graph.
Our instantiation calibrates planar Laplace noise to the **edge-wise Euclidean
sensitivity** of the connected component containing the true location:

    Delta(C) = max { d_E(s_i, s_j) : (s_i, s_j) in E(C) }

and releases ``z = x(s) + PlanarLaplace(rate = epsilon / Delta(C))``.  For any
1-neighbors ``s, s'`` (necessarily in the same component)::

    pdf(z|s) / pdf(z|s') <= exp((eps/Delta) * d_E(s, s')) <= exp(eps)

so Definition 2.4 holds, and chaining along shortest paths gives Lemma 2.1's
``eps * d_G`` guarantee for all connected pairs.  Because the privacy
constraint only ever compares locations *within* a component, calibrating
Delta per component is sound and strictly improves utility over a global
constant.  Isolated nodes are disclosable and released exactly by the base
class.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.mechanisms.base import Mechanism
from repro.core.policy_graph import PolicyGraph
from repro.errors import MechanismError
from repro.geo.grid import GridWorld

from repro.core.workspace import FUSED_TILE_ROWS

__all__ = ["PolicyLaplaceMechanism", "planar_laplace_perturb", "planar_laplace_pdf"]


def planar_laplace_perturb(
    centres: np.ndarray, rates, u: np.ndarray, out: np.ndarray | None = None, xp=np
) -> np.ndarray:
    """Vectorized planar-Laplace draws from a block of uniforms.

    Inverse CDF: the radius is Gamma(2, 1/rate) (sum of two exponentials),
    the angle uniform.  ``u`` is ``(n, 3)`` with one row of uniforms per
    release, so callers consuming ``rng.random((n, 3))`` keep the stream
    identical to scalar sequential draws.  Shared by P-LM (per-component
    rates) and the Geo-I baseline (one constant rate).

    With ``out`` (numpy only) the draw runs entirely through ``out=`` ufunc
    parameters, destroying ``u`` as scratch — the per-element operation
    sequence is unchanged, so results are bit-identical to the allocating
    path.  ``xp`` selects the array namespace for the allocating path
    (CuPy / torch tensors in, same kind out).
    """
    if out is None:
        radii = -(xp.log1p(-u[:, 0]) + xp.log1p(-u[:, 1])) / rates
        theta = 2.0 * math.pi * u[:, 2]
        return centres + radii[:, None] * xp.column_stack((xp.cos(theta), xp.sin(theta)))
    u0, u1, u2 = u[:, 0], u[:, 1], u[:, 2]
    np.negative(u0, out=u0)
    np.log1p(u0, out=u0)
    np.negative(u1, out=u1)
    np.log1p(u1, out=u1)
    np.add(u0, u1, out=u0)
    np.negative(u0, out=u0)
    np.divide(u0, rates, out=u0)  # u0 now holds the radii
    np.multiply(u2, 2.0 * math.pi, out=u2)  # u2 now holds theta
    np.cos(u2, out=out[:, 0])
    np.sin(u2, out=out[:, 1])
    out *= u[:, 0:1]
    out += centres
    return out


def planar_laplace_pdf(points: np.ndarray, centres: np.ndarray, rates, xp=np) -> np.ndarray:
    """``(m, n)`` planar-Laplace densities of points against cell centres."""
    distances = xp.hypot(
        points[:, None, 0] - centres[None, :, 0],
        points[:, None, 1] - centres[None, :, 1],
    )
    return rates**2 / (2.0 * math.pi) * xp.exp(-rates * distances)


class PolicyLaplaceMechanism(Mechanism):
    """Planar Laplace noise calibrated to per-component edge sensitivity."""

    def __init__(self, world: GridWorld, graph: PolicyGraph, epsilon: float) -> None:
        super().__init__(world, graph, epsilon)
        # Per-node edge sensitivity Delta(C) depends only on (world, graph),
        # not on epsilon, so it is cached on the (immutable) graph instance:
        # sweeping epsilons over a shared policy object pays the component
        # walk once and rebuilds only the epsilon-scaled rates.
        cache = graph.__dict__.setdefault("_plm_delta_cache", {})
        deltas = cache.get(world)
        if deltas is None:
            deltas = {}
            for component in graph.components():
                delta = self._edge_diameter(component)
                if delta is None:
                    continue  # singleton component: disclosable, no noise needed
                for node in component:
                    deltas[node] = delta
            cache[world] = deltas
        self._rate: dict[int, float] = {
            node: self.epsilon / delta for node, delta in deltas.items()
        }
        # Dense per-cell rate table for the batched kernels: replaces the
        # per-release Python dict walk with one np.take.  NaN marks
        # disclosable cells, which the batch paths never perturb.
        self._rate_table = np.full(world.n_cells, np.nan)
        for node, rate in self._rate.items():
            self._rate_table[node] = rate

    def _edge_diameter(self, component: frozenset[int]) -> float | None:
        """Longest Euclidean edge inside ``component`` (None if edgeless)."""
        longest = 0.0
        found = False
        for node in component:
            for nbr in self.graph.neighbors(node):
                if node < nbr:
                    found = True
                    longest = max(longest, self.world.distance(node, nbr))
        if not found:
            return None
        if longest <= 0:
            raise MechanismError("policy edge joins two coincident locations")
        return longest

    def noise_rate(self, cell: int) -> float:
        """The planar-Laplace rate ``epsilon / Delta(C)`` applied at ``cell``."""
        if cell not in self._rate:
            raise MechanismError(f"cell {cell} is disclosable; no noise rate defined")
        return self._rate[cell]

    def expected_error(self, cell: int) -> float:
        """Mean Euclidean error of the release at ``cell`` (= 2 / rate).

        The radial part of planar Laplace is Gamma(2, 1/rate), whose mean is
        ``2 / rate`` — handy for calibrating the tracing screen radius.
        """
        return 2.0 / self.noise_rate(cell)

    # ------------------------------------------------------------------
    def _rates_for(self, cells: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        return np.take(self._rate_table, cells, out=out)

    def _perturb(self, cell: int, rng: np.random.Generator) -> np.ndarray:
        return self._perturb_batch(np.array([cell]), rng)[0]

    def _perturb_batch(
        self,
        cells: np.ndarray,
        rng: np.random.Generator,
        out: np.ndarray | None = None,
        workspace=None,
    ) -> np.ndarray:
        n = len(cells)
        backend = self.array_backend
        if not backend.is_numpy:
            # Uniforms still come off the numpy generator (stream contract);
            # only the arithmetic moves to the device.
            device = planar_laplace_perturb(
                backend.from_numpy(self.world.coords_array(cells)),
                backend.from_numpy(self._rates_for(cells)),
                backend.from_numpy(rng.random((n, 3))),
                xp=backend.xp,
            )
            result = np.asarray(backend.asnumpy(device), dtype=float)
            if out is not None:
                out[...] = result
                return out
            return result
        if workspace is not None:
            if out is None:
                out = workspace.points_buffer("plm_points", n)
            # Stream the round through tile-sized scratch: the centre / rate
            # gathers and the uniform draws all land in the same small
            # buffers every tile, so the multi-pass kernel runs out of cache
            # and only ``out`` travels to RAM.  Draw order and per-element
            # ops are unchanged, so the output is bit-exact against the
            # allocating path on the same RNG stream.
            tile_rows = min(n, FUSED_TILE_ROWS)
            centres = workspace.points_buffer("plm_centres", tile_rows)
            rates = workspace.buffer("plm_rates", tile_rows)
            u = workspace.buffer("plm_uniforms", tile_rows, cols=3)
            for start in range(0, n, FUSED_TILE_ROWS):
                stop = min(start + FUSED_TILE_ROWS, n)
                m = stop - start
                tile_cells = cells[start:stop]
                self.world.coords_array(tile_cells, out=centres[:m])
                self._rates_for(tile_cells, out=rates[:m])
                rng.random(out=u[:m])
                planar_laplace_perturb(
                    centres[:m], rates[:m], u[:m], out=out[start:stop]
                )
            return out
        return planar_laplace_perturb(
            self.world.coords_array(cells),
            self._rates_for(cells),
            rng.random((n, 3)),
            out=out,
        )

    def _pdf(self, point: np.ndarray, cell: int) -> float:
        # Scalar closed form; pdf has no RNG stream to keep in sync, so the
        # math.* path stays for per-call speed.
        rate = self._rate[cell]
        x, y = self.world.coords(cell)
        distance = math.hypot(point[0] - x, point[1] - y)
        return rate**2 / (2.0 * math.pi) * math.exp(-rate * distance)

    def _pdf_batch(self, points: np.ndarray, cells: np.ndarray) -> np.ndarray:
        backend = self.array_backend
        if backend.is_numpy:
            return planar_laplace_pdf(
                points, self.world.coords_array(cells), self._rates_for(cells)
            )
        device = planar_laplace_pdf(
            backend.from_numpy(np.asarray(points, dtype=float)),
            backend.from_numpy(self.world.coords_array(cells)),
            backend.from_numpy(self._rates_for(cells)),
            xp=backend.xp,
        )
        return np.asarray(backend.asnumpy(device), dtype=float)
