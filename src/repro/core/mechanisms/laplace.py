"""P-LM: the policy-aware (planar) Laplace mechanism.

The paper's companion report adapts the Laplace mechanism to a policy graph.
Our instantiation calibrates planar Laplace noise to the **edge-wise Euclidean
sensitivity** of the connected component containing the true location:

    Delta(C) = max { d_E(s_i, s_j) : (s_i, s_j) in E(C) }

and releases ``z = x(s) + PlanarLaplace(rate = epsilon / Delta(C))``.  For any
1-neighbors ``s, s'`` (necessarily in the same component)::

    pdf(z|s) / pdf(z|s') <= exp((eps/Delta) * d_E(s, s')) <= exp(eps)

so Definition 2.4 holds, and chaining along shortest paths gives Lemma 2.1's
``eps * d_G`` guarantee for all connected pairs.  Because the privacy
constraint only ever compares locations *within* a component, calibrating
Delta per component is sound and strictly improves utility over a global
constant.  Isolated nodes are disclosable and released exactly by the base
class.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.mechanisms.base import Mechanism
from repro.core.policy_graph import PolicyGraph
from repro.errors import MechanismError
from repro.geo.grid import GridWorld

__all__ = ["PolicyLaplaceMechanism", "planar_laplace_perturb", "planar_laplace_pdf"]


def planar_laplace_perturb(
    centres: np.ndarray, rates, u: np.ndarray
) -> np.ndarray:
    """Vectorized planar-Laplace draws from a block of uniforms.

    Inverse CDF: the radius is Gamma(2, 1/rate) (sum of two exponentials),
    the angle uniform.  ``u`` is ``(n, 3)`` with one row of uniforms per
    release, so callers consuming ``rng.random((n, 3))`` keep the stream
    identical to scalar sequential draws.  Shared by P-LM (per-component
    rates) and the Geo-I baseline (one constant rate).
    """
    radii = -(np.log1p(-u[:, 0]) + np.log1p(-u[:, 1])) / rates
    theta = 2.0 * math.pi * u[:, 2]
    return centres + radii[:, None] * np.column_stack((np.cos(theta), np.sin(theta)))


def planar_laplace_pdf(points: np.ndarray, centres: np.ndarray, rates) -> np.ndarray:
    """``(m, n)`` planar-Laplace densities of points against cell centres."""
    distances = np.hypot(
        points[:, None, 0] - centres[None, :, 0],
        points[:, None, 1] - centres[None, :, 1],
    )
    return rates**2 / (2.0 * math.pi) * np.exp(-rates * distances)


class PolicyLaplaceMechanism(Mechanism):
    """Planar Laplace noise calibrated to per-component edge sensitivity."""

    def __init__(self, world: GridWorld, graph: PolicyGraph, epsilon: float) -> None:
        super().__init__(world, graph, epsilon)
        # Per-node edge sensitivity Delta(C) depends only on (world, graph),
        # not on epsilon, so it is cached on the (immutable) graph instance:
        # sweeping epsilons over a shared policy object pays the component
        # walk once and rebuilds only the epsilon-scaled rates.
        cache = graph.__dict__.setdefault("_plm_delta_cache", {})
        deltas = cache.get(world)
        if deltas is None:
            deltas = {}
            for component in graph.components():
                delta = self._edge_diameter(component)
                if delta is None:
                    continue  # singleton component: disclosable, no noise needed
                for node in component:
                    deltas[node] = delta
            cache[world] = deltas
        self._rate: dict[int, float] = {
            node: self.epsilon / delta for node, delta in deltas.items()
        }

    def _edge_diameter(self, component: frozenset[int]) -> float | None:
        """Longest Euclidean edge inside ``component`` (None if edgeless)."""
        longest = 0.0
        found = False
        for node in component:
            for nbr in self.graph.neighbors(node):
                if node < nbr:
                    found = True
                    longest = max(longest, self.world.distance(node, nbr))
        if not found:
            return None
        if longest <= 0:
            raise MechanismError("policy edge joins two coincident locations")
        return longest

    def noise_rate(self, cell: int) -> float:
        """The planar-Laplace rate ``epsilon / Delta(C)`` applied at ``cell``."""
        if cell not in self._rate:
            raise MechanismError(f"cell {cell} is disclosable; no noise rate defined")
        return self._rate[cell]

    def expected_error(self, cell: int) -> float:
        """Mean Euclidean error of the release at ``cell`` (= 2 / rate).

        The radial part of planar Laplace is Gamma(2, 1/rate), whose mean is
        ``2 / rate`` — handy for calibrating the tracing screen radius.
        """
        return 2.0 / self.noise_rate(cell)

    # ------------------------------------------------------------------
    def _rates_for(self, cells: np.ndarray) -> np.ndarray:
        return np.array([self._rate[int(cell)] for cell in cells])

    def _perturb(self, cell: int, rng: np.random.Generator) -> np.ndarray:
        return self._perturb_batch(np.array([cell]), rng)[0]

    def _perturb_batch(self, cells: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return planar_laplace_perturb(
            self.world.coords_array(cells),
            self._rates_for(cells),
            rng.random((len(cells), 3)),
        )

    def _pdf(self, point: np.ndarray, cell: int) -> float:
        # Scalar closed form; pdf has no RNG stream to keep in sync, so the
        # math.* path stays for per-call speed.
        rate = self._rate[cell]
        x, y = self.world.coords(cell)
        distance = math.hypot(point[0] - x, point[1] - y)
        return rate**2 / (2.0 * math.pi) * math.exp(-rate * distance)

    def _pdf_batch(self, points: np.ndarray, cells: np.ndarray) -> np.ndarray:
        return planar_laplace_pdf(
            points, self.world.coords_array(cells), self._rates_for(cells)
        )
