"""P-LM: the policy-aware (planar) Laplace mechanism.

The paper's companion report adapts the Laplace mechanism to a policy graph.
Our instantiation calibrates planar Laplace noise to the **edge-wise Euclidean
sensitivity** of the connected component containing the true location:

    Delta(C) = max { d_E(s_i, s_j) : (s_i, s_j) in E(C) }

and releases ``z = x(s) + PlanarLaplace(rate = epsilon / Delta(C))``.  For any
1-neighbors ``s, s'`` (necessarily in the same component)::

    pdf(z|s) / pdf(z|s') <= exp((eps/Delta) * d_E(s, s')) <= exp(eps)

so Definition 2.4 holds, and chaining along shortest paths gives Lemma 2.1's
``eps * d_G`` guarantee for all connected pairs.  Because the privacy
constraint only ever compares locations *within* a component, calibrating
Delta per component is sound and strictly improves utility over a global
constant.  Isolated nodes are disclosable and released exactly by the base
class.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.mechanisms.base import Mechanism
from repro.core.policy_graph import PolicyGraph
from repro.errors import MechanismError
from repro.geo.grid import GridWorld

__all__ = ["PolicyLaplaceMechanism"]


class PolicyLaplaceMechanism(Mechanism):
    """Planar Laplace noise calibrated to per-component edge sensitivity."""

    def __init__(self, world: GridWorld, graph: PolicyGraph, epsilon: float) -> None:
        super().__init__(world, graph, epsilon)
        self._rate: dict[int, float] = {}
        for component in graph.components():
            delta = self._edge_diameter(component)
            if delta is None:
                continue  # singleton component: disclosable, no noise needed
            rate = self.epsilon / delta
            for node in component:
                self._rate[node] = rate

    def _edge_diameter(self, component: frozenset[int]) -> float | None:
        """Longest Euclidean edge inside ``component`` (None if edgeless)."""
        longest = 0.0
        found = False
        for node in component:
            for nbr in self.graph.neighbors(node):
                if node < nbr:
                    found = True
                    longest = max(longest, self.world.distance(node, nbr))
        if not found:
            return None
        if longest <= 0:
            raise MechanismError("policy edge joins two coincident locations")
        return longest

    def noise_rate(self, cell: int) -> float:
        """The planar-Laplace rate ``epsilon / Delta(C)`` applied at ``cell``."""
        if cell not in self._rate:
            raise MechanismError(f"cell {cell} is disclosable; no noise rate defined")
        return self._rate[cell]

    def expected_error(self, cell: int) -> float:
        """Mean Euclidean error of the release at ``cell`` (= 2 / rate).

        The radial part of planar Laplace is Gamma(2, 1/rate), whose mean is
        ``2 / rate`` — handy for calibrating the tracing screen radius.
        """
        return 2.0 / self.noise_rate(cell)

    # ------------------------------------------------------------------
    def _perturb(self, cell: int, rng: np.random.Generator) -> np.ndarray:
        rate = self._rate[cell]
        radius = rng.gamma(shape=2.0, scale=1.0 / rate)
        theta = rng.uniform(0.0, 2.0 * math.pi)
        x, y = self.world.coords(cell)
        return np.array([x + radius * math.cos(theta), y + radius * math.sin(theta)])

    def _pdf(self, point: np.ndarray, cell: int) -> float:
        rate = self._rate[cell]
        x, y = self.world.coords(cell)
        distance = math.hypot(point[0] - x, point[1] - y)
        return rate**2 / (2.0 * math.pi) * math.exp(-rate * distance)
