"""The paper's primary contribution: PGLP — policy-graph location privacy.

This package contains the location policy graph (Definitions 2.1-2.3), the
``{epsilon, G}``-location-privacy mechanisms, policy builders for every graph
in the paper's figures, policy repair under feasibility constraints, and
privacy-budget accounting.
"""

from repro.core.policy_graph import PolicyGraph
from repro.core.policies import (
    grid_policy,
    complete_policy,
    area_policy,
    contact_tracing_policy,
    random_policy,
    full_disclosure_policy,
    location_set_policy,
)
from repro.core.mechanisms import (
    Mechanism,
    Release,
    ReleaseBatch,
    PolicyLaplaceMechanism,
    PolicyPlanarIsotropicMechanism,
    GraphExponentialMechanism,
    OptimalDiscreteMechanism,
    GeoIndistinguishabilityMechanism,
    LocationSetPIMechanism,
)
from repro.core.repair import restrict_policy, RepairReport
from repro.core.accounting import BudgetLedger
from repro.core.temporal import TemporalReleaser, TimestepRelease

__all__ = [
    "PolicyGraph",
    "grid_policy",
    "complete_policy",
    "area_policy",
    "contact_tracing_policy",
    "random_policy",
    "full_disclosure_policy",
    "location_set_policy",
    "Mechanism",
    "Release",
    "ReleaseBatch",
    "PolicyLaplaceMechanism",
    "PolicyPlanarIsotropicMechanism",
    "GraphExponentialMechanism",
    "OptimalDiscreteMechanism",
    "GeoIndistinguishabilityMechanism",
    "LocationSetPIMechanism",
    "restrict_policy",
    "RepairReport",
    "BudgetLedger",
    "TemporalReleaser",
    "TimestepRelease",
]
