"""Preallocated buffer pool for fused release rounds.

The staged hot path (``release_batch`` -> ``snap_batch`` -> ``area_of_batch``
-> flow coding) materialises a fresh intermediate array at every stage — a
dozen ``O(n)`` temporaries per round — so a 10M-release round is bound by
allocator traffic and memory bandwidth rather than arithmetic.  A
:class:`RoundWorkspace` is the cure: one named-buffer pool sized once per
``(users, horizon)`` and reused across rounds, through which every fused
kernel writes with ``out=`` ufunc parameters instead of allocating.

Buffer contract
---------------
``buffer(key, n)`` returns a length-``n`` view of a pooled array owned by
``key``; the same key always returns the *same* storage (grown geometrically
when ``n`` exceeds the pool), so a kernel that names its scratch buffers is
allocation-free from the second round on.  Keys are namespaced by caller
("plm_uniforms", "geo_scratch_f", "snapped", ...) — two kernels that run
*within one fused pass* must use distinct keys; kernels that run after one
another may share scratch keys.

Workspaces are **not** thread-safe: one workspace serves one release stream.
The shard workers keep one workspace per worker thread
(:func:`repro.engine.sharding._shard_workspace`), so concurrently executing
shards never alias buffers — asserted by the thread-backend stress test in
``tests/test_fused_round.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.geo.grid import FUSED_TILE_ROWS

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.core.mechanisms.base import ReleaseBatch

__all__ = ["RoundWorkspace", "FusedRound", "FUSED_TILE_ROWS"]


class RoundWorkspace:
    """Reusable named buffers for one fused release stream.

    Parameters
    ----------
    capacity:
        Initial row capacity.  Buffers grow geometrically when a larger
        round arrives, so undersizing costs one reallocation, not
        correctness.
    """

    def __init__(self, capacity: int = 0) -> None:
        self.capacity = max(int(capacity), 0)
        self._pool: dict[str, np.ndarray] = {}
        self.rounds_served = 0

    @classmethod
    def for_population(cls, n_users: int, horizon: int = 1) -> "RoundWorkspace":
        """Workspace sized for a run of ``n_users`` users over ``horizon``.

        Rounds are at most one release per user, and a shard worker's
        largest single batch is one user's whole trace (``horizon`` rows),
        so the larger of the two bounds every buffer request up front.
        """
        return cls(max(int(n_users), int(horizon), 1))

    # ------------------------------------------------------------------
    def buffer(self, key: str, n: int, dtype=float, cols: int = 0) -> np.ndarray:
        """A ``(n,)`` (or ``(n, cols)``) view of the pooled array for ``key``.

        The same key always maps to the same storage; dtype and column
        count are fixed by the first request for a key (changing them is a
        programming error and raises).  Contents are *not* cleared between
        requests — fused kernels overwrite every element they read.
        """
        n = int(n)
        shape = (n, cols) if cols else (n,)
        pooled = self._pool.get(key)
        if pooled is not None:
            expected_cols = pooled.shape[1] if pooled.ndim == 2 else 0
            if pooled.dtype != np.dtype(dtype) or expected_cols != cols:
                raise ValueError(
                    f"workspace buffer {key!r} was created with dtype="
                    f"{pooled.dtype}/cols={expected_cols}, requested "
                    f"dtype={np.dtype(dtype)}/cols={cols}"
                )
        if pooled is None or len(pooled) < n:
            size = max(n, self.capacity, 2 * len(pooled) if pooled is not None else 0)
            pooled = np.empty((size, cols) if cols else (size,), dtype=dtype)
            self._pool[key] = pooled
            self.capacity = max(self.capacity, size)
        return pooled[:n].reshape(shape)

    def int_buffer(self, key: str, n: int) -> np.ndarray:
        """Shorthand for an integer ``(n,)`` buffer (the cell-id dtype)."""
        return self.buffer(key, n, dtype=int)

    def bool_buffer(self, key: str, n: int) -> np.ndarray:
        """Shorthand for a boolean ``(n,)`` buffer (masks)."""
        return self.buffer(key, n, dtype=bool)

    def points_buffer(self, key: str, n: int) -> np.ndarray:
        """Shorthand for an ``(n, 2)`` float coordinate buffer."""
        return self.buffer(key, n, dtype=float, cols=2)

    # ------------------------------------------------------------------
    @property
    def keys(self) -> tuple[str, ...]:
        """Currently pooled buffer keys (diagnostics / aliasing tests)."""
        return tuple(sorted(self._pool))

    def owns(self, array: np.ndarray) -> bool:
        """Whether ``array`` is a view into this workspace's pool."""
        base = array.base if array.base is not None else array
        return any(pooled is base for pooled in self._pool.values())

    def nbytes(self) -> int:
        """Total bytes currently pooled."""
        return sum(pooled.nbytes for pooled in self._pool.values())

    def __repr__(self) -> str:
        return (
            f"RoundWorkspace(capacity={self.capacity}, buffers={len(self._pool)}, "
            f"nbytes={self.nbytes()})"
        )


@dataclass
class FusedRound:
    """The output views of one :meth:`PrivacyEngine.release_round_fused` pass.

    Every array is a **view into the workspace** (except when the caller
    supplied none, in which case a private workspace backs them): consume or
    copy the columns you keep before the next fused round overwrites them.
    ``batch`` carries the release columns in the usual
    :class:`~repro.core.mechanisms.ReleaseBatch` shape, so downstream
    consumers (``Server.ingest_batch``, the attacker) need no new types.

    ``flow_codes`` / ``flow_mask`` are present only when the round was asked
    to fuse flow coding (``users=`` / ``times=`` given alongside the block
    shape): ``flow_codes[i] = area[i] * n_areas + area[i+1]`` with
    ``flow_mask`` selecting consecutive same-user steps — exactly the codes
    :meth:`~repro.epidemic.monitor.LocationMonitor.flows_from_arrays`
    counts.
    """

    batch: "ReleaseBatch"
    snapped: np.ndarray
    areas: np.ndarray | None = None
    flow_codes: np.ndarray | None = None
    flow_mask: np.ndarray | None = None
    workspace: RoundWorkspace | None = field(default=None, repr=False)

    @property
    def points(self) -> np.ndarray:
        """``(n, 2)`` released coordinates (view)."""
        return self.batch.points

    @property
    def cells(self) -> np.ndarray:
        """``(n,)`` true cells the releases were drawn for (view)."""
        return self.batch.cells

    def __len__(self) -> int:
        return len(self.batch)
