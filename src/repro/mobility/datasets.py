"""Dataset registry, serialization, and summary statistics.

Gives the experiments a single entry point (``make_dataset``) mirroring the
paper's two evaluation datasets, plus JSON-lines persistence so generated
workloads can be frozen and replayed across benchmark runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

from repro.errors import DataError
from repro.geo.grid import GridWorld
from repro.mobility.synthetic import geolife_like, gowalla_like, random_waypoint
from repro.mobility.trajectory import CheckIn, TraceDB

__all__ = [
    "DATASETS",
    "make_dataset",
    "dataset_summary",
    "save_tracedb",
    "load_tracedb",
]

#: Registry of named dataset generators (name -> callable).
DATASETS: dict[str, Callable[..., TraceDB]] = {
    "geolife": geolife_like,
    "gowalla": gowalla_like,
    "random_waypoint": random_waypoint,
}


def make_dataset(name: str, world: GridWorld, rng=None, **kwargs) -> TraceDB:
    """Instantiate a named dataset over ``world``.

    ``name`` is one of ``"geolife"``, ``"gowalla"``, ``"random_waypoint"``
    (the synthetic stand-ins documented in DESIGN.md); extra keyword
    arguments flow to the generator.
    """
    try:
        generator = DATASETS[name]
    except KeyError:
        raise DataError(f"unknown dataset {name!r}; choose from {sorted(DATASETS)}") from None
    return generator(world, rng=rng, **kwargs)


def dataset_summary(db: TraceDB) -> dict:
    """Descriptive statistics used in experiment headers and EXPERIMENTS.md."""
    users = sorted(db.users())
    times = db.times()
    history_lengths = [len(db.user_history(user)) for user in users]
    distinct_cells = {checkin.cell for checkin in db.checkins()}
    return {
        "n_users": len(users),
        "n_checkins": len(db),
        "time_span": (times[0], times[-1]) if times else (None, None),
        "mean_history_length": (sum(history_lengths) / len(history_lengths)) if users else 0.0,
        "distinct_cells": len(distinct_cells),
    }


def save_tracedb(db: TraceDB, path: str | Path) -> None:
    """Write a trace database as JSON lines (one check-in per line)."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        for checkin in db.checkins():
            handle.write(
                json.dumps({"t": checkin.time, "u": checkin.user, "c": checkin.cell}) + "\n"
            )


def load_tracedb(path: str | Path) -> TraceDB:
    """Read a trace database written by :func:`save_tracedb`."""
    source = Path(path)
    if not source.exists():
        raise DataError(f"dataset file {source} does not exist")
    db = TraceDB()
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                db.add(CheckIn(time=int(record["t"]), user=int(record["u"]), cell=int(record["c"])))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise DataError(f"malformed check-in at {source}:{line_number}") from exc
    return db
