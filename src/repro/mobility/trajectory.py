"""Trajectories, check-ins, and the queryable trace database.

:class:`TraceDB` is the in-memory location database both sides of the system
use: clients hold their own 14-day window (Fig. 1 "Loc. DB"), the server
accumulates released locations, and the epidemic apps query co-locations —
the primitive behind the contact rule "two persons have been in the same
location at the same time at least twice" (Sec. 3.2).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.errors import DataError

__all__ = ["CheckIn", "Trajectory", "TraceDB"]


def _as_int_list(values) -> list[int]:
    """Plain Python ints from an array-like, for fast dict keys/values."""
    if isinstance(values, np.ndarray):
        return values.tolist()
    return [int(v) for v in values]


@dataclass(frozen=True, order=True)
class CheckIn:
    """One observation: ``user`` was in ``cell`` at time ``time``."""

    time: int
    user: int
    cell: int


class Trajectory:
    """A single user's time-ordered cell sequence.

    Parameters
    ----------
    user:
        User identifier.
    cells:
        Visited cells, one per timestep.
    start_time:
        Time of the first entry; subsequent entries are at ``start_time + i``.
    """

    def __init__(self, user: int, cells: Iterable[int], start_time: int = 0) -> None:
        self.user = int(user)
        self.cells = [int(c) for c in cells]
        if not self.cells:
            raise DataError(f"trajectory for user {user} is empty")
        self.start_time = int(start_time)

    @property
    def times(self) -> range:
        return range(self.start_time, self.start_time + len(self.cells))

    def at(self, time: int) -> int:
        """Cell occupied at ``time``; raises if outside the trajectory."""
        index = time - self.start_time
        if not 0 <= index < len(self.cells):
            raise DataError(f"user {self.user} has no location at time {time}")
        return self.cells[index]

    def window(self, start: int, end: int) -> "Trajectory":
        """Sub-trajectory with ``start <= time <= end`` (must be non-empty)."""
        lo = max(start, self.start_time)
        hi = min(end, self.start_time + len(self.cells) - 1)
        if lo > hi:
            raise DataError(f"window [{start}, {end}] misses user {self.user}'s trajectory")
        return Trajectory(
            self.user,
            self.cells[lo - self.start_time : hi - self.start_time + 1],
            start_time=lo,
        )

    def checkins(self) -> Iterator[CheckIn]:
        for offset, cell in enumerate(self.cells):
            yield CheckIn(time=self.start_time + offset, user=self.user, cell=cell)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[int]:
        return iter(self.cells)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trajectory):
            return NotImplemented
        return (
            self.user == other.user
            and self.cells == other.cells
            and self.start_time == other.start_time
        )

    def __repr__(self) -> str:
        return (
            f"Trajectory(user={self.user}, length={len(self.cells)}, "
            f"start_time={self.start_time})"
        )


class TraceDB:
    """Queryable collection of check-ins, indexed by time and by user."""

    def __init__(self, checkins: Iterable[CheckIn] = ()) -> None:
        self._by_time: dict[int, dict[int, int]] = defaultdict(dict)
        self._by_user: dict[int, dict[int, int]] = defaultdict(dict)
        self._count = 0
        for checkin in checkins:
            self.add(checkin)

    @classmethod
    def from_trajectories(cls, trajectories: Iterable[Trajectory]) -> "TraceDB":
        db = cls()
        for trajectory in trajectories:
            for checkin in trajectory.checkins():
                db.add(checkin)
        return db

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, checkin: CheckIn) -> None:
        """Insert one observation; re-adding the same (user, time) overwrites."""
        previous = self._by_user[checkin.user].get(checkin.time)
        if previous is None:
            self._count += 1
        self._by_time[checkin.time][checkin.user] = checkin.cell
        self._by_user[checkin.user][checkin.time] = checkin.cell

    def record(self, user: int, time: int, cell: int) -> None:
        """Convenience wrapper around :meth:`add`."""
        self.add(CheckIn(time=int(time), user=int(user), cell=int(cell)))

    def record_many(self, users, times, cells) -> None:
        """Bulk :meth:`record` over parallel arrays (batched-pipeline insert).

        Semantically ``for u, t, c in zip(...): self.record(u, t, c)``, but
        without per-row :class:`CheckIn` construction — this is how the
        batched release paths materialise a whole perturbed stream.
        """
        by_time = self._by_time
        by_user = self._by_user
        for user, time, cell in zip(_as_int_list(users), _as_int_list(times), _as_int_list(cells)):
            history = by_user[user]
            if time not in history:
                self._count += 1
            by_time[time][user] = cell
            history[time] = cell

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def users(self) -> frozenset[int]:
        return frozenset(self._by_user)

    def times(self) -> list[int]:
        return sorted(self._by_time)

    def at_time(self, time: int) -> dict[int, int]:
        """``{user: cell}`` snapshot at ``time`` (empty dict if none)."""
        return dict(self._by_time.get(time, {}))

    def location(self, user: int, time: int) -> int | None:
        return self._by_user.get(user, {}).get(time)

    def user_history(self, user: int, start: int | None = None, end: int | None = None) -> list[CheckIn]:
        """Time-ordered check-ins of ``user`` within ``[start, end]``."""
        history = self._by_user.get(user)
        if not history:
            return []
        items = sorted(history.items())
        return [
            CheckIn(time=t, user=user, cell=c)
            for t, c in items
            if (start is None or t >= start) and (end is None or t <= end)
        ]

    def cells_visited(self, user: int, start: int | None = None, end: int | None = None) -> set[int]:
        return {checkin.cell for checkin in self.user_history(user, start, end)}

    # ------------------------------------------------------------------
    # Co-location primitives (contact rule of Sec. 3.2)
    # ------------------------------------------------------------------
    def colocations_at(self, time: int) -> list[tuple[int, int, int]]:
        """All pairs sharing a cell at ``time``: ``(user_a, user_b, cell)``."""
        cell_groups: dict[int, list[int]] = defaultdict(list)
        for user, cell in self._by_time.get(time, {}).items():
            cell_groups[cell].append(user)
        pairs = []
        for cell, members in cell_groups.items():
            members.sort()
            for i, user_a in enumerate(members):
                for user_b in members[i + 1 :]:
                    pairs.append((user_a, user_b, cell))
        return pairs

    def colocation_count(self, user_a: int, user_b: int, start: int | None = None, end: int | None = None) -> int:
        """Number of timesteps ``user_a`` and ``user_b`` shared a cell."""
        hist_a = self._by_user.get(user_a, {})
        hist_b = self._by_user.get(user_b, {})
        if len(hist_b) < len(hist_a):
            hist_a, hist_b = hist_b, hist_a
        count = 0
        for time, cell in hist_a.items():
            if (start is None or time >= start) and (end is None or time <= end):
                if hist_b.get(time) == cell:
                    count += 1
        return count

    def contacts_of(self, user: int, min_count: int = 2, start: int | None = None, end: int | None = None) -> set[int]:
        """Users co-located with ``user`` at least ``min_count`` times.

        This is the paper's suspected-infection rule ("two persons have been
        the same location at the same time at least twice").
        """
        if user not in self._by_user:
            raise DataError(f"user {user} not in trace database")
        counts: dict[int, int] = defaultdict(int)
        for time, cell in self._by_user[user].items():
            if (start is not None and time < start) or (end is not None and time > end):
                continue
            for other, other_cell in self._by_time[time].items():
                if other != user and other_cell == cell:
                    counts[other] += 1
        return {other for other, n in counts.items() if n >= min_count}

    def total_colocation_events(self, start: int | None = None, end: int | None = None) -> int:
        """Total co-located (pair, time) events — the contact-rate numerator."""
        total = 0
        for time in self._by_time:
            if (start is not None and time < start) or (end is not None and time > end):
                continue
            total += len(self.colocations_at(time))
        return total

    # ------------------------------------------------------------------
    def checkins(self) -> Iterator[CheckIn]:
        for user, history in sorted(self._by_user.items()):
            for time, cell in sorted(history.items()):
                yield CheckIn(time=time, user=user, cell=cell)

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(users, times, cells)`` flat int arrays in :meth:`checkins` order.

        The structure-of-arrays view of the whole database (sorted by user,
        then time) that the vectorized evaluation layer consumes; row ``i`` of
        the three arrays is the ``i``-th check-in yielded by
        :meth:`checkins`.
        """
        n = self._count
        users = np.empty(n, dtype=int)
        times = np.empty(n, dtype=int)
        cells = np.empty(n, dtype=int)
        offset = 0
        for user, history in sorted(self._by_user.items()):
            items = sorted(history.items())
            stop = offset + len(items)
            users[offset:stop] = user
            times[offset:stop] = [time for time, _ in items]
            cells[offset:stop] = [cell for _, cell in items]
            offset = stop
        return users, times, cells

    def trajectory_of(self, user: int) -> Trajectory:
        """Contiguous trajectory of ``user`` (requires gap-free history)."""
        history = self.user_history(user)
        if not history:
            raise DataError(f"user {user} not in trace database")
        times = [checkin.time for checkin in history]
        if times != list(range(times[0], times[0] + len(times))):
            raise DataError(f"user {user} has gaps; use user_history instead")
        return Trajectory(user, [c.cell for c in history], start_time=times[0])

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return f"TraceDB(checkins={self._count}, users={len(self._by_user)})"
