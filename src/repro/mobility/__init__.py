"""Mobility substrate: trajectories, mobility models, and synthetic datasets.

Provides the data layer of PANDA: users' location histories (the local
"location DB" of Fig. 1), a first-order Markov mobility model with Bayesian
filtering (the machinery behind delta-location sets [19]), and synthetic
stand-ins for the Geolife and Gowalla datasets used by the demo.
"""

from repro.mobility.trajectory import CheckIn, Trajectory, TraceDB
from repro.mobility.markov import MarkovModel
from repro.mobility.hmm import BayesFilter, delta_location_set
from repro.mobility.synthetic import (
    geolife_like,
    gowalla_like,
    random_waypoint,
)
from repro.mobility.datasets import make_dataset, dataset_summary
from repro.mobility.stats import (
    radius_of_gyration,
    revisit_ratio,
    hotspot_share,
    mobility_summary,
)

__all__ = [
    "radius_of_gyration",
    "revisit_ratio",
    "hotspot_share",
    "mobility_summary",
    "CheckIn",
    "Trajectory",
    "TraceDB",
    "MarkovModel",
    "BayesFilter",
    "delta_location_set",
    "geolife_like",
    "gowalla_like",
    "random_waypoint",
    "make_dataset",
    "dataset_summary",
]
