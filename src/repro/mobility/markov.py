"""First-order Markov mobility model over grid cells.

Both the adversary's prior and the delta-location-set machinery of
Xiao-Xiong [19] assume user movement follows a (public) Markov transition
matrix.  The model here can be fit from trajectories, constructed as a lazy
random walk on the map, sampled, and iterated for Bayesian prediction.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import DataError, ValidationError
from repro.geo.grid import GridWorld
from repro.mobility.trajectory import Trajectory
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_probability

__all__ = ["MarkovModel"]


class MarkovModel:
    """Row-stochastic transition matrix over the cells of a grid world."""

    def __init__(self, world: GridWorld, transition: np.ndarray) -> None:
        matrix = np.asarray(transition, dtype=float)
        n = world.n_cells
        if matrix.shape != (n, n):
            raise ValidationError(f"transition must be ({n}, {n}), got {matrix.shape}")
        if np.any(matrix < -1e-12):
            raise ValidationError("transition probabilities must be non-negative")
        row_sums = matrix.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-8):
            raise ValidationError("transition rows must sum to 1")
        self.world = world
        self.transition = np.clip(matrix, 0.0, None)
        self.transition /= self.transition.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, world: GridWorld) -> "MarkovModel":
        """Every cell equally likely next — the least-informative prior."""
        n = world.n_cells
        return cls(world, np.full((n, n), 1.0 / n))

    @classmethod
    def lazy_walk(cls, world: GridWorld, p_stay: float = 0.5, connectivity: int = 8) -> "MarkovModel":
        """Lazy random walk: stay w.p. ``p_stay``, else uniform map neighbor."""
        check_probability("p_stay", p_stay)
        n = world.n_cells
        matrix = np.zeros((n, n))
        for cell in world:
            neighbors = world.neighbors(cell, connectivity=connectivity)
            matrix[cell, cell] += p_stay
            share = (1.0 - p_stay) / len(neighbors)
            for nbr in neighbors:
                matrix[cell, nbr] += share
        return cls(world, matrix)

    @classmethod
    def fit(
        cls,
        world: GridWorld,
        trajectories: Iterable[Trajectory],
        smoothing: float = 0.1,
        connectivity: int | None = 8,
    ) -> "MarkovModel":
        """Maximum-likelihood transitions with additive smoothing.

        ``connectivity`` restricts the smoothing mass to map-adjacent moves
        (plus staying), which keeps fitted models from leaking probability to
        teleport transitions; pass ``None`` to smooth over all cells.
        """
        if smoothing < 0:
            raise ValidationError(f"smoothing must be >= 0, got {smoothing}")
        n = world.n_cells
        counts = np.zeros((n, n))
        observed = 0
        for trajectory in trajectories:
            cells = trajectory.cells
            for src, dst in zip(cells, cells[1:]):
                counts[world.check_cell(src), world.check_cell(dst)] += 1.0
                observed += 1
        if observed == 0 and smoothing == 0:
            raise DataError("no transitions observed and smoothing is 0")
        if smoothing > 0:
            if connectivity is None:
                counts += smoothing
            else:
                for cell in world:
                    counts[cell, cell] += smoothing
                    for nbr in world.neighbors(cell, connectivity=connectivity):
                        counts[cell, nbr] += smoothing
        row_sums = counts.sum(axis=1, keepdims=True)
        zero_rows = (row_sums[:, 0] == 0)
        if np.any(zero_rows):
            counts[zero_rows] = 1.0  # unseen, unsmoothed cells: uniform fallback
            row_sums = counts.sum(axis=1, keepdims=True)
        return cls(world, counts / row_sums)

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def predict(self, prior: np.ndarray) -> np.ndarray:
        """One-step Chapman-Kolmogorov prediction ``prior @ P``."""
        probabilities = np.asarray(prior, dtype=float)
        if probabilities.shape != (self.world.n_cells,):
            raise ValidationError(
                f"prior must have shape ({self.world.n_cells},), got {probabilities.shape}"
            )
        return probabilities @ self.transition

    def stationary(self, tol: float = 1e-12, max_iter: int = 10_000) -> np.ndarray:
        """Stationary distribution by power iteration from uniform."""
        probabilities = np.full(self.world.n_cells, 1.0 / self.world.n_cells)
        for _ in range(max_iter):
            updated = probabilities @ self.transition
            if np.abs(updated - probabilities).max() < tol:
                return updated
            probabilities = updated
        return probabilities

    def sample_step(self, cell: int, rng=None) -> int:
        """Draw the next cell from the row of ``cell``."""
        generator = ensure_rng(rng)
        return int(generator.choice(self.world.n_cells, p=self.transition[self.world.check_cell(cell)]))

    def sample_trajectory(self, start: int, length: int, rng=None, user: int = 0, start_time: int = 0) -> Trajectory:
        """Sample a ``length``-step trajectory beginning at ``start``."""
        if length < 1:
            raise ValidationError(f"length must be >= 1, got {length}")
        generator = ensure_rng(rng)
        cells = [self.world.check_cell(start)]
        for _ in range(length - 1):
            cells.append(self.sample_step(cells[-1], rng=generator))
        return Trajectory(user, cells, start_time=start_time)

    def log_likelihood(self, trajectory: Trajectory) -> float:
        """Log-probability of a trajectory's transitions under the model."""
        total = 0.0
        for src, dst in zip(trajectory.cells, trajectory.cells[1:]):
            probability = self.transition[src, dst]
            if probability <= 0:
                return float("-inf")
            total += float(np.log(probability))
        return total
