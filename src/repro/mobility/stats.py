"""Mobility statistics used to validate the synthetic-dataset substitution.

DESIGN.md argues the synthetic Geolife/Gowalla stand-ins preserve the
statistics the experiments consume.  This module makes those statistics
first-class so the claim is *testable*: revisit structure (commuters),
radius of gyration (how far users roam), and hotspot concentration
(heavy-tailed venue popularity).
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.errors import DataError
from repro.geo.grid import GridWorld
from repro.mobility.trajectory import TraceDB

__all__ = [
    "radius_of_gyration",
    "revisit_ratio",
    "hotspot_share",
    "mobility_summary",
]


def radius_of_gyration(world: GridWorld, db: TraceDB, user: int) -> float:
    """RMS distance of a user's visits from their centre of mass.

    The standard human-mobility dispersion measure: commuters have small
    radii (home-work dumbbells), random-waypoint agents large ones.
    """
    history = db.user_history(user)
    if not history:
        raise DataError(f"user {user} not in trace database")
    points = world.coords_array([checkin.cell for checkin in history])
    centre = points.mean(axis=0)
    return float(math.sqrt(((points - centre) ** 2).sum(axis=1).mean()))


def revisit_ratio(db: TraceDB, user: int) -> float:
    """Fraction of a user's check-ins at already-visited cells.

    Near 1 for commuters (Geolife-like), lower for explorers.
    """
    history = db.user_history(user)
    if not history:
        raise DataError(f"user {user} not in trace database")
    seen: set[int] = set()
    revisits = 0
    for checkin in history:
        if checkin.cell in seen:
            revisits += 1
        seen.add(checkin.cell)
    return revisits / len(history)


def hotspot_share(db: TraceDB, top_fraction: float = 0.1) -> float:
    """Share of all check-ins landing in the most popular cells.

    ``top_fraction`` selects the top-k% most visited cells; a heavy-tailed
    (Gowalla-like) workload concentrates a large share there.
    """
    if not 0 < top_fraction <= 1:
        raise DataError(f"top_fraction must be in (0, 1], got {top_fraction}")
    counts = Counter(checkin.cell for checkin in db.checkins())
    if not counts:
        raise DataError("trace database is empty")
    frequencies = sorted(counts.values(), reverse=True)
    k = max(1, int(len(frequencies) * top_fraction))
    return sum(frequencies[:k]) / sum(frequencies)


def mobility_summary(world: GridWorld, db: TraceDB) -> dict[str, float]:
    """Population-level mobility profile (means over users)."""
    users = sorted(db.users())
    if not users:
        raise DataError("trace database is empty")
    gyrations = [radius_of_gyration(world, db, user) for user in users]
    revisits = [revisit_ratio(db, user) for user in users]
    return {
        "mean_radius_of_gyration": float(np.mean(gyrations)),
        "mean_revisit_ratio": float(np.mean(revisits)),
        "hotspot_share_top10pct": hotspot_share(db, 0.1),
        "n_users": float(len(users)),
    }
