"""Synthetic mobility generators standing in for Geolife and Gowalla.

The demo evaluates on the Geolife GPS trajectories [20] and Gowalla
check-ins [7]; neither ships with this offline reproduction, so we generate
synthetic data preserving the statistics the experiments consume (documented
in DESIGN.md):

* :func:`geolife_like` — dense commuter trajectories.  Each user has a home
  and a work anchor; movement is a schedule-driven walk (dwell at anchors,
  shortest-path commutes with jitter), giving the strong revisit structure
  and workplace co-locations that contact tracing and R0 estimation need.
* :func:`gowalla_like` — sparse check-ins with Zipf-distributed venue
  popularity and per-user hub sets, matching the heavy-tailed cell popularity
  of location-based social networks.
* :func:`random_waypoint` — the classic mobility baseline used for
  worst-case/ablation runs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.geo.grid import GridWorld
from repro.mobility.trajectory import CheckIn, Trajectory, TraceDB
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_integer, check_positive, check_probability

__all__ = ["geolife_like", "gowalla_like", "random_waypoint"]


def _grid_step_towards(world: GridWorld, cell: int, target: int, rng: np.random.Generator, jitter: float) -> int:
    """One 8-connected step from ``cell`` toward ``target`` with jitter.

    With probability ``jitter`` a uniformly random neighbor is taken instead
    of the greedy move, so commute paths vary day to day.
    """
    if cell == target:
        return cell
    if rng.random() < jitter:
        neighbors = world.neighbors(cell, connectivity=8)
        return int(rng.choice(neighbors))
    row, col = world.rowcol(cell)
    trow, tcol = world.rowcol(target)
    step_row = row + int(np.sign(trow - row))
    step_col = col + int(np.sign(tcol - col))
    return world.cell_of(step_row, step_col)


def geolife_like(
    world: GridWorld,
    n_users: int = 50,
    horizon: int = 14 * 24,
    rng=None,
    day_length: int = 24,
    work_start: int = 9,
    work_end: int = 17,
    jitter: float = 0.15,
    n_work_hubs: int | None = None,
) -> TraceDB:
    """Commuter trajectories with home/work anchors (Geolife stand-in).

    Parameters
    ----------
    horizon:
        Number of timesteps; default is 14 days of hourly samples — the
        paper's "past two weeks" window.
    day_length, work_start, work_end:
        Daily schedule in timesteps: users dwell at home outside
        ``[work_start, work_end)`` and at work inside it, commuting between.
    n_work_hubs:
        Number of distinct workplaces shared across users (default
        ``max(2, n_users // 8)``); shared hubs create the co-locations that
        drive contact tracing.
    """
    check_integer("n_users", n_users, minimum=1)
    check_integer("horizon", horizon, minimum=1)
    check_probability("jitter", jitter)
    if not 0 <= work_start < work_end <= day_length:
        raise ValidationError("need 0 <= work_start < work_end <= day_length")
    generator = ensure_rng(rng)
    hubs = n_work_hubs if n_work_hubs is not None else max(2, n_users // 8)
    check_integer("n_work_hubs", hubs, minimum=1)
    work_sites = generator.choice(world.n_cells, size=min(hubs, world.n_cells), replace=False)

    trajectories = []
    for user in range(n_users):
        home = int(generator.integers(world.n_cells))
        work = int(generator.choice(work_sites))
        cell = home
        cells = []
        for t in range(horizon):
            hour = t % day_length
            target = work if work_start <= hour < work_end else home
            cell = _grid_step_towards(world, cell, target, generator, jitter)
            cells.append(cell)
        trajectories.append(Trajectory(user, cells))
    return TraceDB.from_trajectories(trajectories)


def gowalla_like(
    world: GridWorld,
    n_users: int = 100,
    checkins_per_user: int = 40,
    horizon: int = 14 * 24,
    rng=None,
    zipf_exponent: float = 1.2,
    n_hubs_per_user: int = 5,
    p_hub: float = 0.7,
) -> TraceDB:
    """Sparse check-ins with Zipfian venue popularity (Gowalla stand-in).

    Cell popularity follows a Zipf law with exponent ``zipf_exponent`` over a
    random permutation of the grid.  Each user draws ``n_hubs_per_user``
    personal hubs from that popularity law and checks in at a hub with
    probability ``p_hub``, else at a popularity-weighted random cell.
    Check-in times are uniform over the horizon (at most one per timestep
    per user, like Gowalla's deduplicated feed).
    """
    check_integer("n_users", n_users, minimum=1)
    check_integer("checkins_per_user", checkins_per_user, minimum=1)
    check_integer("horizon", horizon, minimum=checkins_per_user)
    check_positive("zipf_exponent", zipf_exponent)
    check_integer("n_hubs_per_user", n_hubs_per_user, minimum=1)
    check_probability("p_hub", p_hub)
    generator = ensure_rng(rng)

    ranks = np.arange(1, world.n_cells + 1, dtype=float)
    popularity = ranks**-zipf_exponent
    popularity /= popularity.sum()
    cell_order = generator.permutation(world.n_cells)

    def popular_cell() -> int:
        return int(cell_order[generator.choice(world.n_cells, p=popularity)])

    db = TraceDB()
    for user in range(n_users):
        hub_count = min(n_hubs_per_user, world.n_cells)
        hub_cells = [popular_cell() for _ in range(hub_count)]
        times = generator.choice(horizon, size=checkins_per_user, replace=False)
        for time in sorted(times.tolist()):
            if generator.random() < p_hub:
                cell = int(generator.choice(hub_cells))
            else:
                cell = popular_cell()
            db.add(CheckIn(time=int(time), user=user, cell=cell))
    return db


def random_waypoint(
    world: GridWorld,
    n_users: int = 50,
    horizon: int = 14 * 24,
    rng=None,
    pause: int = 3,
) -> TraceDB:
    """Random-waypoint mobility: pick a waypoint, walk to it, pause, repeat."""
    check_integer("n_users", n_users, minimum=1)
    check_integer("horizon", horizon, minimum=1)
    check_integer("pause", pause, minimum=0)
    generator = ensure_rng(rng)
    trajectories = []
    for user in range(n_users):
        cell = int(generator.integers(world.n_cells))
        target = int(generator.integers(world.n_cells))
        resting = 0
        cells = []
        for _ in range(horizon):
            if cell == target:
                if resting < pause:
                    resting += 1
                else:
                    target = int(generator.integers(world.n_cells))
                    resting = 0
            cell = _grid_step_towards(world, cell, target, generator, jitter=0.0)
            cells.append(cell)
        trajectories.append(Trajectory(user, cells))
    return TraceDB.from_trajectories(trajectories)
