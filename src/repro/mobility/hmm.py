"""Bayesian filtering over releases and delta-location sets.

Implements the inference pipeline of delta-Location Set Privacy [19] on top
of any :class:`~repro.core.mechanisms.base.Mechanism`: the user's location is
a hidden Markov state, the mechanism's release is the observation, and the
filter alternates Chapman-Kolmogorov prediction with Bayesian updates using
the mechanism's closed-form density.  The **delta-location set** at each step
is the smallest set of most-probable cells covering ``1 - delta`` of the
predicted mass — the set the G2 policy protects.
"""

from __future__ import annotations

import numpy as np

from repro.core.mechanisms.base import Mechanism, Release
from repro.errors import ValidationError
from repro.mobility.markov import MarkovModel
from repro.utils.validation import check_probability

__all__ = ["delta_location_set", "BayesFilter"]


def delta_location_set(probabilities: np.ndarray, delta: float) -> set[int]:
    """Smallest set of highest-probability cells with mass >= 1 - delta.

    Ties are broken by cell id (ascending) for determinism.  ``delta = 0``
    returns the full support.
    """
    check_probability("delta", delta)
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1:
        raise ValidationError(f"probabilities must be 1-D, got shape {probs.shape}")
    if np.any(probs < -1e-12) or not np.isclose(probs.sum(), 1.0, atol=1e-6):
        raise ValidationError("probabilities must be a distribution")
    order = np.lexsort((np.arange(len(probs)), -probs))
    cumulative = 0.0
    chosen: set[int] = set()
    target = 1.0 - delta
    for cell in order:
        if probs[cell] <= 0 and chosen:
            break
        chosen.add(int(cell))
        cumulative += probs[cell]
        if cumulative >= target - 1e-12:
            break
    return chosen


class BayesFilter:
    """HMM filter tracking a user's location distribution across releases.

    Parameters
    ----------
    markov:
        The (public) mobility model supplying the prediction step.
    prior:
        Initial distribution over cells; defaults to the model's stationary
        distribution.
    """

    def __init__(self, markov: MarkovModel, prior: np.ndarray | None = None) -> None:
        self.markov = markov
        n = markov.world.n_cells
        if prior is None:
            self.probabilities = markov.stationary()
        else:
            probs = np.asarray(prior, dtype=float)
            if probs.shape != (n,) or np.any(probs < 0) or not np.isclose(probs.sum(), 1.0, atol=1e-6):
                raise ValidationError("prior must be a distribution over all cells")
            self.probabilities = probs / probs.sum()

    def predict(self) -> np.ndarray:
        """Advance one timestep without an observation; returns the new prior."""
        self.probabilities = self.markov.predict(self.probabilities)
        return self.probabilities

    def update(self, release: Release, mechanism: Mechanism) -> np.ndarray:
        """Condition on a released location; returns the posterior.

        Exact releases collapse the belief onto the disclosed cell.  Noisy
        releases multiply the prior by the mechanism density; disclosable
        cells get zero likelihood (an exact release would have matched a cell
        centre almost never hit by continuous noise).
        """
        n = self.markov.world.n_cells
        if release.exact:
            posterior = np.zeros(n)
            posterior[self.markov.world.snap(release.point)] = 1.0
            self.probabilities = posterior
            return posterior
        likelihood = mechanism.pdf_matrix(np.asarray(release.point, dtype=float))[0]
        posterior = self.probabilities * likelihood
        total = posterior.sum()
        if total <= 0:
            # Observation incompatible with the prior (e.g. pruned support):
            # fall back to the likelihood alone rather than dividing by zero.
            total = likelihood.sum()
            if total <= 0:
                raise ValidationError("release has zero likelihood everywhere")
            posterior = likelihood
        self.probabilities = posterior / total
        return self.probabilities

    def step(self, release: Release, mechanism: Mechanism) -> np.ndarray:
        """Predict then update — one full filtering step."""
        self.predict()
        return self.update(release, mechanism)

    def delta_set(self, delta: float) -> set[int]:
        """Delta-location set of the *current* belief (Xiao-Xiong's prior set)."""
        return delta_location_set(self.probabilities, delta)

    def map_estimate(self) -> int:
        """Most probable cell under the current belief."""
        return int(np.argmax(self.probabilities))
