"""Metapopulation SEIR driven by the location monitor's flow matrices.

The paper motivates location monitoring as the input to city-level epidemic
understanding: "people's movement between different cities or provinces ...
provides essential insights when combining with the incidence rate in each
city along with the people's movement" (Sec. 3.1).  This module closes that
loop: the inter-area flows produced by :class:`~repro.epidemic.monitor.
LocationMonitor` parameterise a metapopulation SEIR model — one S/E/I/R
compartment vector per coarse area, coupled by the observed mobility — and
the forecasting error between the true-flow and perturbed-flow models is the
end-to-end utility of the monitoring app.

The pipeline is fed by :func:`~repro.epidemic.monitor.perturbed_flows`,
whose ``shards=`` / ``backend=`` arguments scale the flow measurement over
metric shard plans: per-shard flow counters are integer
:class:`~collections.Counter` maps merged by exact addition (flows are
within-user transitions, so per-user shards partition them), and
:func:`forecast_from_flows` turns the merged counters into a forecast —
so a sharded E11 run forecasts from *bit-identical* flow matrices at any
shard count, on any execution backend.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "MetapopulationSEIR",
    "MetapopTrajectory",
    "flow_matrix",
    "forecast_divergence",
    "forecast_from_flows",
]


def flow_matrix(flows: Counter, n_areas: int) -> np.ndarray:
    """Row-stochastic mobility matrix from monitor flow counts.

    ``flows`` maps ``(src_area, dst_area) -> count`` (the output of
    :meth:`LocationMonitor.flows`); rows with no observations default to
    staying put.
    """
    if n_areas < 1:
        raise ValidationError(f"n_areas must be >= 1, got {n_areas}")
    matrix = np.zeros((n_areas, n_areas))
    for (src, dst), count in flows.items():
        if not (0 <= src < n_areas and 0 <= dst < n_areas):
            raise ValidationError(f"flow ({src}, {dst}) outside {n_areas} areas")
        if count < 0:
            raise ValidationError("flow counts must be non-negative")
        matrix[src, dst] += count
    row_sums = matrix.sum(axis=1)
    for area in range(n_areas):
        if row_sums[area] == 0:
            matrix[area, area] = 1.0
        else:
            matrix[area] /= row_sums[area]
    return matrix


@dataclass(frozen=True)
class MetapopTrajectory:
    """Per-area compartment time series, shape ``(steps+1, n_areas)`` each."""

    times: np.ndarray
    susceptible: np.ndarray
    exposed: np.ndarray
    infectious: np.ndarray
    recovered: np.ndarray

    @property
    def total_infectious(self) -> np.ndarray:
        """System-wide infectious curve (sum over areas)."""
        return self.infectious.sum(axis=1)

    def peak_time(self) -> float:
        """Time of the system-wide infectious peak."""
        return float(self.times[int(np.argmax(self.total_infectious))])


class MetapopulationSEIR:
    """Discrete-time SEIR over coupled areas.

    Each step: (1) epidemic transitions within each area with force of
    infection ``beta * I_a / N_a``; (2) a fraction ``mobility_rate`` of every
    compartment redistributes between areas according to the mobility matrix.

    Parameters
    ----------
    mobility:
        Row-stochastic ``(n_areas, n_areas)`` matrix (from :func:`flow_matrix`).
    beta, sigma, gamma:
        SEIR rates, as in :class:`~repro.epidemic.seir.SEIRModel`.
    mobility_rate:
        Fraction of each area's population moving per step (in [0, 1]).
    """

    def __init__(
        self,
        mobility: np.ndarray,
        beta: float,
        sigma: float,
        gamma: float,
        mobility_rate: float = 0.2,
    ) -> None:
        matrix = np.asarray(mobility, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValidationError(f"mobility must be square, got {matrix.shape}")
        if np.any(matrix < -1e-12) or not np.allclose(matrix.sum(axis=1), 1.0, atol=1e-8):
            raise ValidationError("mobility must be row-stochastic")
        self.mobility = np.clip(matrix, 0.0, None)
        self.n_areas = matrix.shape[0]
        self.beta = check_non_negative("beta", beta)
        self.sigma = check_positive("sigma", sigma)
        self.gamma = check_positive("gamma", gamma)
        if not 0.0 <= mobility_rate <= 1.0:
            raise ValidationError(f"mobility_rate must be in [0, 1], got {mobility_rate}")
        self.mobility_rate = mobility_rate

    def simulate(
        self,
        populations: np.ndarray,
        seed_area: int,
        seed_infectious: float = 1.0,
        steps: int = 100,
    ) -> MetapopTrajectory:
        """Run the coupled dynamics from one seeded area."""
        pops = np.asarray(populations, dtype=float)
        if pops.shape != (self.n_areas,) or np.any(pops < 0):
            raise ValidationError("populations must be non-negative, one per area")
        if not 0 <= seed_area < self.n_areas:
            raise ValidationError(f"seed_area {seed_area} out of range")
        check_non_negative("seed_infectious", seed_infectious)
        if steps < 1:
            raise ValidationError(f"steps must be >= 1, got {steps}")

        susceptible = pops.copy()
        exposed = np.zeros(self.n_areas)
        infectious = np.zeros(self.n_areas)
        recovered = np.zeros(self.n_areas)
        infectious[seed_area] = min(seed_infectious, susceptible[seed_area])
        susceptible[seed_area] -= infectious[seed_area]

        history = np.empty((steps + 1, 4, self.n_areas))
        history[0] = (susceptible, exposed, infectious, recovered)
        move = self.mobility_rate
        stay = 1.0 - move
        for step in range(1, steps + 1):
            totals = susceptible + exposed + infectious + recovered
            with np.errstate(divide="ignore", invalid="ignore"):
                force = np.where(totals > 0, self.beta * infectious / totals, 0.0)
            new_exposed = np.minimum(force, 1.0) * susceptible
            new_infectious = self.sigma * exposed
            new_recovered = self.gamma * infectious
            susceptible = susceptible - new_exposed
            exposed = exposed + new_exposed - new_infectious
            infectious = infectious + new_infectious - new_recovered
            recovered = recovered + new_recovered
            # Mobility mixing: a `move` fraction redistributes along the matrix.
            susceptible = stay * susceptible + move * (susceptible @ self.mobility)
            exposed = stay * exposed + move * (exposed @ self.mobility)
            infectious = stay * infectious + move * (infectious @ self.mobility)
            recovered = stay * recovered + move * (recovered @ self.mobility)
            history[step] = (susceptible, exposed, infectious, recovered)

        return MetapopTrajectory(
            times=np.arange(steps + 1, dtype=float),
            susceptible=history[:, 0],
            exposed=history[:, 1],
            infectious=history[:, 2],
            recovered=history[:, 3],
        )


def forecast_from_flows(
    flows: Counter,
    n_areas: int,
    populations,
    beta: float,
    sigma: float,
    gamma: float,
    mobility_rate: float = 0.2,
    seed_area: int | None = None,
    steps: int = 100,
) -> MetapopTrajectory:
    """Fit-and-run: flow counts -> mobility matrix -> metapop SEIR forecast.

    The one-call form of the E11 pipeline's tail, consuming exactly what
    :func:`~repro.epidemic.monitor.perturbed_flows` (sharded or not)
    produces.  ``seed_area`` defaults to the most populous area — the
    harness's seeding convention — and ``populations`` is one head count per
    coarse area.  Deterministic: the same flow counters always forecast the
    same trajectory, which is what lets the sharded flow path claim
    end-to-end E11 invariance.
    """
    pops = np.asarray(populations, dtype=float)
    model = MetapopulationSEIR(
        flow_matrix(flows, n_areas),
        beta=beta,
        sigma=sigma,
        gamma=gamma,
        mobility_rate=mobility_rate,
    )
    if seed_area is None:
        seed_area = int(np.argmax(pops))
    return model.simulate(pops, seed_area=seed_area, steps=steps)


def forecast_divergence(
    reference: MetapopTrajectory,
    candidate: MetapopTrajectory,
    per_area: bool = True,
) -> float:
    """Normalised L1 distance between two forecast infectious curves.

    With ``per_area=True`` (default) the distance is taken over the full
    ``(time, area)`` surface — the quantity the mobility matrix actually
    shapes: *when the wave reaches each area*.  With ``per_area=False`` only
    the system-wide total curves are compared (nearly invariant to mixing
    when areas are homogeneous, kept for ablation).  0 means the
    perturbed-flow model forecasts exactly like the true-flow model.
    """
    if per_area:
        a = reference.infectious
        b = candidate.infectious
    else:
        a = reference.total_infectious
        b = candidate.total_infectious
    if a.shape != b.shape:
        raise ValidationError("trajectories must have equal shape")
    denominator = np.abs(a).sum()
    if denominator == 0:
        return float(np.abs(b).sum())
    return float(np.abs(a - b).sum() / denominator)
