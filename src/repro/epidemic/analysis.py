"""Epidemic analysis: contact rates and R0 estimation (Fig. 3, App 2).

The demo measures "the accuracy of transmission model estimation using the
difference between R0 estimated over accurate locations and the perturbed
locations" (Sec. 3.2).  Two estimators are provided:

* **contact-based**: ``R0 = p_transmit * c * D`` where ``c`` is the mean
  number of co-locations per user per timestep measured from the traces and
  ``D = 1/gamma`` the mean infectious period — the classic
  contacts x transmissibility x duration decomposition;
* **SEIR-fit**: recover beta by least squares on the aggregate incidence
  curve (see :mod:`repro.epidemic.seir`) and report ``beta / gamma``.

Both can be evaluated on the true trace database or on a perturbed copy
produced by :func:`perturb_tracedb`, giving the paper's utility metric
``|R0_true - R0_perturbed|``.
"""

from __future__ import annotations

import numpy as np

from repro.core.mechanisms.base import Mechanism
from repro.epidemic.seir import fit_beta
from repro.errors import DataError
from repro.geo.grid import GridWorld
from repro.mobility.trajectory import TraceDB
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "contact_rate",
    "estimate_r0_contacts",
    "estimate_r0_seir",
    "perturb_tracedb",
    "r0_estimation_error",
]


def contact_rate(db: TraceDB, start: int | None = None, end: int | None = None) -> float:
    """Mean co-locations per user per timestep.

    The numerator counts each co-located unordered pair once per timestep and
    attributes it to both members (factor 2); the denominator is the number
    of (user, time) observations in the window.
    """
    times = db.times()
    if start is not None:
        times = [t for t in times if t >= start]
    if end is not None:
        times = [t for t in times if t <= end]
    if not times:
        raise DataError("window contains no observations")
    pair_events = 0
    observations = 0
    for time in times:
        snapshot = db.at_time(time)
        observations += len(snapshot)
        pair_events += len(db.colocations_at(time))
    if observations == 0:
        raise DataError("window contains no observations")
    return 2.0 * pair_events / observations


def estimate_r0_contacts(
    db: TraceDB,
    p_transmit: float,
    gamma: float,
    start: int | None = None,
    end: int | None = None,
) -> float:
    """Contact-based basic reproduction number ``p * c * (1/gamma)``."""
    check_probability("p_transmit", p_transmit)
    check_positive("gamma", gamma)
    return p_transmit * contact_rate(db, start=start, end=end) / gamma


def estimate_r0_seir(
    incidence: np.ndarray,
    population: float,
    sigma: float,
    gamma: float,
    initial_infectious: float = 1.0,
) -> float:
    """SEIR-fit reproduction number: least-squares beta over gamma."""
    beta = fit_beta(
        incidence,
        population=population,
        sigma=sigma,
        gamma=gamma,
        initial_infectious=initial_infectious,
    )
    return beta / gamma


def perturb_tracedb(
    world: GridWorld,
    mechanism: Mechanism,
    db: TraceDB,
    rng=None,
) -> TraceDB:
    """Release every check-in through ``mechanism`` and snap back to cells.

    This is what the semi-honest server actually stores (Fig. 1): the
    perturbed, re-discretised location stream that every downstream app —
    monitoring, analysis, tracing baselines — consumes.
    """
    generator = ensure_rng(rng)
    released = TraceDB()
    if len(db) == 0:
        return released
    # One vectorized engine-style call over the whole stream; the checkin
    # order matches a scalar release loop, so a seeded batched run equals a
    # seeded scalar run of the same mechanism.
    users, times, cells = db.to_arrays()
    batch = mechanism.release_batch(cells, rng=generator)
    released.record_many(users, times, world.snap_batch(batch.points))
    return released


def r0_estimation_error(
    world: GridWorld,
    mechanism: Mechanism,
    true_db: TraceDB,
    p_transmit: float,
    gamma: float,
    rng=None,
) -> tuple[float, float, float]:
    """``(R0_true, R0_perturbed, |difference|)`` with the contact estimator.

    Experiment E2's inner loop: the same estimator is applied to the true
    traces and to a perturbed copy, so the reported error isolates the effect
    of the privacy mechanism (not estimator bias).
    """
    perturbed = perturb_tracedb(world, mechanism, true_db, rng=rng)
    r0_true = estimate_r0_contacts(true_db, p_transmit=p_transmit, gamma=gamma)
    r0_perturbed = estimate_r0_contacts(perturbed, p_transmit=p_transmit, gamma=gamma)
    return r0_true, r0_perturbed, abs(r0_true - r0_perturbed)
