"""Epidemic analysis: contact rates and R0 estimation (Fig. 3, App 2).

The demo measures "the accuracy of transmission model estimation using the
difference between R0 estimated over accurate locations and the perturbed
locations" (Sec. 3.2).  Two estimators are provided:

* **contact-based**: ``R0 = p_transmit * c * D`` where ``c`` is the mean
  number of co-locations per user per timestep measured from the traces and
  ``D = 1/gamma`` the mean infectious period — the classic
  contacts x transmissibility x duration decomposition;
* **SEIR-fit**: recover beta by least squares on the aggregate incidence
  curve (see :mod:`repro.epidemic.seir`) and report ``beta / gamma``.

Both can be evaluated on the true trace database or on a perturbed copy
produced by :func:`perturb_tracedb`, giving the paper's utility metric
``|R0_true - R0_perturbed|``.

Both the contact-rate estimator and :func:`r0_estimation_error` also scale
*across users*: passing ``shards=`` / ``backend=`` partitions the population
with the same deterministic :class:`~repro.engine.sharding.ShardPlan` the
release pipeline uses and folds per-shard **epoch-keyed occupancy counters**
(``(time, cell) -> head count``) with the exact Counter merge of
:mod:`repro.engine.distributed`.  The decomposition rests on a counting
identity: the number of co-located unordered pairs at one ``(time, cell)``
epoch is ``n * (n - 1) / 2`` where ``n`` is the occupancy, so per-user
occupancy counters — which partition exactly, every user living in one
shard — reassemble the global pair count without ever enumerating a
cross-shard pair.  ``contact_rate`` involves no randomness, so its sharded
value equals the scalar loop *exactly*; ``r0_estimation_error`` with
``shards=`` switches to per-**user** RNG streams (the release pipeline's
layout), making the result bit-identical for every shard count and backend,
though deliberately not equal to the unsharded single-stream draw.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.mechanisms.base import Mechanism
from repro.epidemic.seir import fit_beta
from repro.errors import DataError, ValidationError
from repro.geo.grid import GridWorld
from repro.mobility.trajectory import TraceDB
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "contact_rate",
    "estimate_r0_contacts",
    "estimate_r0_seir",
    "pair_events",
    "perturb_tracedb",
    "r0_estimation_error",
]


def pair_events(occupancy: Counter) -> int:
    """Co-located unordered pair events implied by an occupancy counter.

    ``occupancy`` maps ``(time, cell)`` epochs to head counts; each epoch
    with ``n`` occupants contributes ``n * (n - 1) / 2`` pairs.  Integer
    arithmetic, so the value is independent of how the underlying per-user
    observations were sharded before the counters merged.
    """
    return sum(count * (count - 1) // 2 for count in occupancy.values())


def _occupancy_rate(occupancy: Counter, observations: int) -> float:
    """``2 * pair_events / observations`` — the contact-rate estimator."""
    if observations == 0:
        raise DataError("window contains no observations")
    return 2.0 * pair_events(occupancy) / observations


# ----------------------------------------------------------------------
# Shard-parallel path (E2 over ShardPlan + ExecutionBackend)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _OccupancyShardTask:
    """One shard's occupancy workload: its users' (windowed) traces.

    Plain data plus an optional release source, so process backends can
    pickle it; ``source`` is ``None`` for the deterministic true-trace
    counters (:func:`contact_rate`), an :class:`~repro.engine.EngineRef`
    for spec-built engines (workers rebuild and cache by spec hash), or the
    live mechanism.  ``times[i]`` / ``cells[i]`` are user ``users[i]``'s
    check-ins in time order.
    """

    source: object | None
    users: tuple[int, ...]
    seeds: tuple[int, ...]
    times: tuple[tuple[int, ...], ...]
    cells: tuple[tuple[int, ...], ...]
    batched: bool


def _score_occupancy_shard(task: _OccupancyShardTask):
    """Epoch-keyed occupancy counters for one shard (module-level for pickling).

    The true counter tallies ``(time, cell)`` occupancy over the shard's own
    users.  With a release source, each user's whole trace is additionally
    released from that user's own seed stream (one vectorized
    ``release_batch`` call, or the scalar per-release loop when
    ``task.batched`` is false — same stream, so the same points to float
    identity), snapped, and tallied into the perturbed counter.  Counts are
    per-user observation counts, so ``n_releases`` is the window's
    observation total after the merge.
    """
    from repro.engine import resolve_release_source
    from repro.engine.distributed import MetricShardResult

    counts = np.array([len(user_cells) for user_cells in task.cells], dtype=int)
    true_occupancy: Counter = Counter()
    for user_times, user_cells in zip(task.times, task.cells):
        true_occupancy.update(zip(user_times, user_cells))
    flows = {"true_occupancy": true_occupancy}

    if task.source is not None:
        source = resolve_release_source(task.source)
        world = source.world
        perturbed_occupancy: Counter = Counter()
        for seed, user_times, user_cells in zip(task.seeds, task.times, task.cells):
            if not user_cells:
                continue
            generator = np.random.default_rng(seed)
            if task.batched:
                batch = source.release_batch(list(user_cells), rng=generator)
                snapped = world.snap_batch(batch.points).tolist()
            else:  # scalar reference: same stream, one release() per check-in
                snapped = [
                    world.snap(source.release(cell, rng=generator).point)
                    for cell in user_cells
                ]
            perturbed_occupancy.update(zip(user_times, snapped))
        flows["perturbed_occupancy"] = perturbed_occupancy

    return MetricShardResult(sums={}, counts=counts, flows=flows)


def _occupancy_tasks(
    db: TraceDB,
    plan,
    source,
    batched: bool,
    start: int | None = None,
    end: int | None = None,
) -> list[_OccupancyShardTask]:
    """One picklable :class:`_OccupancyShardTask` per non-empty shard."""
    tasks = []
    for _, users, seeds in plan.iter_shards():
        histories = [db.user_history(user, start=start, end=end) for user in users]
        tasks.append(
            _OccupancyShardTask(
                source=source,
                users=users,
                seeds=seeds,
                times=tuple(tuple(c.time for c in history) for history in histories),
                cells=tuple(tuple(c.cell for c in history) for history in histories),
                batched=batched,
            )
        )
    return tasks


def _contact_rate_sharded(
    db: TraceDB, start, end, shards: int | None, backend
) -> float:
    """:func:`contact_rate` over ``ShardPlan`` + ``ExecutionBackend``."""
    from repro.engine import ShardPlan
    from repro.engine.distributed import sharded_metric

    users = sorted(db.users())
    if not users:
        raise DataError("window contains no observations")
    # The estimator draws no randomness; the plan's per-user seeds are unused,
    # so a fixed parent seed keeps the plan itself deterministic.
    plan = ShardPlan.build(users, 1 if shards is None else int(shards), rng=0)
    tasks = _occupancy_tasks(db, plan, None, batched=True, start=start, end=end)
    merged = sharded_metric(_score_occupancy_shard, tasks, backend=backend)
    return _occupancy_rate(merged.flows["true_occupancy"], merged.n_releases)


def contact_rate(
    db: TraceDB,
    start: int | None = None,
    end: int | None = None,
    shards: int | None = None,
    backend=None,
) -> float:
    """Mean co-locations per user per timestep.

    The numerator counts each co-located unordered pair once per timestep and
    attributes it to both members (factor 2); the denominator is the number
    of (user, time) observations in the window.

    ``shards`` / ``backend`` (default ``None`` / ``None``: the single-process
    loop below) route the count over a per-user
    :class:`~repro.engine.sharding.ShardPlan` and the named
    :class:`~repro.engine.backends.ExecutionBackend`, folding epoch-keyed
    occupancy counters exactly — the estimator is deterministic, so the
    sharded value **equals the scalar loop exactly** at any shard count.
    """
    if shards is not None or backend is not None:
        return _contact_rate_sharded(db, start, end, shards, backend)
    times = db.times()
    if start is not None:
        times = [t for t in times if t >= start]
    if end is not None:
        times = [t for t in times if t <= end]
    if not times:
        raise DataError("window contains no observations")
    pair_count = 0
    observations = 0
    for time in times:
        snapshot = db.at_time(time)
        observations += len(snapshot)
        pair_count += len(db.colocations_at(time))
    if observations == 0:
        raise DataError("window contains no observations")
    return 2.0 * pair_count / observations


def estimate_r0_contacts(
    db: TraceDB,
    p_transmit: float,
    gamma: float,
    start: int | None = None,
    end: int | None = None,
) -> float:
    """Contact-based basic reproduction number ``p * c * (1/gamma)``."""
    check_probability("p_transmit", p_transmit)
    check_positive("gamma", gamma)
    return p_transmit * contact_rate(db, start=start, end=end) / gamma


def estimate_r0_seir(
    incidence: np.ndarray,
    population: float,
    sigma: float,
    gamma: float,
    initial_infectious: float = 1.0,
) -> float:
    """SEIR-fit reproduction number: least-squares beta over gamma."""
    beta = fit_beta(
        incidence,
        population=population,
        sigma=sigma,
        gamma=gamma,
        initial_infectious=initial_infectious,
    )
    return beta / gamma


def perturb_tracedb(
    world: GridWorld,
    mechanism: Mechanism,
    db: TraceDB,
    rng=None,
) -> TraceDB:
    """Release every check-in through ``mechanism`` and snap back to cells.

    This is what the semi-honest server actually stores (Fig. 1): the
    perturbed, re-discretised location stream that every downstream app —
    monitoring, analysis, tracing baselines — consumes.
    """
    generator = ensure_rng(rng)
    released = TraceDB()
    if len(db) == 0:
        return released
    # One vectorized engine-style call over the whole stream; the checkin
    # order matches a scalar release loop, so a seeded batched run equals a
    # seeded scalar run of the same mechanism.
    users, times, cells = db.to_arrays()
    batch = mechanism.release_batch(cells, rng=generator)
    released.record_many(users, times, world.snap_batch(batch.points))
    return released


def _r0_estimation_error_sharded(
    world: GridWorld,
    mechanism,
    true_db: TraceDB,
    p_transmit: float,
    gamma: float,
    rng,
    batched: bool,
    shards: int | None,
    backend,
) -> tuple[float, float, float]:
    """E2 over ``ShardPlan`` + ``ExecutionBackend`` (see ``r0_estimation_error``)."""
    from repro.engine import EngineRef, ShardPlan
    from repro.engine.distributed import sharded_metric

    # Workers score against the release source's own world; refuse a
    # mismatched explicit world instead of silently diverging from the
    # unsharded path (which uses the passed world throughout).
    if mechanism.world != world:
        raise ValidationError("mechanism was built for a different world")
    users = sorted(true_db.users())
    if not users:
        raise DataError("window contains no observations")
    plan = ShardPlan.build(users, 1 if shards is None else int(shards), rng=rng)
    tasks = _occupancy_tasks(true_db, plan, EngineRef.wrap(mechanism), batched=batched)
    merged = sharded_metric(_score_occupancy_shard, tasks, backend=backend)
    # The perturbed copy keeps every (user, time) key, so one observation
    # total serves both estimators — exactly as in the scalar path.
    observations = merged.n_releases
    r0_true = p_transmit * _occupancy_rate(merged.flows["true_occupancy"], observations) / gamma
    r0_perturbed = (
        p_transmit * _occupancy_rate(merged.flows["perturbed_occupancy"], observations) / gamma
    )
    return r0_true, r0_perturbed, abs(r0_true - r0_perturbed)


def r0_estimation_error(
    world: GridWorld,
    mechanism: Mechanism,
    true_db: TraceDB,
    p_transmit: float,
    gamma: float,
    rng=None,
    batched: bool = True,
    shards: int | None = None,
    backend=None,
) -> tuple[float, float, float]:
    """``(R0_true, R0_perturbed, |difference|)`` with the contact estimator.

    Experiment E2's inner loop: the same estimator is applied to the true
    traces and to a perturbed copy, so the reported error isolates the effect
    of the privacy mechanism (not estimator bias).

    ``shards`` / ``backend`` (default ``None`` / ``None``: the single-stream
    path below) partition the population over a per-user
    :class:`~repro.engine.sharding.ShardPlan` + backend and fold epoch-keyed
    occupancy counters exactly, so the sharded triple is **bit-identical for
    every shard count and backend** — ``R0_true`` additionally equals the
    unsharded value exactly (no randomness), while ``R0_perturbed`` follows
    the per-user-stream layout (each individually reproducible, the two
    layouts deliberately unequal, as everywhere in the sharded pipeline).
    ``batched=False`` runs the per-shard scalar per-release reference loop
    on the same per-user streams; the unsharded path is always batched.
    """
    if shards is not None or backend is not None:
        check_probability("p_transmit", p_transmit)
        check_positive("gamma", gamma)
        return _r0_estimation_error_sharded(
            world, mechanism, true_db, p_transmit, gamma, rng, batched, shards, backend
        )
    perturbed = perturb_tracedb(world, mechanism, true_db, rng=rng)
    r0_true = estimate_r0_contacts(true_db, p_transmit=p_transmit, gamma=gamma)
    r0_perturbed = estimate_r0_contacts(perturbed, p_transmit=p_transmit, gamma=gamma)
    return r0_true, r0_perturbed, abs(r0_true - r0_perturbed)
