"""Contact tracing with dynamic policy graphs (Fig. 3, App 3; Sec. 3.2).

The demo's tracing procedure, reproduced end to end:

1. Every user shares perturbed locations under a base policy; the server
   stores the snapped stream.
2. A patient is diagnosed at time ``T``.  Under the patient policy ("allowing
   to disclose a user's true locations of the past two weeks if she is a
   diagnosed coronavirus patient") the server learns the patient's true
   trace for the window ``[T - window + 1, T]``.
3. The Policy Graph Configuration module derives the infected (cell, time)
   set and **updates the location privacy policy** of users at risk: the
   tracing policy Gc isolates infected cells, making them disclosable.
4. Users screened as candidates (perturbed location within ``screen_radius``
   of an infected cell at the matching time) re-send their window under Gc;
   wherever they truly visited an infected cell the release is exact.
5. The server applies the suspected-infection rule — "two persons have been
   the same location at the same time at least twice" — on the disclosed
   co-locations and flags contacts.

Ground truth is the same rule evaluated on the true traces, so the outcome
reports precision/recall/F1 of the privacy-preserving procedure plus its
communication and privacy cost.

The protocol also scales *across users*: ``protocol.run(..., shards=k,
backend="process")`` partitions the non-patient population with the same
deterministic :class:`~repro.engine.sharding.ShardPlan` the release pipeline
uses.  Every step of the procedure is per-user once the patient's infected
``(cell, time)`` set is known — a user's original stream, candidate screen,
re-send, flag decision, and ground-truth contact status depend only on their
own trace, their own RNG stream, and the (shared, deterministic) infected
set — so each shard returns **per-user contact-event sets** (candidates /
flagged / true contacts) that merge by disjoint union, plus per-user re-send
budget sums.  Sharded outcomes are bit-identical for every shard count and
execution backend; like every sharded evaluator they follow the per-user
stream layout rather than the unsharded protocol's single shared stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.accounting import BudgetLedger
from repro.core.mechanisms.base import Mechanism
from repro.core.policies import contact_tracing_policy
from repro.core.policy_graph import PolicyGraph
from repro.errors import TracingError, ValidationError
from repro.geo.distance import euclidean
from repro.geo.grid import GridWorld
from repro.mobility.trajectory import TraceDB
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_integer, check_positive

__all__ = ["TracingOutcome", "ContactTracingProtocol", "static_tracing"]

MechanismFactory = Callable[[GridWorld, PolicyGraph, float], Mechanism]


# ----------------------------------------------------------------------
# Shard-parallel path (E3 over ShardPlan + ExecutionBackend)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _TracingShardTask:
    """One shard's tracing workload: its users' windowed traces and streams.

    Plain data plus the two release sources (base policy and Gc), so process
    backends can pickle it; sources are
    :class:`~repro.engine.EngineRef`-wrapped (spec-built engines travel as
    spec hashes, live mechanisms as themselves).  ``infected`` is the
    patient's disclosed ``(cell, time)`` set — shared, deterministic input
    to every shard.  ``times[i]`` / ``cells[i]`` are user ``users[i]``'s
    in-window check-ins in time order.
    """

    base_source: object
    tracing_source: object
    users: tuple[int, ...]
    seeds: tuple[int, ...]
    times: tuple[tuple[int, ...], ...]
    cells: tuple[tuple[int, ...], ...]
    infected: tuple[tuple[int, int], ...]
    radius: float
    min_count: int
    batched: bool


def _score_tracing_shard(task: _TracingShardTask):
    """Run the tracing procedure for one shard's users (module-level for pickling).

    Each user's whole window rides their own seed stream: first the original
    release under the base policy (screened against the infected set), then —
    candidates only — the Gc re-send, continuing the *same* generator.  Every
    decision (candidacy, flag, ground-truth contact) is a pure function of
    the user's own trace, their stream, and the shared infected set, so the
    per-user event sets merge by disjoint union.  ``task.batched`` selects
    vectorized ``release_batch`` draws or the scalar per-release reference
    loop — same streams, so the same points to float identity.
    """
    from repro.engine import resolve_release_source
    from repro.engine.distributed import MetricShardResult

    base = resolve_release_source(task.base_source)
    tracing = resolve_release_source(task.tracing_source)
    world = base.world
    infected_pairs = set(task.infected)
    patient_at = {time: cell for cell, time in task.infected}
    centers_by_time: dict[int, list] = {}
    for cell, time in task.infected:
        centers_by_time.setdefault(time, []).append(world.coords(cell))

    n_users = len(task.users)
    epsilon_sums = np.zeros(n_users, dtype=float)
    resend_counts = np.zeros(n_users, dtype=int)
    candidates: set[int] = set()
    flagged: set[int] = set()
    true_contacts: set[int] = set()

    for index, (user, seed, user_times, user_cells) in enumerate(
        zip(task.users, task.seeds, task.times, task.cells)
    ):
        if not user_cells:
            continue
        # Ground truth: the co-location rule against the patient's true trace.
        colocations = sum(
            1
            for time, cell in zip(user_times, user_cells)
            if patient_at.get(time) == cell
        )
        if colocations >= task.min_count:
            true_contacts.add(user)

        # Step 1: the original stream under the base policy, own stream.
        generator = np.random.default_rng(seed)
        if task.batched:
            batch = base.release_batch(list(user_cells), rng=generator)
            released_cells = world.snap_batch(batch.points).tolist()
        else:  # scalar reference: same stream, one release() per check-in
            released_cells = [
                world.snap(base.release(cell, rng=generator).point)
                for cell in user_cells
            ]

        # Step 4a: candidate screen on the released (snapped) stream.
        if not any(
            any(
                euclidean(world.coords(cell), center) <= task.radius
                for center in centers_by_time.get(time, ())
            )
            for time, cell in zip(user_times, released_cells)
        ):
            continue
        candidates.add(user)

        # Step 4b/5: re-send the window under Gc (same generator, continued)
        # and apply the suspected-infection rule.  Budget is charged up
        # front, as in the scalar ledger path: exactness is a policy
        # property, known before any noise is drawn.
        epsilon_sums[index] = sum(
            0.0 if tracing.is_exact(cell) else tracing.epsilon for cell in user_cells
        )
        resend_counts[index] = len(user_cells)
        if task.batched:
            resend = tracing.release_batch(list(user_cells), rng=generator)
            snapped = world.snap_batch(resend.points).tolist()
            exact = resend.exact.tolist()
        else:
            releases = [tracing.release(cell, rng=generator) for cell in user_cells]
            snapped = [world.snap(release.point) for release in releases]
            exact = [release.exact for release in releases]
        hits = sum(
            1
            for is_exact, cell, time in zip(exact, snapped, user_times)
            if is_exact and (cell, time) in infected_pairs
        )
        if hits >= task.min_count:
            flagged.add(user)

    return MetricShardResult(
        sums={"epsilon_spent": epsilon_sums},
        counts=resend_counts,
        flows={},
        sets={
            "candidates": frozenset(candidates),
            "flagged": frozenset(flagged),
            "true_contacts": frozenset(true_contacts),
        },
    )


@dataclass(frozen=True)
class TracingOutcome:
    """Result of one tracing run against ground truth.

    ``flagged`` are users the protocol identified as at-risk contacts;
    ``true_contacts`` is the ground-truth set under the same co-location
    rule; ``candidates`` is everyone asked to re-send (communication cost);
    ``epsilon_spent`` is the total extra budget charged for re-sends.
    """

    flagged: frozenset[int]
    true_contacts: frozenset[int]
    candidates: frozenset[int]
    epsilon_spent: float = 0.0
    policy_name: str = ""

    @property
    def true_positives(self) -> int:
        return len(self.flagged & self.true_contacts)

    @property
    def precision(self) -> float:
        return self.true_positives / len(self.flagged) if self.flagged else 1.0

    @property
    def recall(self) -> float:
        return self.true_positives / len(self.true_contacts) if self.true_contacts else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0


class ContactTracingProtocol:
    """The dynamic-policy tracing procedure of Sec. 3.2.

    Parameters
    ----------
    world:
        Location universe.
    base_policy:
        Policy graph under which users originally released locations, and
        from which the tracing policy Gc is derived.
    mechanism_factory:
        ``(world, policy, epsilon) -> Mechanism`` used both for the original
        stream and for re-sends under Gc.
    epsilon:
        Per-release budget.
    min_count:
        Co-location threshold of the suspected-infection rule (paper: 2).
    window:
        Lookback window in timesteps (paper: two weeks).
    screen_radius:
        Candidate screen: users whose *perturbed* location came within this
        distance of an infected cell at the right time are asked to re-send.
        ``None`` derives it from the mechanism's expected error (x2), the
        demo's pragmatic recall-oriented choice.
    """

    def __init__(
        self,
        world: GridWorld,
        base_policy: PolicyGraph,
        mechanism_factory: MechanismFactory,
        epsilon: float,
        min_count: int = 2,
        window: int = 14 * 24,
        screen_radius: float | None = None,
    ) -> None:
        self.world = world
        self.base_policy = base_policy
        self.mechanism_factory = mechanism_factory
        self.epsilon = check_positive("epsilon", epsilon)
        self.min_count = check_integer("min_count", min_count, minimum=1)
        self.window = check_integer("window", window, minimum=1)
        self.screen_radius = (
            None if screen_radius is None else check_positive("screen_radius", screen_radius)
        )

    # ------------------------------------------------------------------
    def run(
        self,
        true_db: TraceDB,
        patient: int,
        diagnosis_time: int,
        rng=None,
        released_db: TraceDB | None = None,
        ledger: BudgetLedger | None = None,
        shards: int | None = None,
        backend=None,
        batched: bool = True,
    ) -> TracingOutcome:
        """Execute the full procedure for one diagnosed ``patient``.

        ``released_db`` is the server's view of the original perturbed
        stream; when omitted it is generated here with the base mechanism.

        ``shards`` / ``backend`` (default ``None`` / ``None``: the
        single-stream procedure below) partition the non-patient population
        over a per-user :class:`~repro.engine.sharding.ShardPlan` executed on
        the named :class:`~repro.engine.backends.ExecutionBackend`; per-shard
        contact-event sets and budget sums merge exactly, so the sharded
        outcome is **bit-identical for every shard count and backend**.  The
        sharded layout attaches randomness to users (original release, then
        re-send, on each user's own stream), so it deliberately differs from
        the unsharded shared-stream run; ``batched=False`` runs the per-shard
        scalar per-release reference loop on the same streams.  Sharded runs
        generate the released stream themselves — ``released_db`` / ``ledger``
        are not supported there.
        """
        if patient not in true_db.users():
            raise TracingError(f"patient {patient} not in the trace database")
        if shards is not None or backend is not None:
            if released_db is not None or ledger is not None:
                raise ValidationError(
                    "sharded tracing generates its own per-user released stream; "
                    "released_db / ledger are only supported unsharded"
                )
            return self._run_sharded(
                true_db, patient, diagnosis_time, rng, shards, backend, batched
            )
        generator = ensure_rng(rng)
        ledger = ledger if ledger is not None else BudgetLedger()
        start = diagnosis_time - self.window + 1

        base_mechanism = self.mechanism_factory(self.world, self.base_policy, self.epsilon)
        if released_db is None:
            released_db = self._release_stream(true_db, base_mechanism, start, diagnosis_time, generator, ledger)

        # Step 2: patient disclosure (policy update to full disclosure).
        patient_history = true_db.user_history(patient, start=start, end=diagnosis_time)
        if not patient_history:
            raise TracingError(f"patient {patient} has no history in the window")
        infected_pairs = {(checkin.cell, checkin.time) for checkin in patient_history}
        infected_cells = {cell for cell, _ in infected_pairs}

        # Step 3: dynamic policy update — Gc isolates infected cells.
        tracing_policy = contact_tracing_policy(self.base_policy, infected_cells, name="Gc")
        tracing_mechanism = self.mechanism_factory(self.world, tracing_policy, self.epsilon)

        # Step 4: screen candidates on the released stream, then re-send.
        radius = self._effective_radius(base_mechanism)
        candidates = self._screen(released_db, infected_pairs, radius, exclude=patient)

        flagged = self._resend_and_flag(
            true_db,
            tracing_mechanism,
            candidates,
            infected_pairs,
            start,
            diagnosis_time,
            generator,
            ledger,
        )

        true_contacts = frozenset(
            true_db.contacts_of(patient, min_count=self.min_count, start=start, end=diagnosis_time)
        )
        return TracingOutcome(
            flagged=frozenset(flagged),
            true_contacts=true_contacts,
            candidates=frozenset(candidates),
            epsilon_spent=ledger.by_purpose().get("tracing-resend", 0.0),
            policy_name=tracing_policy.name,
        )

    # ------------------------------------------------------------------
    def _run_sharded(
        self,
        true_db: TraceDB,
        patient: int,
        diagnosis_time: int,
        rng,
        shards: int | None,
        backend,
        batched: bool,
    ) -> TracingOutcome:
        """The procedure over ``ShardPlan`` + ``ExecutionBackend`` (see ``run``)."""
        from repro.engine import EngineRef, ShardPlan
        from repro.engine.distributed import sharded_metric

        start = diagnosis_time - self.window + 1
        patient_history = true_db.user_history(patient, start=start, end=diagnosis_time)
        if not patient_history:
            raise TracingError(f"patient {patient} has no history in the window")
        infected_pairs = {(checkin.cell, checkin.time) for checkin in patient_history}
        infected_cells = {cell for cell, _ in infected_pairs}

        base_mechanism = self.mechanism_factory(self.world, self.base_policy, self.epsilon)
        tracing_policy = contact_tracing_policy(self.base_policy, infected_cells, name="Gc")
        tracing_mechanism = self.mechanism_factory(self.world, tracing_policy, self.epsilon)
        radius = self._effective_radius(base_mechanism)

        # The plan covers the non-patient population: every tracing decision
        # concerns those users, and the patient's disclosure is the shared
        # deterministic input every shard screens against.
        others = sorted(true_db.users() - {patient})
        if not others:
            return TracingOutcome(
                flagged=frozenset(),
                true_contacts=frozenset(),
                candidates=frozenset(),
                epsilon_spent=0.0,
                policy_name=tracing_policy.name,
            )
        plan = ShardPlan.build(others, 1 if shards is None else int(shards), rng=rng)
        base_source = EngineRef.wrap(base_mechanism)
        tracing_source = EngineRef.wrap(tracing_mechanism)
        infected = tuple(sorted(infected_pairs))
        tasks = []
        for _, users, seeds in plan.iter_shards():
            histories = [
                true_db.user_history(user, start=start, end=diagnosis_time)
                for user in users
            ]
            tasks.append(
                _TracingShardTask(
                    base_source=base_source,
                    tracing_source=tracing_source,
                    users=users,
                    seeds=seeds,
                    times=tuple(tuple(c.time for c in history) for history in histories),
                    cells=tuple(tuple(c.cell for c in history) for history in histories),
                    infected=infected,
                    radius=radius,
                    min_count=self.min_count,
                    batched=batched,
                )
            )
        merged = sharded_metric(_score_tracing_shard, tasks, backend=backend)
        return TracingOutcome(
            flagged=frozenset(merged.sets["flagged"]),
            true_contacts=frozenset(merged.sets["true_contacts"]),
            candidates=frozenset(merged.sets["candidates"]),
            epsilon_spent=float(merged.sums["epsilon_spent"].sum()),
            policy_name=tracing_policy.name,
        )

    # ------------------------------------------------------------------
    def _release_stream(
        self,
        true_db: TraceDB,
        mechanism: Mechanism,
        start: int,
        end: int,
        rng,
        ledger: BudgetLedger,
    ) -> TraceDB:
        """One batched release over every in-window check-in.

        Check-in order matches the scalar per-client loop, so the seeded RNG
        stream (and therefore the released database) is identical.
        """
        released = TraceDB()
        users, times, cells = true_db.to_arrays()
        window = (times >= start) & (times <= end)
        users, times, cells = users[window], times[window], cells[window]
        if len(cells) == 0:
            return released
        # Exactness is a policy property, so per-release budgets are known
        # before drawing; charging first keeps a capped ledger gating the
        # stream (it faults at the same check-in as the scalar loop, before
        # any noise is drawn).
        self._charge_all(ledger, users, times, mechanism, cells, purpose="stream")
        batch = mechanism.release_batch(cells, rng=rng)
        released.record_many(users, times, self.world.snap_batch(batch.points))
        return released

    @staticmethod
    def _charge_all(ledger, users, times, mechanism, cells, purpose: str) -> None:
        for user, time, cell in zip(users, times, cells):
            epsilon = 0.0 if mechanism.is_exact(int(cell)) else mechanism.epsilon
            ledger.charge(int(user), int(time), epsilon, purpose=purpose)

    def _resend_and_flag(
        self,
        true_db: TraceDB,
        tracing_mechanism: Mechanism,
        candidates: set[int],
        infected_pairs: set[tuple[int, int]],
        start: int,
        end: int,
        rng,
        ledger: BudgetLedger,
    ) -> frozenset[int]:
        """Step 4/5 batched: every candidate's window re-sent in one batch.

        Candidate histories are concatenated user-major (the scalar resend
        order), released through one ``release_batch``, and the suspected-
        infection rule is applied with array ops: a hit is an *exact* release
        whose (snapped cell, time) is an infected pair.
        """
        users: list[int] = []
        times: list[int] = []
        cells: list[int] = []
        for user in sorted(candidates):
            for checkin in true_db.user_history(user, start=start, end=end):
                users.append(user)
                times.append(checkin.time)
                cells.append(checkin.cell)
        if not users:
            return frozenset()
        self._charge_all(ledger, users, times, tracing_mechanism, cells, purpose="tracing-resend")
        batch = tracing_mechanism.release_batch(cells, rng=rng)
        snapped = self.world.snap_batch(batch.points)
        time_arr = np.asarray(times, dtype=int)
        # Encode (cell, time) pairs as scalars so membership is one np.isin.
        t0 = int(time_arr.min())
        time_span = int(time_arr.max()) - t0 + 1
        codes = snapped.astype(np.int64) * time_span + (time_arr - t0)
        infected_codes = np.asarray(
            [
                cell * time_span + (time - t0)
                for cell, time in infected_pairs
                if 0 <= time - t0 < time_span
            ],
            dtype=np.int64,
        )
        hits = batch.exact & np.isin(codes, infected_codes)
        user_arr = np.asarray(users, dtype=int)
        flagged_users, hit_counts = np.unique(user_arr[hits], return_counts=True)
        return frozenset(
            int(user)
            for user, count in zip(flagged_users, hit_counts)
            if count >= self.min_count
        )

    def _effective_radius(self, mechanism: Mechanism) -> float:
        if self.screen_radius is not None:
            return self.screen_radius
        expected_error = getattr(mechanism, "expected_error", None)
        if expected_error is None:
            return 2.0 * self.world.cell_size
        # Largest expected error over non-disclosable cells, doubled for recall.
        errors = [
            expected_error(cell)
            for cell in self.base_policy.nodes
            if not self.base_policy.is_disclosable(cell)
        ]
        if not errors:
            return 2.0 * self.world.cell_size
        return 2.0 * max(errors)

    def _screen(
        self,
        released_db: TraceDB,
        infected_pairs: set[tuple[int, int]],
        radius: float,
        exclude: int,
    ) -> set[int]:
        """Users whose released point was near an infected cell at that time."""
        candidates: set[int] = set()
        by_time: dict[int, list[int]] = {}
        for cell, time in infected_pairs:
            by_time.setdefault(time, []).append(cell)
        for time, cells in by_time.items():
            snapshot = released_db.at_time(time)
            centers = [self.world.coords(cell) for cell in cells]
            for user, released_cell in snapshot.items():
                if user == exclude or user in candidates:
                    continue
                point = self.world.coords(released_cell)
                if any(euclidean(point, center) <= radius for center in centers):
                    candidates.add(user)
        return candidates


def static_tracing(
    world: GridWorld,
    released_db: TraceDB,
    true_db: TraceDB,
    patient: int,
    diagnosis_time: int,
    window: int = 14 * 24,
    min_count: int = 2,
) -> TracingOutcome:
    """Baseline: apply the co-location rule directly to the perturbed stream.

    No policy update, no re-send — the server simply counts co-locations in
    the snapped released data.  This is what a naive deployment without
    dynamic policies would do, and what the demo contrasts Gc against.
    """
    if patient not in true_db.users():
        raise TracingError(f"patient {patient} not in the trace database")
    start = diagnosis_time - window + 1
    if patient in released_db.users():
        flagged = frozenset(
            released_db.contacts_of(patient, min_count=min_count, start=start, end=diagnosis_time)
        )
    else:
        flagged = frozenset()
    true_contacts = frozenset(
        true_db.contacts_of(patient, min_count=min_count, start=start, end=diagnosis_time)
    )
    return TracingOutcome(
        flagged=flagged,
        true_contacts=true_contacts,
        candidates=frozenset(released_db.users() - {patient}),
        epsilon_spent=0.0,
        policy_name="static",
    )
