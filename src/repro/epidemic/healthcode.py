"""The "health code" service (Sec. 1 / Sec. 3.1 of the paper).

China's pandemic-era apps certified a user's exposure status from travel
history; PANDA notes that location monitoring "could also provide a 'health
code' service ... in a privacy-preserving way".  This module implements that
service on top of any trace database (true or privacy-preserving):

* **RED**    — at least ``red_threshold`` visits to infected locations in the
  lookback window (high exposure, quarantine);
* **YELLOW** — at least one visit (possible exposure, monitor);
* **GREEN**  — no recorded visit.

Running the classifier on the server's perturbed stream and comparing with
the codes from the true stream quantifies the service's privacy cost: false
greens are missed exposures (public-health risk), false reds are needless
quarantines (individual cost).  Under the tracing policy Gc infected cells
are disclosed exactly, so codes become exact — the paper's "best of the two
worlds".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import DataError
from repro.mobility.trajectory import TraceDB
from repro.utils.validation import check_integer

__all__ = ["HealthCode", "HealthCodeReport", "HealthCodeService"]

GREEN, YELLOW, RED = "green", "yellow", "red"


@dataclass(frozen=True)
class HealthCode:
    """One user's certification: status plus the evidence count."""

    user: int
    status: str
    infected_visits: int


@dataclass(frozen=True)
class HealthCodeReport:
    """Agreement between privacy-preserving codes and ground truth."""

    accuracy: float
    false_green_rate: float
    false_red_rate: float
    n_users: int
    confusion: dict[tuple[str, str], int]

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"HealthCodeReport(accuracy={self.accuracy:.2%}, "
            f"false_green={self.false_green_rate:.2%}, "
            f"false_red={self.false_red_rate:.2%}, users={self.n_users})"
        )


class HealthCodeService:
    """Certify users' exposure status from a trace database.

    Parameters
    ----------
    infected_locations:
        Cells confirmed as infected (from patient disclosures).
    window:
        Lookback horizon in timesteps (the paper's two weeks).
    red_threshold:
        Visits needed for a RED code; one visit already yields YELLOW.
    """

    def __init__(
        self,
        infected_locations: Iterable[int],
        window: int = 14 * 24,
        red_threshold: int = 2,
    ) -> None:
        self.infected_locations = frozenset(int(c) for c in infected_locations)
        if not self.infected_locations:
            raise DataError("health codes need at least one infected location")
        self.window = check_integer("window", window, minimum=1)
        self.red_threshold = check_integer("red_threshold", red_threshold, minimum=1)

    # ------------------------------------------------------------------
    def code_for(self, db: TraceDB, user: int, now: int) -> HealthCode:
        """Certify ``user`` from the evidence in ``db`` at time ``now``."""
        start = now - self.window + 1
        visits = sum(
            1
            for checkin in db.user_history(user, start=start, end=now)
            if checkin.cell in self.infected_locations
        )
        if visits >= self.red_threshold:
            status = RED
        elif visits >= 1:
            status = YELLOW
        else:
            status = GREEN
        return HealthCode(user=int(user), status=status, infected_visits=visits)

    def codes(self, db: TraceDB, now: int) -> dict[int, HealthCode]:
        """Certify every user present in ``db``."""
        return {user: self.code_for(db, user, now) for user in sorted(db.users())}

    # ------------------------------------------------------------------
    def evaluate(self, true_db: TraceDB, observed_db: TraceDB, now: int) -> HealthCodeReport:
        """Compare codes from the observed (perturbed) stream with the truth.

        ``false_green_rate`` is the fraction of truly non-green users whom the
        observed stream certifies green (missed exposures);
        ``false_red_rate`` is the fraction of truly non-red users certified
        red (needless quarantine).
        """
        users = sorted(true_db.users() & observed_db.users())
        if not users:
            raise DataError("the two trace databases share no users")
        confusion: dict[tuple[str, str], int] = {}
        correct = 0
        truly_exposed = 0
        false_green = 0
        truly_not_red = 0
        false_red = 0
        for user in users:
            truth = self.code_for(true_db, user, now).status
            observed = self.code_for(observed_db, user, now).status
            confusion[(truth, observed)] = confusion.get((truth, observed), 0) + 1
            if truth == observed:
                correct += 1
            if truth != GREEN:
                truly_exposed += 1
                if observed == GREEN:
                    false_green += 1
            if truth != RED:
                truly_not_red += 1
                if observed == RED:
                    false_red += 1
        return HealthCodeReport(
            accuracy=correct / len(users),
            false_green_rate=(false_green / truly_exposed) if truly_exposed else 0.0,
            false_red_rate=(false_red / truly_not_red) if truly_not_red else 0.0,
            n_users=len(users),
            confusion=confusion,
        )
