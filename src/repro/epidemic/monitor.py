"""Location monitoring: coarse-grained movement understanding (Fig. 3, App 1).

The monitoring app aggregates released locations into coarse areas ("cities
or provinces"), tracks inter-area flows, and reports the utility metrics of
the demo's first evaluation: per-release Euclidean error, area classification
accuracy, and L1 flow error against the true traces.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.core.mechanisms.base import Mechanism
from repro.errors import DataError
from repro.geo.distance import euclidean
from repro.geo.grid import GridWorld
from repro.mobility.trajectory import TraceDB
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_integer

__all__ = ["LocationMonitor", "MonitoringReport", "monitoring_utility"]


@dataclass(frozen=True)
class MonitoringReport:
    """Utility of a monitored (perturbed) trace against the truth.

    Attributes
    ----------
    mean_euclidean_error:
        Average distance between released points and true cell centres —
        the paper's headline utility metric.
    area_accuracy:
        Fraction of releases whose snapped cell falls in the true coarse
        area (what the inter-city monitor actually consumes).
    flow_l1_error:
        L1 distance between true and observed inter-area flow counts,
        normalised by the total true flow.
    n_releases:
        Number of (user, time) releases scored.
    """

    mean_euclidean_error: float
    area_accuracy: float
    flow_l1_error: float
    n_releases: int


class LocationMonitor:
    """Aggregates releases into coarse-area counts and flows."""

    def __init__(self, world: GridWorld, block_rows: int, block_cols: int) -> None:
        self.world = world
        self.block_rows = check_integer("block_rows", block_rows, minimum=1)
        self.block_cols = check_integer("block_cols", block_cols, minimum=1)

    def area_of_cell(self, cell: int) -> int:
        return self.world.area_of(cell, self.block_rows, self.block_cols)

    def area_counts(self, db: TraceDB, time: int) -> Counter:
        """Occupancy per coarse area at ``time`` (the monitoring dashboard)."""
        counts: Counter = Counter()
        for cell in db.at_time(time).values():
            counts[self.area_of_cell(cell)] += 1
        return counts

    def flows(self, db: TraceDB) -> Counter:
        """Inter-area movement counts over consecutive timesteps.

        A flow is a user present at times ``t`` and ``t+1`` whose areas
        differ; same-area steps are recorded under ``(area, area)`` so that
        stay-put mass is also comparable.
        """
        flows: Counter = Counter()
        times = db.times()
        for earlier, later in zip(times, times[1:]):
            if later != earlier + 1:
                continue
            before = db.at_time(earlier)
            after = db.at_time(later)
            for user, cell in before.items():
                next_cell = after.get(user)
                if next_cell is None:
                    continue
                flows[(self.area_of_cell(cell), self.area_of_cell(next_cell))] += 1
        return flows


def monitoring_utility(
    world: GridWorld,
    mechanism: Mechanism,
    true_db: TraceDB,
    block_rows: int = 4,
    block_cols: int = 4,
    rng=None,
) -> MonitoringReport:
    """Release every check-in of ``true_db`` and score monitoring utility.

    This is experiment E1's inner loop: perturb each true location with
    ``mechanism``, then compare Euclidean error, coarse-area agreement, and
    inter-area flows.
    """
    if len(true_db) == 0:
        raise DataError("true trace database is empty")
    generator = ensure_rng(rng)
    monitor = LocationMonitor(world, block_rows, block_cols)

    released_db = TraceDB()
    total_error = 0.0
    area_hits = 0
    count = 0
    for checkin in true_db.checkins():
        release = mechanism.release(checkin.cell, rng=generator)
        released_cell = world.snap(release.point)
        released_db.record(checkin.user, checkin.time, released_cell)
        total_error += euclidean(release.point, world.coords(checkin.cell))
        if monitor.area_of_cell(released_cell) == monitor.area_of_cell(checkin.cell):
            area_hits += 1
        count += 1

    true_flows = monitor.flows(true_db)
    observed_flows = monitor.flows(released_db)
    keys = set(true_flows) | set(observed_flows)
    l1 = sum(abs(true_flows.get(key, 0) - observed_flows.get(key, 0)) for key in keys)
    total_true_flow = sum(true_flows.values())
    flow_error = l1 / total_true_flow if total_true_flow else 0.0

    return MonitoringReport(
        mean_euclidean_error=total_error / count,
        area_accuracy=area_hits / count,
        flow_l1_error=flow_error,
        n_releases=count,
    )
