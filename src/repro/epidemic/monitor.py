"""Location monitoring: coarse-grained movement understanding (Fig. 3, App 1).

The monitoring app aggregates released locations into coarse areas ("cities
or provinces"), tracks inter-area flows, and reports the utility metrics of
the demo's first evaluation: per-release Euclidean error, area classification
accuracy, and L1 flow error against the true traces.

The scorer is batch-first: :func:`monitoring_utility` perturbs the whole
trace database through one :meth:`~repro.core.mechanisms.Mechanism.release_batch`
call and aggregates every metric with NumPy (inter-area flows via
``np.unique`` over area-pair codes).  The batched path consumes the same
seeded RNG stream as the scalar loop, so both paths score identically;
``batched=False`` keeps the per-check-in reference loop.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.mechanisms.base import Mechanism
from repro.errors import DataError
from repro.geo.distance import euclidean
from repro.geo.grid import GridWorld
from repro.mobility.trajectory import TraceDB
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_integer

__all__ = ["LocationMonitor", "MonitoringReport", "monitoring_utility"]


@dataclass(frozen=True)
class MonitoringReport:
    """Utility of a monitored (perturbed) trace against the truth.

    Attributes
    ----------
    mean_euclidean_error:
        Average distance between released points and true cell centres —
        the paper's headline utility metric.
    area_accuracy:
        Fraction of releases whose snapped cell falls in the true coarse
        area (what the inter-city monitor actually consumes).
    flow_l1_error:
        L1 distance between true and observed inter-area flow counts,
        normalised by the total true flow.
    n_releases:
        Number of (user, time) releases scored.
    """

    mean_euclidean_error: float
    area_accuracy: float
    flow_l1_error: float
    n_releases: int


class LocationMonitor:
    """Aggregates releases into coarse-area counts and flows."""

    def __init__(self, world: GridWorld, block_rows: int, block_cols: int) -> None:
        self.world = world
        self.block_rows = check_integer("block_rows", block_rows, minimum=1)
        self.block_cols = check_integer("block_cols", block_cols, minimum=1)

    @property
    def n_areas(self) -> int:
        """Number of coarse areas in this monitor's tiling."""
        return self.world.n_areas(self.block_rows, self.block_cols)

    def area_of_cell(self, cell: int) -> int:
        return self.world.area_of(cell, self.block_rows, self.block_cols)

    def area_of_batch(self, cells) -> np.ndarray:
        """Vectorized :meth:`area_of_cell` over a flat array of cell ids."""
        return self.world.area_of_batch(cells, self.block_rows, self.block_cols)

    def area_counts(self, db: TraceDB, time: int) -> Counter:
        """Occupancy per coarse area at ``time`` (the monitoring dashboard)."""
        snapshot = db.at_time(time)
        if not snapshot:
            return Counter()
        areas = self.area_of_batch(list(snapshot.values()))
        uniques, counts = np.unique(areas, return_counts=True)
        return Counter(dict(zip(uniques.tolist(), counts.tolist())))

    def flows(self, db: TraceDB) -> Counter:
        """Inter-area movement counts over consecutive timesteps.

        A flow is a user present at times ``t`` and ``t+1`` whose areas
        differ; same-area steps are recorded under ``(area, area)`` so that
        stay-put mass is also comparable.
        """
        users, times, cells = db.to_arrays()
        return self.flows_from_arrays(users, times, cells)

    def flows_from_arrays(self, users: np.ndarray, times: np.ndarray, cells: np.ndarray) -> Counter:
        """:meth:`flows` over a structure-of-arrays trace view.

        The arrays must be grouped by user with times ascending within each
        user (the :meth:`~repro.mobility.trajectory.TraceDB.to_arrays`
        layout), so user transitions are adjacent rows.  Counting is one
        ``np.unique`` over ``src_area * n_areas + dst_area`` codes — no
        Python loop over check-ins.
        """
        flows: Counter = Counter()
        if len(users) < 2:
            return flows
        step = (users[1:] == users[:-1]) & (times[1:] == times[:-1] + 1)
        if not step.any():
            return flows
        src = self.area_of_batch(cells[:-1][step])
        dst = self.area_of_batch(cells[1:][step])
        n_areas = self.n_areas
        codes, counts = np.unique(src * n_areas + dst, return_counts=True)
        for code, count in zip(codes.tolist(), counts.tolist()):
            flows[(code // n_areas, code % n_areas)] = count
        return flows


def _flow_l1_error(true_flows: Counter, observed_flows: Counter) -> float:
    keys = set(true_flows) | set(observed_flows)
    l1 = sum(abs(true_flows.get(key, 0) - observed_flows.get(key, 0)) for key in keys)
    total_true_flow = sum(true_flows.values())
    return l1 / total_true_flow if total_true_flow else 0.0


def monitoring_utility(
    world: GridWorld,
    mechanism: Mechanism,
    true_db: TraceDB,
    block_rows: int = 4,
    block_cols: int = 4,
    rng=None,
    batched: bool = True,
) -> MonitoringReport:
    """Release every check-in of ``true_db`` and score monitoring utility.

    This is experiment E1's inner loop: perturb each true location with
    ``mechanism``, then compare Euclidean error, coarse-area agreement, and
    inter-area flows.  The default path draws all releases in one
    :meth:`~repro.core.mechanisms.Mechanism.release_batch` call and scores
    them with NumPy; ``batched=False`` runs the scalar per-check-in reference
    loop.  Both consume the same seeded RNG stream, so a seeded batched run
    reproduces the seeded scalar run.
    """
    if len(true_db) == 0:
        raise DataError("true trace database is empty")
    generator = ensure_rng(rng)
    monitor = LocationMonitor(world, block_rows, block_cols)

    if not batched:
        return _monitoring_utility_scalar(world, mechanism, true_db, monitor, generator)

    users, times, cells = true_db.to_arrays()
    batch = mechanism.release_batch(cells, rng=generator)
    released_cells = world.snap_batch(batch.points)
    centres = world.coords_array(cells)
    errors = np.hypot(
        batch.points[:, 0] - centres[:, 0], batch.points[:, 1] - centres[:, 1]
    )
    area_hits = int(
        np.count_nonzero(monitor.area_of_batch(released_cells) == monitor.area_of_batch(cells))
    )
    count = len(cells)

    true_flows = monitor.flows_from_arrays(users, times, cells)
    observed_flows = monitor.flows_from_arrays(users, times, released_cells)
    return MonitoringReport(
        mean_euclidean_error=float(errors.sum()) / count,
        area_accuracy=area_hits / count,
        flow_l1_error=_flow_l1_error(true_flows, observed_flows),
        n_releases=count,
    )


def _monitoring_utility_scalar(
    world: GridWorld,
    mechanism: Mechanism,
    true_db: TraceDB,
    monitor: LocationMonitor,
    generator,
) -> MonitoringReport:
    """Per-check-in reference loop (the protocol as one client experiences it)."""
    released_db = TraceDB()
    total_error = 0.0
    area_hits = 0
    count = 0
    for checkin in true_db.checkins():
        release = mechanism.release(checkin.cell, rng=generator)
        released_cell = world.snap(release.point)
        released_db.record(checkin.user, checkin.time, released_cell)
        total_error += euclidean(release.point, world.coords(checkin.cell))
        if monitor.area_of_cell(released_cell) == monitor.area_of_cell(checkin.cell):
            area_hits += 1
        count += 1

    return MonitoringReport(
        mean_euclidean_error=total_error / count,
        area_accuracy=area_hits / count,
        flow_l1_error=_flow_l1_error(monitor.flows(true_db), monitor.flows(released_db)),
        n_releases=count,
    )
