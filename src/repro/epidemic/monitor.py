"""Location monitoring: coarse-grained movement understanding (Fig. 3, App 1).

The monitoring app aggregates released locations into coarse areas ("cities
or provinces"), tracks inter-area flows, and reports the utility metrics of
the demo's first evaluation: per-release Euclidean error, area classification
accuracy, and L1 flow error against the true traces.

The scorer is batch-first: :func:`monitoring_utility` perturbs the whole
trace database through one :meth:`~repro.core.mechanisms.Mechanism.release_batch`
call and aggregates every metric with NumPy (inter-area flows via
``np.unique`` over area-pair codes).  The batched path consumes the same
seeded RNG stream as the scalar loop, so both paths score identically;
``batched=False`` keeps the per-check-in reference loop.

The scorer also scales *across users*: ``monitoring_utility(...,
shards=k, backend="process")`` partitions the population with the same
deterministic :class:`~repro.engine.sharding.ShardPlan` the release
pipeline uses (per-**user** RNG streams over the sorted user list), scores
each shard independently, and merges per-shard
:class:`~repro.engine.distributed.MetricShardResult` pieces exactly —
so the report is bit-identical for every shard count and execution backend.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.mechanisms.base import Mechanism
from repro.errors import DataError
from repro.geo.distance import euclidean
from repro.geo.grid import GridWorld
from repro.mobility.trajectory import TraceDB
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_integer

__all__ = ["LocationMonitor", "MonitoringReport", "monitoring_utility", "perturbed_flows"]


@dataclass(frozen=True)
class MonitoringReport:
    """Utility of a monitored (perturbed) trace against the truth.

    Attributes
    ----------
    mean_euclidean_error:
        Average distance between released points and true cell centres —
        the paper's headline utility metric.
    area_accuracy:
        Fraction of releases whose snapped cell falls in the true coarse
        area (what the inter-city monitor actually consumes).
    flow_l1_error:
        L1 distance between true and observed inter-area flow counts,
        normalised by the total true flow.
    n_releases:
        Number of (user, time) releases scored.
    """

    mean_euclidean_error: float
    area_accuracy: float
    flow_l1_error: float
    n_releases: int


class LocationMonitor:
    """Aggregates releases into coarse-area counts and flows."""

    def __init__(self, world: GridWorld, block_rows: int, block_cols: int) -> None:
        self.world = world
        self.block_rows = check_integer("block_rows", block_rows, minimum=1)
        self.block_cols = check_integer("block_cols", block_cols, minimum=1)

    @property
    def n_areas(self) -> int:
        """Number of coarse areas in this monitor's tiling."""
        return self.world.n_areas(self.block_rows, self.block_cols)

    def area_of_cell(self, cell: int) -> int:
        return self.world.area_of(cell, self.block_rows, self.block_cols)

    def area_of_batch(self, cells) -> np.ndarray:
        """Vectorized :meth:`area_of_cell` over a flat array of cell ids."""
        return self.world.area_of_batch(cells, self.block_rows, self.block_cols)

    def area_counts(self, db: TraceDB, time: int) -> Counter:
        """Occupancy per coarse area at ``time`` (the monitoring dashboard)."""
        snapshot = db.at_time(time)
        if not snapshot:
            return Counter()
        areas = self.area_of_batch(list(snapshot.values()))
        uniques, counts = np.unique(areas, return_counts=True)
        return Counter(dict(zip(uniques.tolist(), counts.tolist())))

    def flows(self, db: TraceDB) -> Counter:
        """Inter-area movement counts over consecutive timesteps.

        A flow is a user present at times ``t`` and ``t+1`` whose areas
        differ; same-area steps are recorded under ``(area, area)`` so that
        stay-put mass is also comparable.
        """
        users, times, cells = db.to_arrays()
        return self.flows_from_arrays(users, times, cells)

    def flows_from_arrays(self, users: np.ndarray, times: np.ndarray, cells: np.ndarray) -> Counter:
        """:meth:`flows` over a structure-of-arrays trace view.

        The arrays must be grouped by user with times ascending within each
        user (the :meth:`~repro.mobility.trajectory.TraceDB.to_arrays`
        layout), so user transitions are adjacent rows.  Counting is one
        ``np.unique`` over ``src_area * n_areas + dst_area`` codes — no
        Python loop over check-ins.
        """
        if len(users) < 2:
            return Counter()
        step = (users[1:] == users[:-1]) & (times[1:] == times[:-1] + 1)
        if not step.any():
            return Counter()
        src = self.area_of_batch(cells[:-1][step])
        dst = self.area_of_batch(cells[1:][step])
        return self.flows_from_codes(src * self.n_areas + dst)

    def flows_between(self, src_cells, dst_cells) -> Counter:
        """Inter-area flow counts for aligned consecutive-step cell pairs.

        ``src_cells[i]`` / ``dst_cells[i]`` are one user's cells at times
        ``t`` and ``t + 1`` — the caller has already matched the rows (the
        live-metric fold pairs each round's rows with the previous round's
        per user).  Counting matches :meth:`flows_from_arrays` restricted to
        those steps exactly: same area coding, same Counter values.
        """
        src_cells = np.asarray(src_cells, dtype=int)
        dst_cells = np.asarray(dst_cells, dtype=int)
        if src_cells.shape != dst_cells.shape:
            raise DataError(
                f"flow endpoints of shapes {src_cells.shape} / "
                f"{dst_cells.shape} are not aligned"
            )
        if src_cells.size == 0:
            return Counter()
        src = self.area_of_batch(src_cells)
        dst = self.area_of_batch(dst_cells)
        return self.flows_from_codes(src * self.n_areas + dst)

    def flows_from_codes(self, codes, mask=None) -> Counter:
        """:meth:`flows` from precomputed area-pair codes.

        ``codes[i] = src_area * n_areas + dst_area`` — exactly what the
        fused release pipeline emits
        (:meth:`~repro.engine.PrivacyEngine.release_round_fused` fills
        ``FusedRound.flow_codes`` / ``flow_mask``), so a fused round feeds
        the monitor without re-deriving areas.  ``mask`` selects the codes
        to count (the consecutive-same-user steps); ``None`` counts them
        all.  Counting is identical to :meth:`flows_from_arrays` on the
        equivalent trace.
        """
        codes = np.asarray(codes)
        if mask is not None:
            codes = codes[np.asarray(mask, dtype=bool)]
        flows: Counter = Counter()
        if codes.size == 0:
            return flows
        n_areas = self.n_areas
        uniques, counts = np.unique(codes, return_counts=True)
        for code, count in zip(uniques.tolist(), counts.tolist()):
            flows[(code // n_areas, code % n_areas)] = count
        return flows


def _flow_l1_error(true_flows: Counter, observed_flows: Counter) -> float:
    keys = set(true_flows) | set(observed_flows)
    l1 = sum(abs(true_flows.get(key, 0) - observed_flows.get(key, 0)) for key in keys)
    total_true_flow = sum(true_flows.values())
    return l1 / total_true_flow if total_true_flow else 0.0


def monitoring_utility(
    world: GridWorld,
    mechanism: Mechanism,
    true_db: TraceDB,
    block_rows: int = 4,
    block_cols: int = 4,
    rng=None,
    batched: bool = True,
    shards: int | None = None,
    backend=None,
) -> MonitoringReport:
    """Release every check-in of ``true_db`` and score monitoring utility.

    This is experiment E1's inner loop: perturb each true location with
    ``mechanism``, then compare Euclidean error, coarse-area agreement, and
    inter-area flows.

    Parameters
    ----------
    world:
        Location universe (also the snapping grid for area agreement).
    mechanism:
        The release mechanism to score.  A spec-built
        :class:`~repro.engine.PrivacyEngine` is also accepted — recommended
        with ``backend="pool"``, where shard tasks then ship a spec hash
        (:class:`~repro.engine.EngineRef`) instead of pickled construction
        state.
    true_db:
        Ground-truth traces (must be non-empty).
    block_rows / block_cols:
        Coarse-area tiling of the monitor.
    rng:
        Seed source.  Unsharded runs consume it as one stream over the
        check-ins in :meth:`~repro.mobility.trajectory.TraceDB.to_arrays`
        order; sharded runs spawn one child stream per *user* from it
        (the release pipeline's layout).
    batched:
        ``True`` (default) scores via vectorized ``release_batch`` draws;
        ``False`` runs the scalar per-release reference loop.  Both consume
        the same seeded stream(s), so the two modes agree to float
        round-off in either layout.
    shards / backend:
        ``None`` / ``None`` (default) keeps the single-process paths above.
        Providing either routes scoring over a deterministic
        :class:`~repro.engine.sharding.ShardPlan` with per-user streams and
        the named :class:`~repro.engine.backends.ExecutionBackend` —
        output is then **bit-identical for every shard count and backend**
        (exact merge, see :mod:`repro.engine.distributed`), though not
        equal to the unsharded single-stream run (the two layouts consume
        ``rng`` differently, exactly as in the release pipeline).

    Returns
    -------
    MonitoringReport
        Mean Euclidean error, area accuracy, flow L1 error, release count.
    """
    if len(true_db) == 0:
        raise DataError("true trace database is empty")
    if shards is not None or backend is not None:
        return _monitoring_utility_sharded(
            world,
            mechanism,
            true_db,
            block_rows,
            block_cols,
            rng=rng,
            batched=batched,
            shards=1 if shards is None else int(shards),
            backend=backend,
        )
    generator = ensure_rng(rng)
    monitor = LocationMonitor(world, block_rows, block_cols)

    if not batched:
        return _monitoring_utility_scalar(world, mechanism, true_db, monitor, generator)

    users, times, cells = true_db.to_arrays()
    batch = mechanism.release_batch(cells, rng=generator)
    released_cells = world.snap_batch(batch.points)
    centres = world.coords_array(cells)
    errors = np.hypot(
        batch.points[:, 0] - centres[:, 0], batch.points[:, 1] - centres[:, 1]
    )
    area_hits = int(
        np.count_nonzero(monitor.area_of_batch(released_cells) == monitor.area_of_batch(cells))
    )
    count = len(cells)

    true_flows = monitor.flows_from_arrays(users, times, cells)
    observed_flows = monitor.flows_from_arrays(users, times, released_cells)
    return MonitoringReport(
        mean_euclidean_error=float(errors.sum()) / count,
        area_accuracy=area_hits / count,
        flow_l1_error=_flow_l1_error(true_flows, observed_flows),
        n_releases=count,
    )


def _monitoring_utility_scalar(
    world: GridWorld,
    mechanism: Mechanism,
    true_db: TraceDB,
    monitor: LocationMonitor,
    generator,
) -> MonitoringReport:
    """Per-check-in reference loop (the protocol as one client experiences it)."""
    released_db = TraceDB()
    total_error = 0.0
    area_hits = 0
    count = 0
    for checkin in true_db.checkins():
        release = mechanism.release(checkin.cell, rng=generator)
        released_cell = world.snap(release.point)
        released_db.record(checkin.user, checkin.time, released_cell)
        total_error += euclidean(release.point, world.coords(checkin.cell))
        if monitor.area_of_cell(released_cell) == monitor.area_of_cell(checkin.cell):
            area_hits += 1
        count += 1

    return MonitoringReport(
        mean_euclidean_error=total_error / count,
        area_accuracy=area_hits / count,
        flow_l1_error=_flow_l1_error(monitor.flows(true_db), monitor.flows(released_db)),
        n_releases=count,
    )


# ----------------------------------------------------------------------
# Shard-parallel path (E1 over ShardPlan + ExecutionBackend)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _MonitorShardTask:
    """One shard's monitoring workload: its users, streams, and traces.

    Plain data plus the release source, so process backends can pickle it;
    ``source`` is an :class:`~repro.engine.EngineRef` for spec-built engines
    (workers rebuild and cache by spec hash) or the live mechanism.
    ``times[i]`` / ``cells[i]`` are user ``users[i]``'s check-ins in time
    order — the user-major layout whose per-user blocks concatenate back
    into :meth:`TraceDB.to_arrays` order.
    """

    source: object
    block_rows: int
    block_cols: int
    users: tuple[int, ...]
    seeds: tuple[int, ...]
    times: tuple[tuple[int, ...], ...]
    cells: tuple[tuple[int, ...], ...]
    batched: bool


def _score_monitor_shard(task: _MonitorShardTask):
    """Score one shard's users on their own streams; module-level for pickling.

    Per user: their whole trace is released from their own seed stream
    (one vectorized ``release_batch`` call, or the scalar per-release loop
    when ``task.batched`` is false — same stream, so same points to float
    identity).  Returns a :class:`~repro.engine.distributed.MetricShardResult`
    with per-user error / area-hit sums (weighted-mean components) and the
    shard's true/observed flow counters (flows are within-user transitions,
    so per-user sharding partitions them exactly).
    """
    from repro.engine import resolve_release_source
    from repro.engine.distributed import MetricShardResult

    source = resolve_release_source(task.source)
    world = source.world
    monitor = LocationMonitor(world, task.block_rows, task.block_cols)
    n_users = len(task.users)
    n_rows = sum(len(cells) for cells in task.cells)

    users_rows = np.empty(n_rows, dtype=int)
    times_rows = np.empty(n_rows, dtype=int)
    cells_rows = np.empty(n_rows, dtype=int)
    points = np.empty((n_rows, 2), dtype=float)
    error_sums = np.empty(n_users, dtype=float)
    hit_sums = np.empty(n_users, dtype=float)
    counts = np.empty(n_users, dtype=int)

    offset = 0
    for index, (user, seed, user_times, user_cells) in enumerate(
        zip(task.users, task.seeds, task.times, task.cells)
    ):
        generator = np.random.default_rng(seed)
        stop = offset + len(user_cells)
        if task.batched:
            batch = source.release_batch(list(user_cells), rng=generator)
            points[offset:stop] = batch.points
        else:  # scalar reference: same stream, one release() per check-in
            for row, cell in enumerate(user_cells, start=offset):
                points[row] = source.release(cell, rng=generator).point
        users_rows[offset:stop] = user
        times_rows[offset:stop] = user_times
        cells_rows[offset:stop] = user_cells

        centres = world.coords_array(np.asarray(user_cells, dtype=int))
        errors = np.hypot(
            points[offset:stop, 0] - centres[:, 0],
            points[offset:stop, 1] - centres[:, 1],
        )
        error_sums[index] = errors.sum()
        counts[index] = stop - offset
        offset = stop

    released_cells = world.snap_batch(points)
    hits = monitor.area_of_batch(released_cells) == monitor.area_of_batch(cells_rows)
    # Per-user hit counts: rows are user-major, so reduce per contiguous block.
    bounds = np.concatenate(([0], np.cumsum(counts)))
    for index in range(n_users):
        hit_sums[index] = np.count_nonzero(hits[bounds[index] : bounds[index + 1]])

    return MetricShardResult(
        sums={"error": error_sums, "area_hits": hit_sums},
        counts=counts,
        flows={
            "true": monitor.flows_from_arrays(users_rows, times_rows, cells_rows),
            "observed": monitor.flows_from_arrays(users_rows, times_rows, released_cells),
        },
    )


def _monitor_shard_tasks(
    world: GridWorld,
    mechanism,
    true_db: TraceDB,
    block_rows: int,
    block_cols: int,
    plan,
    batched: bool,
) -> list[_MonitorShardTask]:
    """One picklable :class:`_MonitorShardTask` per non-empty plan shard.

    Shared by the E1 report and the E11 flow pipeline so both score through
    the exact same shard layout (and the same worker-side engine cache).
    Workers score against the release source's own world; a mismatched
    explicit world is refused instead of silently diverging from the
    unsharded path (which uses the passed world throughout).
    """
    from repro.engine import EngineRef
    from repro.errors import ValidationError

    if mechanism.world != world:
        raise ValidationError("mechanism was built for a different world")
    source = EngineRef.wrap(mechanism)
    tasks = []
    for _, users, seeds in plan.iter_shards():
        histories = [true_db.user_history(user) for user in users]
        tasks.append(
            _MonitorShardTask(
                source=source,
                block_rows=block_rows,
                block_cols=block_cols,
                users=users,
                seeds=seeds,
                times=tuple(tuple(c.time for c in history) for history in histories),
                cells=tuple(tuple(c.cell for c in history) for history in histories),
                batched=batched,
            )
        )
    return tasks


def _monitoring_utility_sharded(
    world: GridWorld,
    mechanism,
    true_db: TraceDB,
    block_rows: int,
    block_cols: int,
    rng,
    batched: bool,
    shards: int,
    backend,
) -> MonitoringReport:
    """E1 over ``ShardPlan`` + ``ExecutionBackend`` (see ``monitoring_utility``)."""
    from repro.engine import ShardPlan
    from repro.engine.distributed import sharded_metric

    plan = ShardPlan.build(sorted(true_db.users()), shards, rng=rng)
    tasks = _monitor_shard_tasks(world, mechanism, true_db, block_rows, block_cols, plan, batched)
    merged = sharded_metric(_score_monitor_shard, tasks, backend=backend)
    return MonitoringReport(
        mean_euclidean_error=merged.weighted_mean("error"),
        area_accuracy=merged.weighted_mean("area_hits"),
        flow_l1_error=_flow_l1_error(merged.flows["true"], merged.flows["observed"]),
        n_releases=merged.n_releases,
    )


def perturbed_flows(
    world: GridWorld,
    mechanism,
    true_db: TraceDB,
    block_rows: int = 4,
    block_cols: int = 4,
    rng=None,
    batched: bool = True,
    shards: int | None = None,
    backend=None,
) -> tuple[Counter, Counter]:
    """``(true_flows, observed_flows)`` inter-area counters for E11.

    The metapopulation forecast pipeline's input: release every check-in of
    ``true_db`` through ``mechanism`` and count inter-area transitions on
    both the true and the released (snapped) stream.  ``true_flows`` is
    deterministic; ``observed_flows`` depends on the draws.

    With ``shards=`` / ``backend=`` the population fans out over the same
    per-user :class:`~repro.engine.sharding.ShardPlan` layout as the E1
    report (flows are within-user transitions, so per-shard counters
    partition the global counters and merge by exact Counter addition) —
    both counters are then **bit-identical for every shard count and
    backend**, though on the per-user-stream layout rather than the
    unsharded single stream.  ``batched=False`` runs the scalar per-release
    reference loop on whichever layout is selected.
    """
    if len(true_db) == 0:
        raise DataError("true trace database is empty")
    if shards is not None or backend is not None:
        from repro.engine import ShardPlan
        from repro.engine.distributed import sharded_metric

        plan = ShardPlan.build(
            sorted(true_db.users()), 1 if shards is None else int(shards), rng=rng
        )
        tasks = _monitor_shard_tasks(
            world, mechanism, true_db, block_rows, block_cols, plan, batched
        )
        merged = sharded_metric(_score_monitor_shard, tasks, backend=backend)
        return Counter(merged.flows["true"]), Counter(merged.flows["observed"])

    generator = ensure_rng(rng)
    monitor = LocationMonitor(world, block_rows, block_cols)
    users, times, cells = true_db.to_arrays()
    if batched:
        batch = mechanism.release_batch(cells, rng=generator)
        released_cells = world.snap_batch(batch.points)
    else:  # scalar reference: same stream, one release() per check-in
        released_cells = np.array(
            [world.snap(mechanism.release(int(cell), rng=generator).point) for cell in cells],
            dtype=int,
        )
    return (
        monitor.flows_from_arrays(users, times, cells),
        monitor.flows_from_arrays(users, times, released_cells),
    )
