"""The SEIR compartmental model (Li & Muldowney [11]) and R0.

The demo's epidemic-analysis app estimates "the parameters such as R0 (basic
reproduction number)" of an SEIR model from location data.  This module is
the deterministic substrate: forward simulation of the S/E/I/R ordinary
differential equations (RK4) and least-squares recovery of the transmission
rate beta — hence R0 = beta/gamma — from an incidence curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["SEIRModel", "SEIRTrajectory", "fit_beta"]


@dataclass(frozen=True)
class SEIRTrajectory:
    """Simulated compartment sizes over time, plus per-step incidence."""

    times: np.ndarray
    susceptible: np.ndarray
    exposed: np.ndarray
    infectious: np.ndarray
    recovered: np.ndarray

    @property
    def incidence(self) -> np.ndarray:
        """New exposures per step: ``-diff(S)`` (non-negative by dynamics)."""
        return np.clip(-np.diff(self.susceptible), 0.0, None)

    @property
    def population(self) -> float:
        return float(
            self.susceptible[0] + self.exposed[0] + self.infectious[0] + self.recovered[0]
        )


class SEIRModel:
    """Deterministic SEIR dynamics.

    Parameters
    ----------
    beta:
        Transmission rate (contacts x infection probability per unit time).
    sigma:
        Rate of progression from exposed to infectious (1 / latent period).
    gamma:
        Recovery rate (1 / infectious period).
    """

    def __init__(self, beta: float, sigma: float, gamma: float) -> None:
        self.beta = check_non_negative("beta", beta)
        self.sigma = check_positive("sigma", sigma)
        self.gamma = check_positive("gamma", gamma)

    @property
    def r0(self) -> float:
        """Basic reproduction number ``beta / gamma`` of the SEIR model."""
        return self.beta / self.gamma

    def derivatives(self, state: np.ndarray) -> np.ndarray:
        """Right-hand side of the SEIR ODE at ``state = (S, E, I, R)``."""
        s, e, i, r = state
        population = s + e + i + r
        if population <= 0:
            raise ValidationError("population must be positive")
        force = self.beta * s * i / population
        return np.array(
            [-force, force - self.sigma * e, self.sigma * e - self.gamma * i, self.gamma * i]
        )

    def simulate(
        self,
        s0: float,
        e0: float,
        i0: float,
        r0: float = 0.0,
        steps: int = 100,
        dt: float = 1.0,
    ) -> SEIRTrajectory:
        """Integrate the ODE with classic RK4 for ``steps`` steps of ``dt``."""
        for name, value in (("s0", s0), ("e0", e0), ("i0", i0), ("r0", r0)):
            check_non_negative(name, value)
        if steps < 1:
            raise ValidationError(f"steps must be >= 1, got {steps}")
        check_positive("dt", dt)
        state = np.array([s0, e0, i0, r0], dtype=float)
        history = np.empty((steps + 1, 4))
        history[0] = state
        for step in range(1, steps + 1):
            k1 = self.derivatives(state)
            k2 = self.derivatives(state + 0.5 * dt * k1)
            k3 = self.derivatives(state + 0.5 * dt * k2)
            k4 = self.derivatives(state + dt * k3)
            state = state + dt / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4)
            state = np.clip(state, 0.0, None)
            history[step] = state
        times = np.arange(steps + 1) * dt
        return SEIRTrajectory(
            times=times,
            susceptible=history[:, 0],
            exposed=history[:, 1],
            infectious=history[:, 2],
            recovered=history[:, 3],
        )


def fit_beta(
    incidence: np.ndarray,
    population: float,
    sigma: float,
    gamma: float,
    initial_infectious: float = 1.0,
    beta_grid: np.ndarray | None = None,
) -> float:
    """Least-squares transmission rate from an observed incidence curve.

    Simulates SEIR for each candidate beta (coarse grid, then a golden-ratio
    refinement around the best grid point) and returns the beta minimising
    the L2 distance between simulated and observed per-step incidence.  This
    is the estimator behind the demo's "accuracy of transmission model
    estimation" metric.
    """
    observed = np.asarray(incidence, dtype=float)
    if observed.ndim != 1 or len(observed) < 2:
        raise ValidationError("incidence must be a 1-D series with >= 2 entries")
    check_positive("population", population)
    steps = len(observed)

    def loss(beta: float) -> float:
        model = SEIRModel(beta=beta, sigma=sigma, gamma=gamma)
        run = model.simulate(
            s0=population - initial_infectious,
            e0=0.0,
            i0=initial_infectious,
            steps=steps,
        )
        return float(((run.incidence - observed) ** 2).sum())

    if beta_grid is None:
        beta_grid = np.linspace(0.01, 3.0 * gamma * 3.0, 60)
    losses = [loss(float(beta)) for beta in beta_grid]
    best = int(np.argmin(losses))
    low = float(beta_grid[max(best - 1, 0)])
    high = float(beta_grid[min(best + 1, len(beta_grid) - 1)])

    # Golden-section refinement on [low, high].
    golden = (np.sqrt(5.0) - 1.0) / 2.0
    a, b = low, high
    c = b - golden * (b - a)
    d = a + golden * (b - a)
    loss_c, loss_d = loss(c), loss(d)
    for _ in range(40):
        if loss_c < loss_d:
            b, d, loss_d = d, c, loss_c
            c = b - golden * (b - a)
            loss_c = loss(c)
        else:
            a, c, loss_c = c, d, loss_d
            d = a + golden * (b - a)
            loss_d = loss(d)
    return (a + b) / 2.0
