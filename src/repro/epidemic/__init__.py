"""Epidemic-surveillance applications (the three Apps of Fig. 3).

* :mod:`repro.epidemic.seir`     — the SEIR transmission model [11] and R0.
* :mod:`repro.epidemic.outbreak` — agent-based epidemic over co-locations,
  the ground-truth generator for every surveillance experiment.
* :mod:`repro.epidemic.monitor`  — location monitoring: coarse-area counts,
  flows, and the Euclidean utility metric.
* :mod:`repro.epidemic.analysis` — epidemic analysis: contact rates and R0
  estimation from true vs perturbed traces.
* :mod:`repro.epidemic.tracing`  — contact tracing with dynamic policy
  updates (policy Gc).
"""

from repro.epidemic.seir import SEIRModel
from repro.epidemic.outbreak import OutbreakResult, simulate_outbreak
from repro.epidemic.monitor import LocationMonitor, monitoring_utility, perturbed_flows
from repro.epidemic.analysis import (
    contact_rate,
    estimate_r0_contacts,
    estimate_r0_seir,
    pair_events,
    perturb_tracedb,
    r0_estimation_error,
)
from repro.epidemic.tracing import ContactTracingProtocol, TracingOutcome, static_tracing
from repro.epidemic.healthcode import HealthCode, HealthCodeReport, HealthCodeService
from repro.epidemic.metapop import (
    MetapopulationSEIR,
    MetapopTrajectory,
    flow_matrix,
    forecast_divergence,
    forecast_from_flows,
)

__all__ = [
    "MetapopulationSEIR",
    "MetapopTrajectory",
    "flow_matrix",
    "forecast_divergence",
    "forecast_from_flows",
    "pair_events",
    "perturbed_flows",
    "HealthCode",
    "HealthCodeReport",
    "HealthCodeService",
    "SEIRModel",
    "OutbreakResult",
    "simulate_outbreak",
    "LocationMonitor",
    "monitoring_utility",
    "contact_rate",
    "estimate_r0_contacts",
    "estimate_r0_seir",
    "perturb_tracedb",
    "r0_estimation_error",
    "ContactTracingProtocol",
    "TracingOutcome",
    "static_tracing",
]
