"""Agent-based SEIR outbreak over a mobility trace database.

The surveillance experiments need ground truth: who infected whom, where, and
when.  This module runs a stochastic SEIR process on top of a
:class:`~repro.mobility.trajectory.TraceDB`: at every timestep, each
infectious user exposes each susceptible user sharing their cell with
probability ``p_transmit``; exposed users become infectious after a geometric
latent period (mean ``1/sigma``) and recover after a geometric infectious
period (mean ``1/gamma``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import DataError
from repro.mobility.trajectory import TraceDB
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_probability

__all__ = ["InfectionEvent", "OutbreakResult", "simulate_outbreak"]

SUSCEPTIBLE, EXPOSED, INFECTIOUS, RECOVERED = "S", "E", "I", "R"


@dataclass(frozen=True)
class InfectionEvent:
    """A transmission: ``source`` exposed ``target`` in ``cell`` at ``time``."""

    time: int
    source: int
    target: int
    cell: int


@dataclass
class OutbreakResult:
    """Full record of a simulated outbreak."""

    events: list[InfectionEvent]
    state_history: dict[int, dict[int, str]]  # time -> user -> compartment
    final_state: dict[int, str]
    seeds: tuple[int, ...]
    times: list[int] = field(default_factory=list)

    @property
    def infected_users(self) -> set[int]:
        """Everyone who was ever exposed (seeds included)."""
        return set(self.seeds) | {event.target for event in self.events}

    @property
    def attack_rate(self) -> float:
        """Fraction of the population ever infected."""
        return len(self.infected_users) / len(self.final_state)

    def incidence(self) -> np.ndarray:
        """New exposures per timestep, aligned with :attr:`times`."""
        counts = {time: 0 for time in self.times}
        for event in self.events:
            counts[event.time] += 1
        return np.array([counts[time] for time in self.times], dtype=float)

    def infectious_cells(self, user: int, db: TraceDB, start: int, end: int) -> set[tuple[int, int]]:
        """(cell, time) pairs where ``user`` was infectious within a window."""
        pairs = set()
        for time in range(start, end + 1):
            if self.state_history.get(time, {}).get(user) == INFECTIOUS:
                cell = db.location(user, time)
                if cell is not None:
                    pairs.add((cell, time))
        return pairs


def simulate_outbreak(
    db: TraceDB,
    seeds: Sequence[int],
    p_transmit: float = 0.3,
    sigma: float = 0.25,
    gamma: float = 0.1,
    rng=None,
) -> OutbreakResult:
    """Run a stochastic SEIR epidemic over the co-locations of ``db``.

    Parameters
    ----------
    seeds:
        Users starting in the INFECTIOUS compartment at the first timestep.
    p_transmit:
        Per-(co-location, timestep) transmission probability.
    sigma, gamma:
        Per-step probabilities of E->I progression and I->R recovery
        (geometric sojourn times with means ``1/sigma`` and ``1/gamma``).
    """
    check_probability("p_transmit", p_transmit)
    check_probability("sigma", sigma)
    check_probability("gamma", gamma)
    generator = ensure_rng(rng)
    users = db.users()
    unknown = set(seeds) - users
    if unknown:
        raise DataError(f"seed users {sorted(unknown)} not in the trace database")
    if not seeds:
        raise DataError("need at least one seed user")

    state = {user: SUSCEPTIBLE for user in users}
    for seed in seeds:
        state[seed] = INFECTIOUS

    events: list[InfectionEvent] = []
    history: dict[int, dict[int, str]] = {}
    times = db.times()
    for time in times:
        history[time] = dict(state)
        snapshot = db.at_time(time)
        by_cell: dict[int, list[int]] = {}
        for user, cell in snapshot.items():
            by_cell.setdefault(cell, []).append(user)
        newly_exposed: list[int] = []
        for cell, members in by_cell.items():
            infectious = [user for user in members if state[user] == INFECTIOUS]
            if not infectious:
                continue
            for user in members:
                if state[user] != SUSCEPTIBLE:
                    continue
                for source in infectious:
                    if generator.random() < p_transmit:
                        events.append(
                            InfectionEvent(time=time, source=source, target=user, cell=cell)
                        )
                        newly_exposed.append(user)
                        break
        # Progression happens after exposure so E users wait >= 1 step.
        for user in users:
            if state[user] == EXPOSED and generator.random() < sigma:
                state[user] = INFECTIOUS
            elif state[user] == INFECTIOUS and generator.random() < gamma:
                state[user] = RECOVERED
        for user in newly_exposed:
            state[user] = EXPOSED

    return OutbreakResult(
        events=events,
        state_history=history,
        final_state=dict(state),
        seeds=tuple(seeds),
        times=times,
    )
