"""ASCII visualisation of worlds, policies, and beliefs.

The PANDA demo is an interactive visual tool (Fig. 5); this module is its
terminal-friendly counterpart, used by the examples: render a policy graph's
structure over the map, a probability heat-map (adversary posterior,
delta-location sets), or a trace snapshot.  Pure string assembly — no
plotting dependency.
"""

from __future__ import annotations

import numpy as np

from repro.core.policy_graph import PolicyGraph
from repro.errors import ValidationError
from repro.geo.grid import GridWorld

__all__ = ["render_policy", "render_heatmap", "render_cells"]

#: Ten shades from empty to full, used by the heat-map renderer.
_SHADES = " .:-=+*#%@"


def render_policy(world: GridWorld, graph: PolicyGraph, max_width: int = 40) -> str:
    """Render a policy graph as a degree map.

    Each cell shows one character: ``X`` for disclosable (isolated) nodes,
    ``.`` for untouched cells outside the policy, and a digit/letter scaling
    with the node's degree — enough to see cliques, grids and isolated
    infected cells at a glance.  Rows are printed north (top) to south.
    """
    if world.width > max_width:
        raise ValidationError(f"world too wide to render (>{max_width} columns)")
    lines = []
    for row in reversed(range(world.height)):
        cells = []
        for col in range(world.width):
            cell = world.cell_of(row, col)
            if cell not in graph:
                cells.append(".")
            elif graph.is_disclosable(cell):
                cells.append("X")
            else:
                degree = graph.degree(cell)
                cells.append(_degree_glyph(degree))
        lines.append(" ".join(cells))
    legend = "legend: X=disclosable, 1-9=degree, a-z=degree 10+, .=outside policy"
    return "\n".join(lines + [legend])


def _degree_glyph(degree: int) -> str:
    if degree <= 9:
        return str(degree)
    index = min(degree - 10, 25)
    return chr(ord("a") + index)


def render_heatmap(world: GridWorld, values, max_width: int = 40) -> str:
    """Render a per-cell value vector as an ASCII heat-map.

    Values are min-max normalised to ten shades; use it for adversary
    posteriors, priors, or visit counts.
    """
    if world.width > max_width:
        raise ValidationError(f"world too wide to render (>{max_width} columns)")
    data = np.asarray(values, dtype=float)
    if data.shape != (world.n_cells,):
        raise ValidationError(f"values must have shape ({world.n_cells},), got {data.shape}")
    low, high = float(data.min()), float(data.max())
    span = high - low
    lines = []
    for row in reversed(range(world.height)):
        glyphs = []
        for col in range(world.width):
            value = data[world.cell_of(row, col)]
            level = 0 if span == 0 else int((value - low) / span * (len(_SHADES) - 1))
            glyphs.append(_SHADES[level])
        lines.append("".join(glyphs))
    return "\n".join(lines)


def render_cells(world: GridWorld, cells, marker: str = "#", max_width: int = 40) -> str:
    """Render a set of cells (delta-location set, infected area) on the map."""
    if world.width > max_width:
        raise ValidationError(f"world too wide to render (>{max_width} columns)")
    members = {world.check_cell(c) for c in cells}
    lines = []
    for row in reversed(range(world.height)):
        glyphs = [
            marker if world.cell_of(row, col) in members else "."
            for col in range(world.width)
        ]
        lines.append("".join(glyphs))
    return "\n".join(lines)
