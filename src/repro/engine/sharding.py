"""Population sharding for release rounds: plans, shard tasks, merge.

PR 1–2 made a release *round* fast (one vectorized ``release_batch`` per
timestep); this module scales *across users*.  A :class:`ShardPlan` splits
the population into deterministic shards, each shard releases its users'
whole trace through the engine, an
:class:`~repro.engine.backends.ExecutionBackend` decides how the shards run
(serial / thread pool / process pool), and :func:`sharded_release_rounds`
merges the per-shard output back into time-ordered rounds for the server.

Determinism contract
--------------------
Randomness is attached to *users*, not shards: the plan draws one seed per
user from the parent ``rng`` (:func:`~repro.utils.rng.spawn_seeds`), indexed
by the user's position in the globally sorted user list.  A user's releases
therefore depend only on ``(parent seed, user list, their trace)`` — never on
the shard count or the backend — so a k-shard run reproduces the 1-shard run
element-wise, and both reproduce the per-client protocol reference
(:func:`repro.server.pipeline.run_release_rounds`), which spawns the same
per-user streams.  Seeds (plain ints) rather than live generators are what a
:class:`~repro.engine.backends.ProcessBackend` pickles across the process
boundary.
"""

from __future__ import annotations

import hashlib
import threading
from bisect import bisect_right
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.core.mechanisms.base import ReleaseBatch
from repro.core.workspace import RoundWorkspace
from repro.engine.backends import ExecutionBackend, owned_backend
from repro.engine.engine import EngineRef, resolve_release_source
from repro.errors import DataError, ValidationError
from repro.utils.rng import spawn_seeds

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.engine.engine import PrivacyEngine
    from repro.mobility.trajectory import TraceDB

__all__ = [
    "ShardPlan",
    "ShardTask",
    "sharded_release_rounds",
    "stream_shard_releases",
]


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of a user population with per-user streams.

    Attributes
    ----------
    users:
        The population in globally sorted order.  Shard ``i`` owns the
        ``i``-th contiguous block of this list (balanced like
        ``np.array_split``), so every shard's user subset is itself sorted
        and concatenating shards in index order re-yields ``users``.
    seeds:
        One RNG-stream seed per user, aligned with ``users``.  Drawn by
        :func:`~repro.utils.rng.spawn_seeds` from the parent ``rng``, so the
        mapping ``user -> seed`` depends only on the parent seed and the user
        list — not on ``n_shards`` — which is what makes release output
        invariant under re-sharding.
    n_shards:
        Number of shards (>= 1).  May exceed ``len(users)``; the surplus
        shards are simply empty.
    """

    users: tuple[int, ...]
    seeds: tuple[int, ...]
    n_shards: int

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1, got {self.n_shards}")
        if len(self.users) != len(self.seeds):
            raise ValidationError(
                f"{len(self.users)} users but {len(self.seeds)} seeds"
            )
        if list(self.users) != sorted(set(self.users)):
            raise ValidationError("users must be sorted and unique")

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        users: Sequence[int],
        n_shards: int,
        rng: "int | np.random.Generator | None" = None,
    ) -> "ShardPlan":
        """Plan ``n_shards`` shards over ``users`` with streams from ``rng``.

        Parameters
        ----------
        users:
            The population (any order; sorted and deduplicated here so the
            plan is a function of the *set* of users).
        n_shards:
            Desired shard count, >= 1.
        rng:
            Parent seed source for the per-user streams.  The same
            ``(rng seed, users)`` pair always yields the same plan.
        """
        ordered = sorted({int(user) for user in users})
        seeds = spawn_seeds(rng, len(ordered))
        return cls(users=tuple(ordered), seeds=tuple(seeds), n_shards=int(n_shards))

    # ------------------------------------------------------------------
    @cached_property
    def _boundaries(self) -> list[int]:
        """Cumulative end index of each shard's user block (computed once)."""
        n, k = len(self.users), self.n_shards
        size, extra = divmod(n, k)
        ends, stop = [], 0
        for shard in range(k):
            stop += size + (1 if shard < extra else 0)
            ends.append(stop)
        return ends

    @cached_property
    def fingerprint(self) -> str:
        """SHA-256 identity of the plan's seed material.

        Covers the sorted user list, every per-user stream seed, and the
        shard count — everything a resumed run must share with the original
        for re-derivation to be bit-identical.  Two plans built from the
        same ``(rng seed, users)`` always agree; a different parent seed,
        population, or shard count yields a different fingerprint.  Recorded
        by :class:`~repro.store.resume.RunManifest` and validated on resume.
        """
        digest = hashlib.sha256()
        digest.update(np.asarray(self.users, dtype=np.int64).tobytes())
        digest.update(np.asarray(self.seeds, dtype=np.uint64).tobytes())
        digest.update(int(self.n_shards).to_bytes(8, "little"))
        return digest.hexdigest()

    def _index_of(self, user: int) -> int:
        """Position of ``user`` in the sorted user list (its stream index)."""
        index = bisect_right(self.users, int(user)) - 1
        if index < 0 or self.users[index] != int(user):
            raise DataError(f"user {user} is not in this shard plan")
        return index

    def shard_of(self, user: int) -> int:
        """Shard index owning ``user`` (raises if the user is unknown)."""
        return bisect_right(self._boundaries, self._index_of(user))

    def shard_members(self, shard: int) -> tuple[int, ...]:
        """Users owned by ``shard``, in sorted order."""
        if not 0 <= shard < self.n_shards:
            raise ValidationError(f"shard must be in [0, {self.n_shards}), got {shard}")
        ends = self._boundaries
        start = ends[shard - 1] if shard else 0
        return self.users[start : ends[shard]]

    def seed_of(self, user: int) -> int:
        """The RNG-stream seed assigned to ``user``."""
        return self.seeds[self._index_of(user)]

    def rng_for(self, user: int) -> np.random.Generator:
        """A fresh generator positioned at the start of ``user``'s stream."""
        return np.random.default_rng(self.seed_of(user))

    def assignment(self) -> dict[int, int]:
        """``{user: shard}`` for the whole population."""
        ends = self._boundaries
        out: dict[int, int] = {}
        shard = 0
        for index, user in enumerate(self.users):
            while index >= ends[shard]:
                shard += 1
            out[user] = shard
        return out

    def iter_shards(self) -> Iterator[tuple[int, tuple[int, ...], tuple[int, ...]]]:
        """Yield ``(shard, users, seeds)`` for every non-empty shard."""
        ends = self._boundaries
        start = 0
        for shard, stop in enumerate(ends):
            if stop > start:
                yield shard, self.users[start:stop], self.seeds[start:stop]
            start = stop

    def __len__(self) -> int:
        return len(self.users)

    def __repr__(self) -> str:
        return f"ShardPlan(users={len(self.users)}, n_shards={self.n_shards})"


@dataclass(frozen=True)
class ShardTask:
    """One shard's work order: its users, their seeds, and their traces.

    Plain data plus the engine, so a :class:`~repro.engine.backends.ProcessBackend`
    can pickle it to a worker.  ``engine`` is an
    :class:`~repro.engine.engine.EngineRef` whenever the engine was built
    from a spec — the ref pickles as a spec hash and the worker rebuilds
    (and caches) the engine, instead of re-shipping construction state with
    every task — and the live engine otherwise.  ``times[i]`` / ``cells[i]``
    are user ``users[i]``'s check-in times and true cells in time order.
    """

    engine: "PrivacyEngine | EngineRef"
    users: tuple[int, ...]
    seeds: tuple[int, ...]
    times: tuple[tuple[int, ...], ...]
    cells: tuple[tuple[int, ...], ...]


#: Per-worker-thread state: each thread that executes shards keeps its own
#: :class:`RoundWorkspace`, so the thread backend's concurrently running
#: shards never alias a buffer (one workspace serves one release stream).
#: Process workers get one per process the same way (a process has its own
#: module state and, for the serial/pool cases, a single executing thread).
_WORKER_STATE = threading.local()


def _shard_workspace(capacity: int) -> RoundWorkspace:
    """This worker thread's private workspace, grown to ``capacity``."""
    workspace = getattr(_WORKER_STATE, "workspace", None)
    if workspace is None:
        workspace = RoundWorkspace(capacity)
        _WORKER_STATE.workspace = workspace
    return workspace


def _execute_shard(task: ShardTask) -> tuple[np.ndarray, np.ndarray, np.ndarray, str]:
    """Release one shard's users: ``(points, exact, epsilons, mechanism)``.

    Each user's whole trace goes through one vectorized
    ``engine.release_batch`` call drawn from that user's own stream —
    element-wise identical to the scalar per-round ``release`` loop a
    :class:`~repro.server.pipeline.Client` runs.  Rows are ordered user-major
    (the task's user order, then time), matching the task's flattened
    ``times``/``cells``.  Module-level so process pools can pickle it.

    Kernel temporaries live in the worker thread's reused
    :class:`RoundWorkspace` (the batch views are copied straight into the
    shard's output arrays), so a long-lived worker allocates only the
    per-shard outputs — zero arrays per release round.
    """
    engine = resolve_release_source(task.engine)
    n = sum(len(cells) for cells in task.cells)
    longest = max((len(cells) for cells in task.cells), default=0)
    workspace = _shard_workspace(longest)
    points = np.empty((n, 2), dtype=float)
    exact = np.empty(n, dtype=bool)
    epsilons = np.empty(n, dtype=float)
    mechanism = ""
    offset = 0
    for seed, cells in zip(task.seeds, task.cells):
        batch = engine.release_batch(
            list(cells), rng=np.random.default_rng(seed), workspace=workspace
        )
        stop = offset + len(batch)
        points[offset:stop] = batch.points
        exact[offset:stop] = batch.exact
        epsilons[offset:stop] = batch.epsilons
        mechanism = batch.mechanism
        offset = stop
    return points, exact, epsilons, mechanism


def _shard_tasks(
    engine: "PrivacyEngine",
    true_db: "TraceDB",
    plan: ShardPlan,
    only_shards: "frozenset[int] | set[int] | None" = None,
) -> list[ShardTask]:
    """Materialise one picklable :class:`ShardTask` per selected non-empty shard."""
    tasks = []
    transferable = EngineRef.wrap(engine)
    for shard, users, seeds in plan.iter_shards():
        if only_shards is not None and shard not in only_shards:
            continue
        histories = [true_db.user_history(user) for user in users]
        tasks.append(
            ShardTask(
                engine=transferable,
                users=users,
                seeds=seeds,
                times=tuple(tuple(c.time for c in history) for history in histories),
                cells=tuple(tuple(c.cell for c in history) for history in histories),
            )
        )
    return tasks


def _flatten_task_rows(task: ShardTask) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """User-major ``(users, times, cells)`` row arrays for one shard task."""
    n = sum(len(times) for times in task.times)
    users_rows = np.empty(n, dtype=int)
    times_rows = np.empty(n, dtype=int)
    cells_rows = np.empty(n, dtype=int)
    offset = 0
    for user, user_times, user_cells in zip(task.users, task.times, task.cells):
        stop = offset + len(user_times)
        users_rows[offset:stop] = user
        times_rows[offset:stop] = user_times
        cells_rows[offset:stop] = user_cells
        offset = stop
    return users_rows, times_rows, cells_rows


def stream_shard_releases(
    engine: "PrivacyEngine",
    true_db: "TraceDB",
    plan: ShardPlan,
    backend: "str | ExecutionBackend | None" = "serial",
    only_shards: "frozenset[int] | set[int] | None" = None,
) -> Iterator[tuple[np.ndarray, np.ndarray, ReleaseBatch]]:
    """Yield each shard's releases **as the shard completes** (any order).

    The streaming counterpart of :func:`sharded_release_rounds`: instead of
    a full merge barrier (flatten every shard, lexsort the whole population,
    regroup into rounds), each completed shard is handed to the consumer
    immediately as ``(users, times, batch)`` row arrays in the shard's
    user-major order.  :meth:`~repro.server.pipeline.Server.ingest_shard`
    consumes exactly this shape and commits each shard's rows ordered by
    ``(time, user)``.

    Yield *order* follows shard completion and is therefore
    backend-dependent, but the yielded *values* are not: every user lives in
    exactly one shard and draws from their own seed stream, so the union of
    yielded rows — and any per-user downstream state — is a pure function of
    ``(engine, true_db, plan)``.

    Parameters
    ----------
    engine / true_db / plan:
        As in :func:`sharded_release_rounds` (the plan must cover exactly
        the database's users).
    backend:
        A registry name, live backend, or ``None`` (serial).  Backends named
        here are owned by this generator and closed when the iteration
        finishes or the consumer abandons it; live instances are left open
        for reuse.
    only_shards:
        Optional subset of shard indices to execute (others are skipped
        entirely — no task is even built).  This is the resume hook: a
        store-backed restart passes the shards whose ``(shard, round)``
        commits are incomplete.  Because each shard draws only from its own
        users' seed streams, running a subset yields exactly the rows the
        full run would have produced for those shards.
    """
    if plan.users != tuple(sorted(true_db.users())):
        raise DataError("shard plan does not cover the trace database's users")
    tasks = _shard_tasks(engine, true_db, plan, only_shards=only_shards)
    with owned_backend(backend) as live:
        for index, (points, exact, epsilons, mechanism) in live.run_unordered(
            _execute_shard, tasks
        ):
            task = tasks[index]
            users_rows, times_rows, cells_rows = _flatten_task_rows(task)
            yield users_rows, times_rows, ReleaseBatch(
                points=points,
                exact=exact,
                epsilons=epsilons,
                cells=cells_rows,
                mechanism=mechanism,
            )


def sharded_release_rounds(
    engine: "PrivacyEngine",
    true_db: "TraceDB",
    plan: ShardPlan,
    backend: "str | ExecutionBackend | None" = "serial",
) -> list[tuple[int, np.ndarray, ReleaseBatch]]:
    """Release the whole population shard-parallel, merged back into rounds.

    Parameters
    ----------
    engine:
        The engine every shard releases through (picklable, so process
        backends can ship it whole).
    true_db:
        Ground-truth traces; the plan must cover exactly its users.
    plan:
        Shard partition and per-user streams (see :class:`ShardPlan`).
    backend:
        Execution strategy — a registry name (``"serial"``, ``"thread"``,
        ``"process"``), a live backend, or ``None`` for serial.

    Returns
    -------
    list of ``(time, users, batch)``
        One entry per timestep, in increasing time order.  ``users`` is the
        sorted array of users observed at that time and ``batch`` the merged
        :class:`~repro.core.mechanisms.ReleaseBatch` with row ``i`` belonging
        to ``users[i]`` — exactly what :meth:`Server.ingest_batch` consumes.

    Determinism: output is a pure function of ``(engine, true_db, plan)``;
    the backend and shard count never change a single release (asserted per
    backend in ``tests/test_sharding.py``).  Backends named here (rather
    than passed live) are closed before returning, even on error.
    """
    if plan.users != tuple(sorted(true_db.users())):
        raise DataError("shard plan does not cover the trace database's users")
    tasks = _shard_tasks(engine, true_db, plan)
    with owned_backend(backend) as live:
        results = live.run(_execute_shard, tasks)

    # Flatten in shard order: shards hold contiguous blocks of the sorted
    # user list, so rows arrive sorted by (user, time) globally.
    n = sum(len(times) for task in tasks for times in task.times)
    users_rows = np.empty(n, dtype=int)
    times_rows = np.empty(n, dtype=int)
    cells_rows = np.empty(n, dtype=int)
    points = np.empty((n, 2), dtype=float)
    exact = np.empty(n, dtype=bool)
    epsilons = np.empty(n, dtype=float)
    mechanism = ""
    offset = 0
    for task, (shard_points, shard_exact, shard_epsilons, shard_mechanism) in zip(tasks, results):
        shard_start = offset
        task_users, task_times, task_cells = _flatten_task_rows(task)
        offset = shard_start + len(task_users)
        users_rows[shard_start:offset] = task_users
        times_rows[shard_start:offset] = task_times
        cells_rows[shard_start:offset] = task_cells
        points[shard_start:offset] = shard_points
        exact[shard_start:offset] = shard_exact
        epsilons[shard_start:offset] = shard_epsilons
        if shard_mechanism:
            mechanism = shard_mechanism

    # Regroup user-major rows into time-major rounds; lexsort keys are
    # last-key-primary, so this orders by time then user — a deterministic
    # round layout shared by every shard count and backend.
    order = np.lexsort((users_rows, times_rows))
    rounds: list[tuple[int, np.ndarray, ReleaseBatch]] = []
    sorted_times = times_rows[order]
    round_times, starts = np.unique(sorted_times, return_index=True)
    bounds = list(starts) + [len(order)]
    for i, time in enumerate(round_times):
        index = order[bounds[i] : bounds[i + 1]]
        rounds.append(
            (
                int(time),
                users_rows[index],
                ReleaseBatch(
                    points=points[index],
                    exact=exact[index],
                    epsilons=epsilons[index],
                    cells=cells_rows[index],
                    mechanism=mechanism,
                ),
            )
        )
    return rounds
