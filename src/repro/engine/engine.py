"""The PrivacyEngine facade: spec-driven construction, batched release.

``PrivacyEngine`` is the system's front door.  Where the seed API handed
callers a loose ``(world, policy, mechanism)`` triple and a scalar
``release`` loop, the engine is built once from a declarative spec and then
serves *populations*: :meth:`release_batch` perturbs thousands of locations
per call through the mechanisms' vectorized samplers, and
:meth:`pdf_matrix` hands the adversary / filtering stack whole likelihood
matrices.  Scalar ``release`` / ``pdf`` remain as thin wrappers, so notebook
users keep the one-liner ergonomics.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping, Sequence

import numpy as np

from repro.core.mechanisms import Mechanism, Release, ReleaseBatch
from repro.core.policy_graph import PolicyGraph
from repro.engine.specs import EngineSpec
from repro.errors import ValidationError
from repro.geo.grid import GridWorld

__all__ = ["PrivacyEngine", "EngineRef", "resolve_release_source"]


class PrivacyEngine:
    """Batched, spec-driven release engine over one world/policy/mechanism.

    Build it from parts (``PrivacyEngine(world, policy, mechanism)``) when
    you already hold live objects, or declaratively::

        engine = PrivacyEngine.from_spec(
            world, mechanism="planar_laplace", policy="G1", epsilon=1.0
        )
        batch = engine.release_batch(cells, rng=7)     # ReleaseBatch (SoA)
        likelihood = engine.pdf_matrix(batch.points)   # (n, n_cells)
    """

    def __init__(
        self,
        world: GridWorld,
        policy: PolicyGraph,
        mechanism: Mechanism,
        spec: EngineSpec | None = None,
    ) -> None:
        """Wrap live parts into an engine.

        Parameters
        ----------
        world / policy / mechanism:
            Must be mutually consistent — the mechanism has to have been
            built for exactly this world and policy graph (raises
            :class:`~repro.errors.ValidationError` otherwise).
        spec:
            The declarative description this engine was built from, if any;
            kept for manifests (:meth:`describe`) and for pipelines that
            honour a spec-level :class:`~repro.engine.specs.ExecutionSpec`.
        """
        if mechanism.world != world:
            raise ValidationError("mechanism was built for a different world")
        if mechanism.graph != policy:
            raise ValidationError("mechanism was built for a different policy graph")
        self.world = world
        self.policy = policy
        self.mechanism = mechanism
        self.spec = spec

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        world: GridWorld,
        spec: EngineSpec | None = None,
        *,
        mechanism: str = "planar_laplace",
        policy: str = "G1",
        epsilon: float = 1.0,
        mechanism_params: Mapping | None = None,
        policy_params: Mapping | None = None,
        backend: str | None = None,
        shards: int | None = None,
    ) -> "PrivacyEngine":
        """Build an engine from a spec, or from bare registry names.

        Parameters
        ----------
        world:
            The location universe the engine serves.
        spec:
            Prebuilt :class:`EngineSpec`; when given, every other keyword is
            ignored.  Otherwise the keywords assemble one:
            ``PrivacyEngine.from_spec(world, mechanism="planar_laplace",
            policy="G1", epsilon=1.0)``.
        mechanism / policy:
            Registry names or aliases (``"planar_laplace"`` / ``"P-LM"``).
        epsilon:
            Per-release privacy budget (> 0).
        mechanism_params / policy_params:
            Extra keyword arguments for the registered factories.
        backend / shards:
            Optional sharded-execution defaults recorded on the spec
            (see :class:`~repro.engine.specs.ExecutionSpec`); picked up by
            :func:`~repro.server.pipeline.run_release_rounds_batched` when
            the call site does not choose explicitly.

        Returns
        -------
        PrivacyEngine
            A live engine whose ``spec`` attribute records how it was built.
        """
        if spec is None:
            spec = EngineSpec.named(
                mechanism=mechanism,
                policy=policy,
                epsilon=epsilon,
                mechanism_params=mechanism_params,
                policy_params=policy_params,
                backend=backend,
                shards=shards,
            )
        policy_graph = spec.policy.build(world)
        built = spec.mechanism.build(world, policy_graph)
        return cls(world, policy_graph, built, spec=spec)

    # ------------------------------------------------------------------
    # Batched hot path
    # ------------------------------------------------------------------
    def release_batch(self, cells: Sequence[int], rng=None) -> ReleaseBatch:
        """Perturb many true locations in one vectorized call.

        Parameters
        ----------
        cells:
            Flat sequence of true cells, all covered by the policy.
        rng:
            Seed source (``None`` / int / generator).

        Returns
        -------
        ReleaseBatch
            Structure-of-arrays batch: ``points (n, 2)``, ``exact``,
            ``epsilons``, ``cells``.

        Determinism: element-wise identical (same seeded RNG stream) to
        sequential :meth:`release` calls — batching changes throughput, not
        semantics.  For population *rounds*, see
        :func:`~repro.server.pipeline.run_release_rounds_batched`, which can
        additionally shard this call across users.
        """
        return self.mechanism.release_batch(cells, rng=rng)

    def pdf_matrix(self, points, cells: Sequence[int] | None = None) -> np.ndarray:
        """Release likelihoods for the adversary / filtering stack.

        Parameters
        ----------
        points:
            ``(m, 2)`` released planar coordinates (a single point is
            auto-promoted).
        cells:
            Candidate true cells; defaults to the whole world.

        Returns
        -------
        numpy.ndarray
            ``(m, n)`` with ``out[i, j] = pdf(points[i] | cells[j])``;
            disclosable or uncovered cells contribute likelihood 0 (the
            Bayesian-inference convention, not :meth:`pdf`'s raising one).
        """
        return self.mechanism.pdf_matrix(points, cells)

    def snap_batch(self, batch: ReleaseBatch) -> np.ndarray:
        """Server-side discretisation: snapped cell ids, one per batch row."""
        return self.world.snap_batch(batch.points)

    # ------------------------------------------------------------------
    # Scalar compatibility wrappers
    # ------------------------------------------------------------------
    def release(self, cell: int, rng=None) -> Release:
        """Release one location (scalar wrapper over the mechanism)."""
        return self.mechanism.release(cell, rng=rng)

    def pdf(self, point, cell: int) -> float:
        """Release density at ``point`` given ``cell`` (scalar wrapper)."""
        return self.mechanism.pdf(point, cell)

    def is_exact(self, cell: int) -> bool:
        """Whether the policy discloses ``cell`` without perturbation."""
        return self.mechanism.is_exact(cell)

    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """Per-release privacy budget of the underlying mechanism."""
        return self.mechanism.epsilon

    def describe(self) -> dict:
        """JSON-safe summary, for logs and experiment manifests."""
        summary = {
            "mechanism": self.mechanism.name,
            "policy": self.policy.name,
            "epsilon": self.epsilon,
            "world": [self.world.width, self.world.height],
            "cell_size": self.world.cell_size,
        }
        if self.spec is not None:
            summary["spec"] = self.spec.to_dict()
        return summary

    def __repr__(self) -> str:
        return (
            f"PrivacyEngine(mechanism={self.mechanism.name}, "
            f"policy={self.policy.name!r}, epsilon={self.epsilon}, "
            f"world={self.world.width}x{self.world.height})"
        )


#: spec hash -> built engine, per process.  In a worker of the ``pool``
#: backend this cache outlives individual tasks *and* individual runs, which
#: is what amortises engine construction across repeated rounds/sweeps.
_ENGINE_CACHE: dict[str, PrivacyEngine] = {}


class EngineRef:
    """Picklable engine handle: a spec hash instead of a pickled engine.

    Shard tasks used to carry the live :class:`PrivacyEngine`, so every task
    sent to a process backend re-pickled the whole construction state
    (policy graph, cached sensitivities / hulls, the world) on every round.
    An ``EngineRef`` pickles down to the engine's declarative description —
    the canonical :meth:`EngineSpec.to_dict` JSON plus the world dimensions —
    and a deterministic SHA-256 hash of it.  On the receiving side
    :meth:`resolve` rebuilds the engine from that spec **once per process**
    and caches it under the hash, so a long-lived worker (the ``pool``
    backend) constructs each distinct engine exactly once no matter how many
    tasks or rounds it serves.

    Determinism: spec-built engines are pure functions of (spec, world), so
    a worker-rebuilt engine draws exactly the releases the originating
    engine would — the sharded determinism contract is unaffected.

    In-process (serial / thread backends, or the originating side of a
    process backend) the live engine is kept and returned directly; only
    pickling drops it.
    """

    __slots__ = ("_engine", "_payload")

    def __init__(self, engine: PrivacyEngine) -> None:
        if engine.spec is None:
            raise ValidationError(
                "EngineRef requires a spec-built engine (engine.spec is None)"
            )
        self._engine: PrivacyEngine | None = engine
        self._payload = (
            json.dumps(engine.spec.to_dict(), sort_keys=True),
            int(engine.world.width),
            int(engine.world.height),
            float(engine.world.cell_size),
        )

    @staticmethod
    def wrap(source):
        """``EngineRef`` for a spec-built engine; anything else unchanged.

        The convenience used by task builders: live mechanisms and spec-less
        engines still travel by value (the pre-ref behaviour), spec-built
        engines travel by reference.
        """
        if isinstance(source, PrivacyEngine) and source.spec is not None:
            return EngineRef(source)
        return source

    @property
    def spec_hash(self) -> str:
        """SHA-256 over (canonical spec JSON, world dims) — the cache key."""
        return hashlib.sha256(repr(self._payload).encode()).hexdigest()

    def resolve(self) -> PrivacyEngine:
        """The live engine: held, cached-by-hash, or rebuilt from the spec."""
        if self._engine is None:
            key = self.spec_hash
            engine = _ENGINE_CACHE.get(key)
            if engine is None:
                spec_json, width, height, cell_size = self._payload
                world = GridWorld(width, height, cell_size=cell_size)
                spec = EngineSpec.from_dict(json.loads(spec_json))
                engine = PrivacyEngine.from_spec(world, spec)
                _ENGINE_CACHE[key] = engine
            self._engine = engine
        return self._engine

    def __getstate__(self) -> dict:
        return {"payload": self._payload}

    def __setstate__(self, state: dict) -> None:
        self._payload = state["payload"]
        self._engine = None

    def __repr__(self) -> str:
        held = "live" if self._engine is not None else "unresolved"
        return f"EngineRef({self.spec_hash[:12]}, {held})"


def resolve_release_source(source):
    """Live release source from a task field: resolve refs, pass the rest.

    Shard tasks may carry a :class:`~repro.core.mechanisms.Mechanism`, a
    :class:`PrivacyEngine`, or an :class:`EngineRef`; scorers call this once
    and then treat the result uniformly (all three expose ``release`` /
    ``release_batch`` / ``pdf_matrix`` / ``world``).
    """
    if isinstance(source, EngineRef):
        return source.resolve()
    return source
