"""The PrivacyEngine facade: spec-driven construction, batched release.

``PrivacyEngine`` is the system's front door.  Where the seed API handed
callers a loose ``(world, policy, mechanism)`` triple and a scalar
``release`` loop, the engine is built once from a declarative spec and then
serves *populations*: :meth:`release_batch` perturbs thousands of locations
per call through the mechanisms' vectorized samplers, and
:meth:`pdf_matrix` hands the adversary / filtering stack whole likelihood
matrices.  Scalar ``release`` / ``pdf`` remain as thin wrappers, so notebook
users keep the one-liner ergonomics.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping, Sequence

import numpy as np

from repro.core.mechanisms import Mechanism, Release, ReleaseBatch
from repro.core.policy_graph import PolicyGraph
from repro.core.workspace import FusedRound, RoundWorkspace
from repro.engine.specs import EngineSpec
from repro.errors import ValidationError
from repro.geo.grid import GridWorld

__all__ = ["PrivacyEngine", "EngineRef", "resolve_release_source"]


class PrivacyEngine:
    """Batched, spec-driven release engine over one world/policy/mechanism.

    Build it from parts (``PrivacyEngine(world, policy, mechanism)``) when
    you already hold live objects, or declaratively::

        engine = PrivacyEngine.from_spec(
            world, mechanism="planar_laplace", policy="G1", epsilon=1.0
        )
        batch = engine.release_batch(cells, rng=7)     # ReleaseBatch (SoA)
        likelihood = engine.pdf_matrix(batch.points)   # (n, n_cells)
    """

    def __init__(
        self,
        world: GridWorld,
        policy: PolicyGraph,
        mechanism: Mechanism,
        spec: EngineSpec | None = None,
    ) -> None:
        """Wrap live parts into an engine.

        Parameters
        ----------
        world / policy / mechanism:
            Must be mutually consistent — the mechanism has to have been
            built for exactly this world and policy graph (raises
            :class:`~repro.errors.ValidationError` otherwise).
        spec:
            The declarative description this engine was built from, if any;
            kept for manifests (:meth:`describe`) and for pipelines that
            honour a spec-level :class:`~repro.engine.specs.ExecutionSpec`.
        """
        if mechanism.world != world:
            raise ValidationError("mechanism was built for a different world")
        if mechanism.graph != policy:
            raise ValidationError("mechanism was built for a different policy graph")
        self.world = world
        self.policy = policy
        self.mechanism = mechanism
        self.spec = spec

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        world: GridWorld,
        spec: EngineSpec | None = None,
        *,
        mechanism: str = "planar_laplace",
        policy: str = "G1",
        epsilon: float = 1.0,
        mechanism_params: Mapping | None = None,
        policy_params: Mapping | None = None,
        backend: str | None = None,
        shards: int | None = None,
        array_backend: str | None = None,
    ) -> "PrivacyEngine":
        """Build an engine from a spec, or from bare registry names.

        Parameters
        ----------
        world:
            The location universe the engine serves.
        spec:
            Prebuilt :class:`EngineSpec`; when given, every other keyword is
            ignored.  Otherwise the keywords assemble one:
            ``PrivacyEngine.from_spec(world, mechanism="planar_laplace",
            policy="G1", epsilon=1.0)``.
        mechanism / policy:
            Registry names or aliases (``"planar_laplace"`` / ``"P-LM"``).
        epsilon:
            Per-release privacy budget (> 0).
        mechanism_params / policy_params:
            Extra keyword arguments for the registered factories.
        backend / shards:
            Optional sharded-execution defaults recorded on the spec
            (see :class:`~repro.engine.specs.ExecutionSpec`); picked up by
            :func:`~repro.server.pipeline.run_release_rounds_batched` when
            the call site does not choose explicitly.
        array_backend:
            Optional array namespace for the mechanism kernels
            (``"numpy"`` / ``"cupy"`` / ``"torch"``, see
            :mod:`repro.core.xp`); recorded on the spec's execution block
            and applied to the built mechanism, so worker-rebuilt engines
            (:class:`EngineRef`) compute on the same backend.

        Returns
        -------
        PrivacyEngine
            A live engine whose ``spec`` attribute records how it was built.
        """
        if spec is None:
            spec = EngineSpec.named(
                mechanism=mechanism,
                policy=policy,
                epsilon=epsilon,
                mechanism_params=mechanism_params,
                policy_params=policy_params,
                backend=backend,
                shards=shards,
                array_backend=array_backend,
            )
        policy_graph = spec.policy.build(world)
        built = spec.mechanism.build(world, policy_graph)
        if spec.execution is not None and spec.execution.array_backend is not None:
            built.use_array_backend(spec.execution.array_backend)
        return cls(world, policy_graph, built, spec=spec)

    # ------------------------------------------------------------------
    # Batched hot path
    # ------------------------------------------------------------------
    def release_batch(
        self,
        cells: Sequence[int],
        rng=None,
        workspace: RoundWorkspace | None = None,
    ) -> ReleaseBatch:
        """Perturb many true locations in one vectorized call.

        Parameters
        ----------
        cells:
            Flat sequence of true cells, all covered by the policy.
        rng:
            Seed source (``None`` / int / generator).
        workspace:
            Optional :class:`~repro.core.workspace.RoundWorkspace`; when
            given, the batch columns are views into reused buffers (copy
            what you keep before the next workspace-backed call).

        Returns
        -------
        ReleaseBatch
            Structure-of-arrays batch: ``points (n, 2)``, ``exact``,
            ``epsilons``, ``cells``.

        Determinism: element-wise identical (same seeded RNG stream) to
        sequential :meth:`release` calls — batching changes throughput, not
        semantics.  For population *rounds*, see
        :func:`~repro.server.pipeline.run_release_rounds_batched`, which can
        additionally shard this call across users.
        """
        return self.mechanism.release_batch(cells, rng=rng, workspace=workspace)

    def pdf_matrix(
        self, points, cells: Sequence[int] | None = None, dtype=None
    ) -> np.ndarray:
        """Release likelihoods for the adversary / filtering stack.

        Parameters
        ----------
        points:
            ``(m, 2)`` released planar coordinates (a single point is
            auto-promoted).
        cells:
            Candidate true cells; defaults to the whole world.
        dtype:
            Output precision (default float64; ``np.float32`` for the
            adversary's single-precision mode).

        Returns
        -------
        numpy.ndarray
            ``(m, n)`` with ``out[i, j] = pdf(points[i] | cells[j])``;
            disclosable or uncovered cells contribute likelihood 0 (the
            Bayesian-inference convention, not :meth:`pdf`'s raising one).
        """
        return self.mechanism.pdf_matrix(points, cells, dtype=dtype)

    def snap_batch(self, batch: ReleaseBatch) -> np.ndarray:
        """Server-side discretisation: snapped cell ids, one per batch row."""
        return self.world.snap_batch(batch.points)

    def release_round_fused(
        self,
        cells: Sequence[int],
        rng=None,
        *,
        workspace: RoundWorkspace | None = None,
        block_rows: int | None = None,
        block_cols: int | None = None,
        users=None,
        times=None,
    ) -> FusedRound:
        """One fused release -> snap -> area -> flow-coding pass.

        The staged pipeline materialises a fresh array at every stage; this
        runs the same per-element operations through preallocated workspace
        buffers, so from the second round on a fused pass allocates nothing.
        On the numpy backend the outputs are **element-wise identical** to
        ``release_batch`` -> ``snap_batch`` -> ``area_of_batch`` (same RNG
        stream, same floating-op order); non-numpy backends fall back to the
        staged kernels and copy into the workspace (distributionally
        equivalent only).

        Parameters
        ----------
        cells / rng:
            As :meth:`release_batch`.
        workspace:
            Buffer pool to run over; ``None`` builds a private one sized to
            this round (reuse it across rounds for the zero-allocation
            steady state).
        block_rows / block_cols:
            When given, the snapped cells are also coarse-area coded
            (:meth:`~repro.geo.grid.GridWorld.area_of_batch`) into
            ``FusedRound.areas``.
        users / times:
            Optional per-row user ids and time stamps, in ``(user, time)``
            order.  When given alongside the block shape, consecutive-step
            flow codes (``area[i] * n_areas + area[i+1]``) and their mask
            are fused in as well — the exact codes
            :meth:`~repro.epidemic.monitor.LocationMonitor.flows_from_arrays`
            counts.

        Returns
        -------
        FusedRound
            Views into the workspace — consume or copy before the next
            fused round overwrites them.
        """
        if workspace is None:
            workspace = RoundWorkspace.for_population(len(cells))
        batch = self.mechanism.release_batch(cells, rng=rng, workspace=workspace)
        n = len(batch)
        snapped = self.world.snap_batch(
            batch.points, out=workspace.int_buffer("fused_snapped", n), workspace=workspace
        )
        areas = flow_codes = flow_mask = None
        if block_rows is not None and block_cols is not None:
            areas = self.world.area_of_batch(
                snapped,
                block_rows,
                block_cols,
                out=workspace.int_buffer("fused_areas", n),
                workspace=workspace,
            )
            if users is not None and times is not None and n > 1:
                users = np.asarray(users, dtype=int)
                times = np.asarray(times, dtype=int)
                n_areas = self.world.n_areas(block_rows, block_cols)
                flow_mask = workspace.bool_buffer("fused_flow_mask", n - 1)
                np.equal(users[1:], users[:-1], out=flow_mask)
                step = workspace.int_buffer("fused_flow_scratch", n - 1)
                np.add(times[:-1], 1, out=step)
                same_time = workspace.bool_buffer("fused_flow_tmask", n - 1)
                np.equal(times[1:], step, out=same_time)
                flow_mask &= same_time
                flow_codes = workspace.int_buffer("fused_flow_codes", n - 1)
                np.multiply(areas[:-1], n_areas, out=flow_codes)
                np.add(flow_codes, areas[1:], out=flow_codes)
        return FusedRound(
            batch=batch,
            snapped=snapped,
            areas=areas,
            flow_codes=flow_codes,
            flow_mask=flow_mask,
            workspace=workspace,
        )

    # ------------------------------------------------------------------
    # Scalar compatibility wrappers
    # ------------------------------------------------------------------
    def release(self, cell: int, rng=None) -> Release:
        """Release one location (scalar wrapper over the mechanism)."""
        return self.mechanism.release(cell, rng=rng)

    def pdf(self, point, cell: int) -> float:
        """Release density at ``point`` given ``cell`` (scalar wrapper)."""
        return self.mechanism.pdf(point, cell)

    def is_exact(self, cell: int) -> bool:
        """Whether the policy discloses ``cell`` without perturbation."""
        return self.mechanism.is_exact(cell)

    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """Per-release privacy budget of the underlying mechanism."""
        return self.mechanism.epsilon

    def describe(self) -> dict:
        """JSON-safe summary, for logs and experiment manifests."""
        summary = {
            "mechanism": self.mechanism.name,
            "policy": self.policy.name,
            "epsilon": self.epsilon,
            "world": [self.world.width, self.world.height],
            "cell_size": self.world.cell_size,
        }
        if self.spec is not None:
            summary["spec"] = self.spec.to_dict()
        return summary

    def __repr__(self) -> str:
        return (
            f"PrivacyEngine(mechanism={self.mechanism.name}, "
            f"policy={self.policy.name!r}, epsilon={self.epsilon}, "
            f"world={self.world.width}x{self.world.height})"
        )


#: spec hash -> built engine, per process.  In a worker of the ``pool``
#: backend this cache outlives individual tasks *and* individual runs, which
#: is what amortises engine construction across repeated rounds/sweeps.
_ENGINE_CACHE: dict[str, PrivacyEngine] = {}


class EngineRef:
    """Picklable engine handle: a spec hash instead of a pickled engine.

    Shard tasks used to carry the live :class:`PrivacyEngine`, so every task
    sent to a process backend re-pickled the whole construction state
    (policy graph, cached sensitivities / hulls, the world) on every round.
    An ``EngineRef`` pickles down to the engine's declarative description —
    the canonical :meth:`EngineSpec.to_dict` JSON plus the world dimensions —
    and a deterministic SHA-256 hash of it.  On the receiving side
    :meth:`resolve` rebuilds the engine from that spec **once per process**
    and caches it under the hash, so a long-lived worker (the ``pool``
    backend) constructs each distinct engine exactly once no matter how many
    tasks or rounds it serves.

    Determinism: spec-built engines are pure functions of (spec, world), so
    a worker-rebuilt engine draws exactly the releases the originating
    engine would — the sharded determinism contract is unaffected.

    In-process (serial / thread backends, or the originating side of a
    process backend) the live engine is kept and returned directly; only
    pickling drops it.
    """

    __slots__ = ("_engine", "_payload")

    def __init__(self, engine: PrivacyEngine) -> None:
        if engine.spec is None:
            raise ValidationError(
                "EngineRef requires a spec-built engine (engine.spec is None)"
            )
        self._engine: PrivacyEngine | None = engine
        self._payload = (
            json.dumps(engine.spec.to_dict(), sort_keys=True),
            int(engine.world.width),
            int(engine.world.height),
            float(engine.world.cell_size),
        )

    @staticmethod
    def wrap(source):
        """``EngineRef`` for a spec-built engine; anything else unchanged.

        The convenience used by task builders: live mechanisms and spec-less
        engines still travel by value (the pre-ref behaviour), spec-built
        engines travel by reference.
        """
        if isinstance(source, PrivacyEngine) and source.spec is not None:
            return EngineRef(source)
        return source

    @property
    def spec_hash(self) -> str:
        """SHA-256 over (canonical spec JSON, world dims) — the cache key."""
        return hashlib.sha256(repr(self._payload).encode()).hexdigest()

    def resolve(self) -> PrivacyEngine:
        """The live engine: held, cached-by-hash, or rebuilt from the spec."""
        if self._engine is None:
            key = self.spec_hash
            engine = _ENGINE_CACHE.get(key)
            if engine is None:
                spec_json, width, height, cell_size = self._payload
                world = GridWorld(width, height, cell_size=cell_size)
                spec = EngineSpec.from_dict(json.loads(spec_json))
                engine = PrivacyEngine.from_spec(world, spec)
                _ENGINE_CACHE[key] = engine
            self._engine = engine
        return self._engine

    def __getstate__(self) -> dict:
        return {"payload": self._payload}

    def __setstate__(self, state: dict) -> None:
        self._payload = state["payload"]
        self._engine = None

    def __repr__(self) -> str:
        held = "live" if self._engine is not None else "unresolved"
        return f"EngineRef({self.spec_hash[:12]}, {held})"


def resolve_release_source(source):
    """Live release source from a task field: resolve refs, pass the rest.

    Shard tasks may carry a :class:`~repro.core.mechanisms.Mechanism`, a
    :class:`PrivacyEngine`, or an :class:`EngineRef`; scorers call this once
    and then treat the result uniformly (all three expose ``release`` /
    ``release_batch`` / ``pdf_matrix`` / ``world``).
    """
    if isinstance(source, EngineRef):
        return source.resolve()
    return source
