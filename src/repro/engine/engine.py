"""The PrivacyEngine facade: spec-driven construction, batched release.

``PrivacyEngine`` is the system's front door.  Where the seed API handed
callers a loose ``(world, policy, mechanism)`` triple and a scalar
``release`` loop, the engine is built once from a declarative spec and then
serves *populations*: :meth:`release_batch` perturbs thousands of locations
per call through the mechanisms' vectorized samplers, and
:meth:`pdf_matrix` hands the adversary / filtering stack whole likelihood
matrices.  Scalar ``release`` / ``pdf`` remain as thin wrappers, so notebook
users keep the one-liner ergonomics.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.mechanisms import Mechanism, Release, ReleaseBatch
from repro.core.policy_graph import PolicyGraph
from repro.engine.specs import EngineSpec
from repro.errors import ValidationError
from repro.geo.grid import GridWorld

__all__ = ["PrivacyEngine"]


class PrivacyEngine:
    """Batched, spec-driven release engine over one world/policy/mechanism.

    Build it from parts (``PrivacyEngine(world, policy, mechanism)``) when
    you already hold live objects, or declaratively::

        engine = PrivacyEngine.from_spec(
            world, mechanism="planar_laplace", policy="G1", epsilon=1.0
        )
        batch = engine.release_batch(cells, rng=7)     # ReleaseBatch (SoA)
        likelihood = engine.pdf_matrix(batch.points)   # (n, n_cells)
    """

    def __init__(
        self,
        world: GridWorld,
        policy: PolicyGraph,
        mechanism: Mechanism,
        spec: EngineSpec | None = None,
    ) -> None:
        """Wrap live parts into an engine.

        Parameters
        ----------
        world / policy / mechanism:
            Must be mutually consistent — the mechanism has to have been
            built for exactly this world and policy graph (raises
            :class:`~repro.errors.ValidationError` otherwise).
        spec:
            The declarative description this engine was built from, if any;
            kept for manifests (:meth:`describe`) and for pipelines that
            honour a spec-level :class:`~repro.engine.specs.ExecutionSpec`.
        """
        if mechanism.world != world:
            raise ValidationError("mechanism was built for a different world")
        if mechanism.graph != policy:
            raise ValidationError("mechanism was built for a different policy graph")
        self.world = world
        self.policy = policy
        self.mechanism = mechanism
        self.spec = spec

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        world: GridWorld,
        spec: EngineSpec | None = None,
        *,
        mechanism: str = "planar_laplace",
        policy: str = "G1",
        epsilon: float = 1.0,
        mechanism_params: Mapping | None = None,
        policy_params: Mapping | None = None,
        backend: str | None = None,
        shards: int | None = None,
    ) -> "PrivacyEngine":
        """Build an engine from a spec, or from bare registry names.

        Parameters
        ----------
        world:
            The location universe the engine serves.
        spec:
            Prebuilt :class:`EngineSpec`; when given, every other keyword is
            ignored.  Otherwise the keywords assemble one:
            ``PrivacyEngine.from_spec(world, mechanism="planar_laplace",
            policy="G1", epsilon=1.0)``.
        mechanism / policy:
            Registry names or aliases (``"planar_laplace"`` / ``"P-LM"``).
        epsilon:
            Per-release privacy budget (> 0).
        mechanism_params / policy_params:
            Extra keyword arguments for the registered factories.
        backend / shards:
            Optional sharded-execution defaults recorded on the spec
            (see :class:`~repro.engine.specs.ExecutionSpec`); picked up by
            :func:`~repro.server.pipeline.run_release_rounds_batched` when
            the call site does not choose explicitly.

        Returns
        -------
        PrivacyEngine
            A live engine whose ``spec`` attribute records how it was built.
        """
        if spec is None:
            spec = EngineSpec.named(
                mechanism=mechanism,
                policy=policy,
                epsilon=epsilon,
                mechanism_params=mechanism_params,
                policy_params=policy_params,
                backend=backend,
                shards=shards,
            )
        policy_graph = spec.policy.build(world)
        built = spec.mechanism.build(world, policy_graph)
        return cls(world, policy_graph, built, spec=spec)

    # ------------------------------------------------------------------
    # Batched hot path
    # ------------------------------------------------------------------
    def release_batch(self, cells: Sequence[int], rng=None) -> ReleaseBatch:
        """Perturb many true locations in one vectorized call.

        Parameters
        ----------
        cells:
            Flat sequence of true cells, all covered by the policy.
        rng:
            Seed source (``None`` / int / generator).

        Returns
        -------
        ReleaseBatch
            Structure-of-arrays batch: ``points (n, 2)``, ``exact``,
            ``epsilons``, ``cells``.

        Determinism: element-wise identical (same seeded RNG stream) to
        sequential :meth:`release` calls — batching changes throughput, not
        semantics.  For population *rounds*, see
        :func:`~repro.server.pipeline.run_release_rounds_batched`, which can
        additionally shard this call across users.
        """
        return self.mechanism.release_batch(cells, rng=rng)

    def pdf_matrix(self, points, cells: Sequence[int] | None = None) -> np.ndarray:
        """Release likelihoods for the adversary / filtering stack.

        Parameters
        ----------
        points:
            ``(m, 2)`` released planar coordinates (a single point is
            auto-promoted).
        cells:
            Candidate true cells; defaults to the whole world.

        Returns
        -------
        numpy.ndarray
            ``(m, n)`` with ``out[i, j] = pdf(points[i] | cells[j])``;
            disclosable or uncovered cells contribute likelihood 0 (the
            Bayesian-inference convention, not :meth:`pdf`'s raising one).
        """
        return self.mechanism.pdf_matrix(points, cells)

    def snap_batch(self, batch: ReleaseBatch) -> np.ndarray:
        """Server-side discretisation: snapped cell ids, one per batch row."""
        return self.world.snap_batch(batch.points)

    # ------------------------------------------------------------------
    # Scalar compatibility wrappers
    # ------------------------------------------------------------------
    def release(self, cell: int, rng=None) -> Release:
        """Release one location (scalar wrapper over the mechanism)."""
        return self.mechanism.release(cell, rng=rng)

    def pdf(self, point, cell: int) -> float:
        """Release density at ``point`` given ``cell`` (scalar wrapper)."""
        return self.mechanism.pdf(point, cell)

    def is_exact(self, cell: int) -> bool:
        """Whether the policy discloses ``cell`` without perturbation."""
        return self.mechanism.is_exact(cell)

    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """Per-release privacy budget of the underlying mechanism."""
        return self.mechanism.epsilon

    def describe(self) -> dict:
        """JSON-safe summary, for logs and experiment manifests."""
        summary = {
            "mechanism": self.mechanism.name,
            "policy": self.policy.name,
            "epsilon": self.epsilon,
            "world": [self.world.width, self.world.height],
            "cell_size": self.world.cell_size,
        }
        if self.spec is not None:
            summary["spec"] = self.spec.to_dict()
        return summary

    def __repr__(self) -> str:
        return (
            f"PrivacyEngine(mechanism={self.mechanism.name}, "
            f"policy={self.policy.name!r}, epsilon={self.epsilon}, "
            f"world={self.world.width}x{self.world.height})"
        )
