"""String-name registries for mechanisms and policies.

The engine's declarative specs resolve names through these tables, so every
layer that needs "a mechanism called X" — experiment configs, the CLI, saved
spec files — shares one source of truth.  Canonical names are lowercase
snake_case identifiers; the paper's display names ("P-LM", "Ga", ...) are
registered as aliases, and resolution is case-insensitive so interactive
callers never fight the spelling.

Factories take ``(world, policy, epsilon, **params)`` for mechanisms and
``(world, **params)`` for policies, which is what lets specs carry optional
keyword parameters (e.g. the LP mechanism's ``max_component_size``).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.mechanisms import (
    GeoIndistinguishabilityMechanism,
    GraphExponentialMechanism,
    Mechanism,
    OptimalDiscreteMechanism,
    PolicyLaplaceMechanism,
    PolicyPlanarIsotropicMechanism,
)
from repro.core.policies import (
    area_policy,
    contact_tracing_policy,
    grid_policy,
    location_set_policy,
)
from repro.core.policy_graph import PolicyGraph
from repro.errors import ValidationError
from repro.geo.grid import GridWorld

__all__ = [
    "MechanismFactory",
    "PolicyBuilder",
    "on_policy_registration",
    "register_mechanism",
    "register_policy",
    "resolve_mechanism",
    "resolve_policy",
    "mechanism_names",
    "policy_names",
]

MechanismFactory = Callable[..., Mechanism]
PolicyBuilder = Callable[..., PolicyGraph]

_MECHANISMS: dict[str, MechanismFactory] = {}
_POLICIES: dict[str, PolicyBuilder] = {}
#: casefolded alias -> canonical name, shared by both registries' lookups.
_MECHANISM_ALIASES: dict[str, str] = {}
_POLICY_ALIASES: dict[str, str] = {}


def _register(
    table: dict, aliases_table: dict, name: str, factory, aliases: Iterable[str]
) -> None:
    """Shared registration: store the factory, casefold-index every alias.

    Also used by the execution-backend registry
    (:mod:`repro.engine.backends`), so all three name tables share one
    resolution semantics.
    """
    canonical = str(name)
    table[canonical] = factory
    for alias in (canonical, *aliases):
        aliases_table[str(alias).casefold()] = canonical


def _resolve(table: dict, aliases_table: dict, kind: str, name: str) -> tuple[str, Callable]:
    """Shared lookup: ``(canonical_name, factory)`` or a uniform error."""
    canonical = aliases_table.get(str(name).casefold())
    if canonical is None:
        raise ValidationError(
            f"unknown {kind} {name!r}; choose from {sorted(table)}"
        )
    return canonical, table[canonical]


def register_mechanism(
    name: str, factory: MechanismFactory, aliases: Iterable[str] = ()
) -> None:
    """Register a mechanism factory under ``name`` (plus optional aliases)."""
    _register(_MECHANISMS, _MECHANISM_ALIASES, name, factory, aliases)


#: callbacks fired whenever a policy (re-)registration changes the table, so
#: downstream memoizers (e.g. the experiment layer's built-policy cache) can
#: invalidate instead of serving graphs built by a replaced builder.
_POLICY_REGISTRATION_CALLBACKS: list[Callable[[], None]] = []


def on_policy_registration(callback: Callable[[], None]) -> None:
    """Call ``callback`` after every :func:`register_policy`."""
    _POLICY_REGISTRATION_CALLBACKS.append(callback)


def register_policy(
    name: str, builder: PolicyBuilder, aliases: Iterable[str] = ()
) -> None:
    """Register a policy builder under ``name`` (plus optional aliases)."""
    _register(_POLICIES, _POLICY_ALIASES, name, builder, aliases)
    for callback in _POLICY_REGISTRATION_CALLBACKS:
        callback()


def resolve_mechanism(name: str) -> tuple[str, MechanismFactory]:
    """``(canonical_name, factory)`` for any registered name or alias."""
    return _resolve(_MECHANISMS, _MECHANISM_ALIASES, "mechanism", name)


def resolve_policy(name: str) -> tuple[str, PolicyBuilder]:
    """``(canonical_name, builder)`` for any registered name or alias."""
    return _resolve(_POLICIES, _POLICY_ALIASES, "policy", name)


def mechanism_names() -> list[str]:
    """Canonical names of every registered mechanism, sorted."""
    return sorted(_MECHANISMS)


def policy_names() -> list[str]:
    """Canonical names of every registered policy, sorted."""
    return sorted(_POLICIES)


# ----------------------------------------------------------------------
# Built-in mechanisms (canonical name + the paper's display name).
# ----------------------------------------------------------------------
register_mechanism(
    "planar_laplace",
    lambda world, policy, epsilon, **params: PolicyLaplaceMechanism(
        world, policy, epsilon, **params
    ),
    aliases=("P-LM", "laplace"),
)
register_mechanism(
    "planar_isotropic",
    lambda world, policy, epsilon, **params: PolicyPlanarIsotropicMechanism(
        world, policy, epsilon, **params
    ),
    aliases=("P-PIM", "pim"),
)
register_mechanism(
    "graph_exponential",
    lambda world, policy, epsilon, **params: GraphExponentialMechanism(
        world, policy, epsilon, **params
    ),
    aliases=("GraphExp", "exponential"),
)
register_mechanism(
    "geo_indistinguishability",
    lambda world, policy, epsilon, **params: GeoIndistinguishabilityMechanism(
        world, epsilon, graph=policy, **params
    ),
    aliases=("Geo-I", "geo_i"),
)
register_mechanism(
    "optimal_lp",
    lambda world, policy, epsilon, **params: OptimalDiscreteMechanism(
        world, policy, epsilon, **params
    ),
    aliases=("Optimal-LP", "optimal"),
)


# ----------------------------------------------------------------------
# Built-in policies (the paper's menagerie, Fig. 2).
# ----------------------------------------------------------------------
def _g2_full(world: GridWorld, **params) -> PolicyGraph:
    """G2 over the whole map: complete indistinguishability (strictest)."""
    return location_set_policy(world, list(world), name="G2", **params)


def _gc_default(world: GridWorld, infected: Iterable[int] | None = None) -> PolicyGraph:
    """Gc with a deterministic infected corner, for policy-only sweeps.

    Real tracing runs derive the infected set from the diagnosed patient; the
    sweeps need *some* fixed Gc instance, so the top-left 2x2 block plays the
    infected area unless ``infected`` overrides it.
    """
    base = area_policy(world, 2, 2, name="Gb")
    if infected is None:
        rows = min(2, world.height)
        cols = min(2, world.width)
        infected = [world.cell_of(r, c) for r in range(rows) for c in range(cols)]
    return contact_tracing_policy(base, infected, name="Gc")


register_policy("G1", lambda world, **params: grid_policy(world, name="G1", **params), aliases=())
register_policy("G2", _g2_full, aliases=())
register_policy(
    "Ga", lambda world, **params: area_policy(world, 4, 4, name="Ga", **params), aliases=()
)
register_policy(
    "Gb", lambda world, **params: area_policy(world, 2, 2, name="Gb", **params), aliases=()
)
register_policy("Gc", _gc_default, aliases=())
