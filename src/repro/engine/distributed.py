"""Distributed evaluation: shard-parallel metrics over plans and backends.

PR 3 scaled the *release* (transactional) path across users; this module
gives the *evaluation* (analytical) path the same treatment without coupling
the two — the classic HTAP split of shared-but-decoupled infrastructure.
Both paths ride the same primitives: a deterministic
:class:`~repro.engine.sharding.ShardPlan` partitions the metric's work keys
(users for trace metrics like E1's ``monitoring_utility``, trial slots for
cell metrics like E4's ``adversary_error``) into contiguous shards with one
RNG-stream seed per key, and an
:class:`~repro.engine.backends.ExecutionBackend` decides how shards run.

Each shard scores only its own keys on those keys' own streams and returns a
:class:`MetricShardResult`; :func:`sharded_metric` executes the shards and
folds the results with :meth:`MetricShardResult.merge`.

Merge semantics (why results are invariant under sharding)
----------------------------------------------------------
The merge is deliberately **exact**, not approximate:

* Error-style components (*weighted means*) are carried as **per-key
  partial sums** plus per-key counts.  Merging concatenates the per-key
  arrays in shard order — concatenation is associative, and shards hold
  contiguous blocks of the key order, so any shard count reassembles the
  *identical* global array.  The final weighted mean
  (``sums.sum() / counts.sum()``) is then one reduction over that array:
  bit-identical for 1, 2, or 50 shards, on any backend.
* Count-style components (*flow reduction*) are carried as
  :class:`collections.Counter` maps and merged by integer addition — exact,
  associative, and commutative.  Three metric families ride this kind:
  E1's inter-area flow counts and E11's metapopulation flow matrices
  (within-user transitions, so per-user sharding partitions the global
  counters), and E2's **epoch-keyed occupancy counters** — ``(time, cell)
  -> head count`` maps from which the R0 contact estimator recovers the
  global co-location pair count as ``sum(n * (n - 1) / 2)`` per key, an
  integer identity no shard boundary can perturb.
* Membership-style components (*event sets*) are carried as frozensets and
  merged by union — the contact-tracing protocol's per-user contact-event
  sets (candidates / flagged / true contacts).  Every user lives in exactly
  one shard, so per-shard sets are disjoint and union is exact,
  associative, and commutative.

Randomness is attached to keys, never shards: seeds come from one
:func:`~repro.utils.rng.spawn_seeds` draw over the global key order, so the
key -> stream mapping cannot move when re-sharding.  Together the two
properties give the distributed-metric contract asserted in
``tests/test_distributed_eval.py``: *k*-shard output on any backend equals
the 1-shard single-process batched output exactly, and both match the
scalar per-release reference to float round-off.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from functools import reduce
from typing import AbstractSet, Callable, Mapping, Sequence, TypeVar

import numpy as np

from repro.engine.backends import ExecutionBackend, owned_backend
from repro.engine.sharding import ShardPlan
from repro.errors import ValidationError

__all__ = ["MetricShardResult", "sharded_metric", "merge_metric_results", "slot_plan"]

T = TypeVar("T")


def _component_arrays_equal(left, right) -> bool:
    """Exact array equality; NaNs compare equal so bit-identity is reflexive."""
    left = np.asarray(left)
    right = np.asarray(right)
    if np.issubdtype(left.dtype, np.inexact) or np.issubdtype(right.dtype, np.inexact):
        return bool(np.array_equal(left, right, equal_nan=True))
    return bool(np.array_equal(left, right))


@dataclass(frozen=True, eq=False)
class MetricShardResult:
    """One shard's contribution to a distributed metric, mergeable exactly.

    Attributes
    ----------
    sums:
        ``component name -> per-key partial sums`` (one float per work key
        owned by the shard, in the shard's key order).  Components that end
        up as weighted means (mean Euclidean error, area hits, inference
        error) live here.
    counts:
        Per-key release/trial counts aligned with every array in ``sums`` —
        the weights of the weighted means.
    flows:
        ``component name -> Counter`` for count-valued components merged by
        addition (E1's true/observed inter-area flows, E11's flow matrices,
        E2's epoch-keyed occupancy counters).  Empty for metrics without a
        count part.
    sets:
        ``component name -> frozenset`` for membership-valued components
        merged by union (the tracing protocol's per-user contact-event
        sets).  Per-shard sets are disjoint — every work key lives in
        exactly one shard — so union is exact.  Empty for metrics without
        a set part.
    """

    sums: Mapping[str, np.ndarray]
    counts: np.ndarray
    flows: Mapping[str, Counter]
    sets: Mapping[str, AbstractSet] = field(default_factory=dict)

    def merge(self, other: "MetricShardResult") -> "MetricShardResult":
        """Fold two shard results into one; associative and exact.

        Per-key arrays concatenate (``self`` first — callers merge in shard
        order, which reassembles the global key order), flow counters add,
        and event sets union.  Because none of the three operations rounds,
        ``merge`` is associative: any grouping of shards produces the same
        result, which is what the shard-count-invariance tests pin down.
        """
        if (
            set(self.sums) != set(other.sums)
            or set(self.flows) != set(other.flows)
            or set(self.sets) != set(other.sets)
        ):
            raise ValidationError("cannot merge shard results with different components")
        return MetricShardResult(
            sums={
                name: np.concatenate([values, other.sums[name]])
                for name, values in self.sums.items()
            },
            counts=np.concatenate([self.counts, other.counts]),
            flows={name: flows + other.flows[name] for name, flows in self.flows.items()},
            sets={
                name: frozenset(members) | frozenset(other.sets[name])
                for name, members in self.sets.items()
            },
        )

    # ------------------------------------------------------------------
    @classmethod
    def empty(
        cls,
        sum_names: Sequence[str] = (),
        flow_names: Sequence[str] = (),
        set_names: Sequence[str] = (),
    ) -> "MetricShardResult":
        """The merge identity for the given component layout.

        Zero-length per-key arrays, empty counters, empty sets — merging it
        (on either side) with any result carrying the same component names
        returns that result's values unchanged, which is what lets live
        folds treat rounds where a shard has no rows uniformly.
        """
        return cls(
            sums={name: np.empty(0, dtype=float) for name in sum_names},
            counts=np.empty(0, dtype=int),
            flows={name: Counter() for name in flow_names},
            sets={name: frozenset() for name in set_names},
        )

    @classmethod
    def fold(cls, results: Sequence["MetricShardResult"]) -> "MetricShardResult":
        """Left-fold ``results`` (in the given order) with :meth:`merge`.

        The caller's order *is* the canonical key order of the folded
        per-key arrays, so two folds agree bitwise iff they present the same
        results in the same order — exactly the contract live snapshots and
        the batch recompute share.
        """
        if not results:
            raise ValidationError("need at least one shard result to fold")
        return reduce(cls.merge, results)

    def freeze(self) -> "MetricShardResult":
        """A read-only view of this result, safe to hand to concurrent readers.

        Per-key arrays become non-writeable views (zero copy) and the
        component mappings become :class:`types.MappingProxyType` proxies,
        so a frozen snapshot published from the commit path cannot be
        mutated — accidentally or otherwise — by the analytical readers it
        is shared with.  Idempotent: freezing a frozen result is a no-op
        view of the same data.
        """
        from types import MappingProxyType

        def read_only(values) -> np.ndarray:
            view = np.asarray(values).view()
            view.flags.writeable = False
            return view

        return MetricShardResult(
            sums=MappingProxyType({name: read_only(v) for name, v in self.sums.items()}),
            counts=read_only(self.counts),
            flows=MappingProxyType(dict(self.flows)),
            sets=MappingProxyType({name: frozenset(v) for name, v in self.sets.items()}),
        )

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Structural equality: same components, bit-identical values.

        The frozen dataclass would otherwise inherit an ``__eq__`` that
        chokes on array-valued fields ("truth value of an array is
        ambiguous"), forcing every test to compare field by field.  Equality
        here means what the determinism suites assert: identical component
        names, per-key arrays equal element-wise (NaN == NaN), counters and
        sets equal as values.  Frozen/unfrozen status is irrelevant.
        """
        if not isinstance(other, MetricShardResult):
            return NotImplemented
        return (
            set(self.sums) == set(other.sums)
            and set(self.flows) == set(other.flows)
            and set(self.sets) == set(other.sets)
            and all(
                _component_arrays_equal(values, other.sums[name])
                for name, values in self.sums.items()
            )
            and _component_arrays_equal(self.counts, other.counts)
            and all(
                Counter(flows) == Counter(other.flows[name])
                for name, flows in self.flows.items()
            )
            and all(
                frozenset(members) == frozenset(other.sets[name])
                for name, members in self.sets.items()
            )
        )

    __hash__ = None  # structurally equal results are mutable-array-backed

    def __repr__(self) -> str:
        parts = [f"keys={self.n_keys}", f"releases={self.n_releases}"]
        if self.sums:
            parts.append(f"sums={sorted(self.sums)}")
        if self.flows:
            parts.append(f"flows={sorted(self.flows)}")
        if self.sets:
            parts.append(f"sets={sorted(self.sets)}")
        return f"MetricShardResult({', '.join(parts)})"

    # ------------------------------------------------------------------
    @property
    def n_keys(self) -> int:
        """Number of work keys (users / trial slots) covered so far."""
        return len(self.counts)

    @property
    def n_releases(self) -> int:
        """Total releases scored across all merged shards."""
        return int(self.counts.sum())

    def weighted_mean(self, name: str) -> float:
        """``sums[name].sum() / counts.sum()`` — the final metric value.

        One reduction over the reassembled global per-key array, so the
        value is bit-identical for every shard count and backend.
        """
        total = self.n_releases
        if total == 0:
            raise ValidationError("no releases scored; cannot take a mean")
        return float(self.sums[name].sum()) / total


def merge_metric_results(results: Sequence[MetricShardResult]) -> MetricShardResult:
    """Fold shard results in shard order into one :class:`MetricShardResult`."""
    if not results:
        raise ValidationError("need at least one shard result to merge")
    return reduce(MetricShardResult.merge, results)


def sharded_metric(
    scorer: Callable[[T], MetricShardResult],
    tasks: Sequence[T],
    backend: "str | ExecutionBackend | None" = None,
) -> MetricShardResult:
    """Score shard tasks on a backend and merge them into one result.

    Parameters
    ----------
    scorer:
        Module-level function mapping one shard task to a
        :class:`MetricShardResult` (module-level so process backends can
        pickle it).  Tasks carry everything the scorer needs — for process
        backends, spec-built engines travel as
        :class:`~repro.engine.engine.EngineRef` spec hashes that workers
        resolve against their local cache.
    tasks:
        One task per non-empty shard, in shard order.  Results are merged in
        this order regardless of completion order, so the backend can never
        influence the merged value.
    backend:
        Registry name, live backend, or ``None`` (serial).  Backends named
        here are owned by this call and closed before returning — even when
        a shard raises — so a failing sweep cannot leak a process pool.

    Returns
    -------
    MetricShardResult
        The exact fold of every shard's result; finalise with
        :meth:`MetricShardResult.weighted_mean` and the flow counters.
    """
    with owned_backend(backend) as live:
        results = live.run(scorer, tasks)
    return merge_metric_results(results)


def slot_plan(
    n_slots: int, shards: int, rng=None
) -> ShardPlan:
    """A :class:`ShardPlan` over trial slots ``0..n_slots-1``.

    Cell-level metrics (E4's ``utility_error`` / ``adversary_error`` /
    ``expected_inference_error``) have no users; their work keys are the
    positions of the evaluated true cells, which may repeat.  Slot indices
    are already sorted and unique, so they drop straight into
    :class:`ShardPlan` — reusing the exact per-key seeding (one
    ``spawn_seeds`` draw over the global slot order) and contiguous balanced
    partitioning that make the release path invariant under re-sharding.
    """
    if n_slots < 1:
        raise ValidationError("need at least one slot to shard")
    return ShardPlan.build(range(n_slots), shards, rng=rng)
