"""Socket-based RPC execution backend: shard fan-out over TCP workers.

This is the cluster-shaped member of the backend registry (``rpc``): a
coordinator (the :class:`RpcBackend` instance) listens on a loopback TCP
port, spawns worker *processes* (``python -m repro.engine.rpc --worker``),
and ships each shard task to a worker as a pickled frame.  Workers execute
the task function and stream ``(task_index, result)`` frames back, which
:meth:`RpcBackend.run_unordered` yields as they arrive — exactly the
streaming contract the ``pool`` backend satisfies, but over sockets, so the
same code path extends to remote machines.  Shard tasks already carry
:class:`~repro.engine.engine.EngineRef` spec hashes instead of pickled
engines, so rpc workers rebuild-and-cache engines per spec hash just like
``pool`` workers do — repeated rounds re-ship a 64-char hash, not an engine.

Wire protocol (all frames are length-prefixed pickles; the prefix is an
8-byte big-endian unsigned length)::

    worker -> coordinator   ("hello", token, pid)          handshake
    worker -> coordinator   ("heartbeat",)                 liveness, every
                                                           ~worker_timeout/4
    coordinator -> worker   ("task", epoch, index, fn, task)
    worker -> coordinator   ("result", epoch, index, value)
    worker -> coordinator   ("error", epoch, index, exception)
    coordinator -> worker   ("shutdown",)

``token`` is a per-coordinator secret passed through the worker's
environment; connections that fail the handshake are dropped.  ``epoch``
increments on every ``run_unordered`` call so frames from an abandoned call
can never be mistaken for current results.

**Failure model.**  Every shard task in this codebase is a pure function of
its seeds (the :class:`~repro.engine.sharding.ShardPlan` determinism
contract), so worker death is recoverable by construction: re-running the
task on any other worker yields a bit-identical result.  The coordinator
therefore treats EOF, a torn/undecodable frame, or a heartbeat gap longer
than ``worker_timeout`` as "worker lost": the process is killed, its
in-flight task is rescheduled on a surviving worker after an exponential
backoff (``retry_backoff * 2**(attempt-1)``), a replacement worker is
spawned, and the optional ``on_worker_lost(task_index, attempt)`` observer
is notified.  A task that loses its worker more than ``max_retries`` times
raises :class:`~repro.errors.WorkerLostError` — failures surface, they
never hang.  Exceptions *raised by the task function* are not retried; they
travel back as ``error`` frames and re-raise in the coordinator with their
original type, matching the ``process``/``pool`` backends.

The determinism matrix in ``tests/test_rpc_backend.py`` and the
fault-injection suite in ``tests/test_rpc_failures.py`` (SIGKILL mid-round,
repeated kills until retries exhaust, torn frames) pin this contract;
``docs/scaling.md`` documents it.
"""

from __future__ import annotations

import argparse
import os
import pickle
import secrets
import selectors
import socket
import struct
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Callable, Iterator, Sequence, TypeVar

from repro.engine.backends import ExecutionBackend
from repro.errors import ValidationError, WorkerLostError

__all__ = [
    "RpcBackend",
    "FrameError",
    "MAX_FRAME_BYTES",
    "send_frame",
    "recv_frame",
]

T = TypeVar("T")
R = TypeVar("R")

_HEADER = struct.Struct(">Q")
#: Sanity bound on a single frame; a corrupted length prefix should fail
#: loudly instead of allocating petabytes.
MAX_FRAME_BYTES = 1 << 31

_RECV_CHUNK = 1 << 16


class FrameError(ConnectionError):
    """A wire frame was torn, truncated, oversized, or undecodable."""


def send_frame(sock: socket.socket, message: object) -> None:
    """Pickle ``message`` and send it as one length-prefixed frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise FrameError(f"connection closed after {len(buf)}/{n} bytes")
        buf += chunk
    return bytes(buf)


def recv_frame(sock: socket.socket) -> object:
    """Blocking receive of one frame; raises :class:`FrameError` on EOF/garbage."""
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {length} bytes exceeds cap {MAX_FRAME_BYTES}")
    payload = _recv_exact(sock, length)
    try:
        return pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - any unpickling failure is a torn frame
        raise FrameError(f"undecodable frame: {exc!r}") from exc


class _Connection:
    """Coordinator-side state for one worker socket."""

    __slots__ = ("sock", "buffer", "proc", "pid", "ready", "inflight", "last_seen", "deadline")

    def __init__(self, sock: socket.socket, deadline: float) -> None:
        self.sock = sock
        self.buffer = bytearray()
        self.proc: subprocess.Popen | None = None
        self.pid: int | None = None
        self.ready = False
        #: ``(epoch, task_index, attempt)`` of the dispatched task, or None.
        self.inflight: tuple[int, int, int] | None = None
        self.last_seen = time.monotonic()
        self.deadline = deadline


def _pop_frames(conn: _Connection) -> list:
    """Drain every complete frame from ``conn.buffer`` (partial tail kept)."""
    frames = []
    buf = conn.buffer
    while len(buf) >= _HEADER.size:
        (length,) = _HEADER.unpack(buf[: _HEADER.size])
        if length > MAX_FRAME_BYTES:
            raise FrameError(f"frame of {length} bytes exceeds cap {MAX_FRAME_BYTES}")
        if len(buf) < _HEADER.size + length:
            break
        payload = bytes(buf[_HEADER.size : _HEADER.size + length])
        del buf[: _HEADER.size + length]
        try:
            frames.append(pickle.loads(payload))
        except Exception as exc:  # noqa: BLE001
            raise FrameError(f"undecodable frame: {exc!r}") from exc
    return frames


class RpcBackend(ExecutionBackend):
    """Coordinator for socket-RPC shard execution (registry name ``rpc``).

    Parameters
    ----------
    workers:
        Worker-process count (default: ``max(2, min(4, cpu_count))``).
        Workers are persistent across :meth:`run` calls, like ``pool``.
    worker_timeout:
        Seconds without any frame (result *or* heartbeat) after which a
        worker with an in-flight task is declared lost.  Heartbeats tick at
        ``~worker_timeout/4``, so slow-but-alive tasks are never killed.
    max_retries:
        How many times one task may be *re*-dispatched after losing its
        worker before :class:`~repro.errors.WorkerLostError` is raised
        (total dispatches = ``max_retries + 1``).
    retry_backoff:
        Base seconds of the exponential re-dispatch delay.
    worker_args:
        Extra argv appended to the worker command line — the fault-injection
        tests use this to arm chaos modes (``--chaos torn-result``).
    """

    name = "rpc"

    def __init__(
        self,
        workers: int | None = None,
        worker_timeout: float = 60.0,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        worker_args: Sequence[str] = (),
    ) -> None:
        if workers is None:
            workers = max(2, min(4, os.cpu_count() or 1))
        if int(workers) < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if float(worker_timeout) <= 0:
            raise ValidationError(f"worker_timeout must be > 0, got {worker_timeout}")
        if int(max_retries) < 0:
            raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
        if float(retry_backoff) < 0:
            raise ValidationError(f"retry_backoff must be >= 0, got {retry_backoff}")
        self.workers = int(workers)
        self.worker_timeout = float(worker_timeout)
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.worker_args = tuple(str(a) for a in worker_args)

        self._listener: socket.socket | None = None
        self._selector: selectors.BaseSelector | None = None
        self._port: int | None = None
        self._token: str | None = None
        self._conns: list[_Connection] = []
        self._pending_procs: list[tuple[subprocess.Popen, float]] = []
        self._epoch = 0
        self._active = False
        self._closing = False

    # -- cluster lifecycle -------------------------------------------------

    @property
    def _spawn_timeout(self) -> float:
        # Worker startup imports numpy; never time a handshake out faster
        # than a loaded CI box can import it.
        return max(10.0, self.worker_timeout)

    @property
    def _heartbeat(self) -> float:
        return min(1.0, max(0.02, self.worker_timeout / 4.0))

    def _ensure_cluster(self) -> None:
        if self._listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.bind(("127.0.0.1", 0))
            listener.listen(16)
            listener.setblocking(False)
            self._listener = listener
            self._port = listener.getsockname()[1]
            self._token = secrets.token_hex(16)
            self._selector = selectors.DefaultSelector()
            self._selector.register(listener, selectors.EVENT_READ, data=None)
        while len(self._conns) + len(self._pending_procs) < self.workers:
            self._spawn_worker()

    def _spawn_worker(self) -> None:
        cmd = [
            sys.executable,
            "-m",
            "repro.engine.rpc",
            "--worker",
            "--connect",
            f"127.0.0.1:{self._port}",
            "--heartbeat",
            f"{self._heartbeat:g}",
            *self.worker_args,
        ]
        env = dict(os.environ)
        env["REPRO_RPC_TOKEN"] = self._token or ""
        # Workers must import the same modules the coordinator can see —
        # including test modules when fn lives in one — so the coordinator's
        # sys.path becomes the worker's PYTHONPATH.
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(p for p in sys.path if p))
        proc = subprocess.Popen(cmd, env=env, stdin=subprocess.DEVNULL, stdout=subprocess.DEVNULL)
        self._pending_procs.append((proc, time.monotonic() + self._spawn_timeout))

    def _drop(self, conn: _Connection, kill: bool = True) -> None:
        if self._selector is not None:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
        try:
            conn.sock.close()
        except OSError:
            pass
        if conn in self._conns:
            self._conns.remove(conn)
        if kill and conn.proc is not None and conn.proc.poll() is None:
            conn.proc.kill()
        if conn.proc is not None:
            try:
                conn.proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                pass

    def worker_pids(self) -> list[int]:
        """PIDs of the currently connected workers (fault tests kill these)."""
        return [
            conn.pid
            for conn in list(self._conns)
            if conn.ready and conn.pid is not None and conn.proc is not None and conn.proc.poll() is None
        ]

    def close(self) -> None:
        """Shut workers down and release the listener; the backend stays reusable."""
        self._closing = True
        try:
            procs = [proc for proc, _ in self._pending_procs]
            for conn in list(self._conns):
                if conn.proc is not None:
                    procs.append(conn.proc)
                if conn.ready:
                    try:
                        conn.sock.settimeout(1.0)
                        send_frame(conn.sock, ("shutdown",))
                    except OSError:
                        pass
                self._drop(conn, kill=False)
            self._pending_procs.clear()
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    try:
                        proc.wait(timeout=5)
                    except subprocess.TimeoutExpired:
                        pass
            if self._selector is not None:
                self._selector.close()
            if self._listener is not None:
                try:
                    self._listener.close()
                except OSError:
                    pass
            self._listener = None
            self._selector = None
            self._port = None
            self._token = None
        finally:
            self._closing = False

    # -- execution ---------------------------------------------------------

    def run(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        results: list = [None] * len(tasks)
        for index, value in self.run_unordered(fn, tasks):
            results[index] = value
        return results

    def run_unordered(
        self,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        on_worker_lost: Callable[[int, int], None] | None = None,
    ) -> Iterator[tuple[int, R]]:
        if not tasks:
            return iter(())
        if on_worker_lost is not None and not callable(on_worker_lost):
            raise ValidationError("on_worker_lost must be callable")
        return self._stream(fn, list(tasks), on_worker_lost)

    def _stream(
        self,
        fn: Callable[[T], R],
        tasks: list,
        on_worker_lost: Callable[[int, int], None] | None,
    ) -> Iterator[tuple[int, R]]:
        if self._active:
            raise ValidationError("rpc backend does not support overlapping run calls")
        self._active = True
        try:
            self._ensure_cluster()
            assert self._selector is not None
            self._epoch += 1
            epoch = self._epoch
            pending: deque[tuple[int, int]] = deque((i, 1) for i in range(len(tasks)))
            not_before: dict[int, float] = {}
            completed: set[int] = set()
            done = 0
            idle_losses = 0
            idle_cap = max(8, 4 * self.workers)

            def lose(conn: _Connection, reason: str) -> None:
                nonlocal idle_losses
                inflight = conn.inflight
                conn.inflight = None
                self._drop(conn, kill=True)
                if inflight is not None and inflight[0] == epoch and inflight[1] not in completed:
                    _, index, attempt = inflight
                    if attempt > self.max_retries:
                        raise WorkerLostError(
                            f"rpc task {index} lost its worker {attempt} time(s) "
                            f"(last: {reason}); retries exhausted "
                            f"(max_retries={self.max_retries})"
                        )
                    if on_worker_lost is not None:
                        on_worker_lost(index, attempt)
                    not_before[index] = time.monotonic() + self.retry_backoff * (2 ** (attempt - 1))
                    pending.append((index, attempt + 1))
                else:
                    idle_losses += 1
                    if idle_losses > idle_cap:
                        raise WorkerLostError(
                            f"rpc workers died {idle_losses} times without completing a "
                            f"task (last: {reason}); refusing to respawn indefinitely"
                        )
                if not self._closing:
                    self._spawn_worker()

            while done < len(tasks):
                # Dispatch ready tasks onto idle workers.
                now = time.monotonic()
                for conn in [c for c in self._conns if c.ready and c.inflight is None]:
                    chosen = None
                    for _ in range(len(pending)):
                        if not_before.get(pending[0][0], 0.0) <= now:
                            chosen = pending.popleft()
                            break
                        pending.rotate(-1)
                    if chosen is None:
                        break
                    index, attempt = chosen
                    # Pickle before touching the socket: an unpicklable task
                    # is the caller's bug, not a worker loss.
                    payload = pickle.dumps(
                        ("task", epoch, index, fn, tasks[index]),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    conn.inflight = (epoch, index, attempt)
                    conn.last_seen = time.monotonic()
                    try:
                        conn.sock.settimeout(self.worker_timeout)
                        conn.sock.sendall(_HEADER.pack(len(payload)) + payload)
                        conn.sock.settimeout(0.0)
                    except OSError as exc:
                        lose(conn, f"task send failed ({exc!r})")

                # Wait for traffic.
                for key, _ in self._selector.select(timeout=0.05):
                    if key.data is None:  # listener: a freshly spawned worker connecting
                        while True:
                            try:
                                sock, _addr = self._listener.accept()  # type: ignore[union-attr]
                            except (BlockingIOError, OSError):
                                break
                            sock.setblocking(False)
                            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                            conn = _Connection(sock, deadline=time.monotonic() + self._spawn_timeout)
                            self._conns.append(conn)
                            self._selector.register(sock, selectors.EVENT_READ, data=conn)
                        continue
                    conn = key.data
                    if conn not in self._conns:
                        continue  # already dropped earlier in this event batch
                    eof = False
                    try:
                        while True:
                            chunk = conn.sock.recv(_RECV_CHUNK)
                            if not chunk:
                                eof = True
                                break
                            conn.buffer += chunk
                            if len(chunk) < _RECV_CHUNK:
                                break
                    except (BlockingIOError, InterruptedError):
                        pass
                    except OSError as exc:
                        lose(conn, f"connection error ({exc!r})")
                        continue
                    conn.last_seen = time.monotonic()
                    try:
                        frames = _pop_frames(conn)
                    except FrameError as exc:
                        lose(conn, str(exc))
                        continue
                    dropped = False
                    for message in frames:
                        if not conn.ready:
                            # First frame must be a valid handshake.
                            if (
                                isinstance(message, tuple)
                                and len(message) == 3
                                and message[0] == "hello"
                                and message[1] == self._token
                            ):
                                pid = int(message[2])
                                for pair in list(self._pending_procs):
                                    if pair[0].pid == pid:
                                        conn.proc = pair[0]
                                        self._pending_procs.remove(pair)
                                        break
                                conn.pid = pid
                                conn.ready = True
                                continue
                            self._drop(conn, kill=True)  # bad token/garbage: not ours
                            dropped = True
                            break
                        kind = message[0] if isinstance(message, tuple) and message else None
                        if kind == "heartbeat":
                            continue
                        if kind == "result":
                            _, ep, index, value = message
                            conn.inflight = None
                            idle_losses = 0
                            if ep == epoch and index not in completed:
                                completed.add(index)
                                done += 1
                                yield index, value
                        elif kind == "error":
                            _, ep, index, exc = message
                            conn.inflight = None
                            if ep == epoch:
                                if hasattr(exc, "add_note"):
                                    exc.add_note(
                                        f"raised in rpc worker pid {conn.pid} "
                                        f"while executing task {index}"
                                    )
                                raise exc
                        elif kind == "goodbye":
                            lose(conn, f"worker gave up: {message[1]}")
                            dropped = True
                            break
                        else:
                            lose(conn, f"unknown frame kind {kind!r}")
                            dropped = True
                            break
                    if dropped:
                        continue
                    if eof:
                        lose(conn, "worker closed the connection")

                # Deadline scans: wedged handshakes, silent workers, dead spawns.
                now = time.monotonic()
                for conn in list(self._conns):
                    if not conn.ready:
                        if now > conn.deadline:
                            lose(conn, "handshake timed out")
                    elif conn.inflight is not None and now - conn.last_seen > self.worker_timeout:
                        lose(conn, f"no heartbeat for {self.worker_timeout:g}s")
                for pair in list(self._pending_procs):
                    proc, deadline = pair
                    if proc.poll() is not None or now > deadline:
                        self._pending_procs.remove(pair)
                        if proc.poll() is None:
                            proc.kill()
                        idle_losses += 1
                        if idle_losses > idle_cap:
                            raise WorkerLostError(
                                f"rpc workers died {idle_losses} times without completing "
                                f"a task (last: worker exited before handshake); "
                                f"refusing to respawn indefinitely"
                            )
                        if not self._closing:
                            self._spawn_worker()
        finally:
            self._active = False

    def __repr__(self) -> str:
        state = "live" if self._listener is not None else "idle"
        return (
            f"RpcBackend(workers={self.workers}, worker_timeout={self.worker_timeout:g}, "
            f"max_retries={self.max_retries}, {state})"
        )


# -- worker side -----------------------------------------------------------


def _portable_exception(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round trip, else a stand-in."""
    try:
        pickle.loads(pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL))
        return exc
    except Exception:  # noqa: BLE001
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _claim_chaos(marker: str | None) -> bool:
    """One-shot chaos guard: first claimant of the marker file misbehaves."""
    if marker is None:
        return True
    try:
        with open(marker, "x"):
            return True
    except FileExistsError:
        return False


def _worker_main(args: argparse.Namespace) -> int:
    host, _, port = args.connect.rpartition(":")
    sock = socket.create_connection((host or "127.0.0.1", int(port)))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_lock = threading.Lock()
    with send_lock:
        send_frame(sock, ("hello", os.environ.get("REPRO_RPC_TOKEN", ""), os.getpid()))

    interval = max(0.01, float(args.heartbeat))

    def _beat() -> None:
        # A slow task is not a dead worker: heartbeats flow from a side
        # thread so the coordinator's deadline only fires on real death.
        while True:
            time.sleep(interval)
            try:
                with send_lock:
                    send_frame(sock, ("heartbeat",))
            except OSError:
                return

    threading.Thread(target=_beat, daemon=True, name="rpc-heartbeat").start()

    while True:
        try:
            message = recv_frame(sock)
        except FrameError as exc:
            if "connection closed" in str(exc):
                return 0  # coordinator is gone; nothing left to do
            # Decodable-length but unpicklable payload — usually a task fn
            # that is not importable on the worker (e.g. defined in the
            # coordinator's __main__).  Say so before dying, so the
            # coordinator's WorkerLostError names the real cause.
            try:
                with send_lock:
                    send_frame(sock, ("goodbye", f"could not decode task frame: {exc}"))
            except OSError:
                pass
            return 1
        except OSError:
            return 0
        if not isinstance(message, tuple) or not message:
            continue
        if message[0] == "shutdown":
            return 0
        if message[0] != "task":
            continue
        _, epoch, index, fn, task = message
        try:
            reply = ("result", epoch, index, fn(task))
        except BaseException as exc:  # noqa: BLE001 - shipped back, not swallowed
            reply = ("error", epoch, index, _portable_exception(exc))
        if args.chaos == "torn-result" and reply[0] == "result" and _claim_chaos(args.chaos_marker):
            # Fault injection: claim a full frame, send half of it, die.
            payload = pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
            with send_lock:
                try:
                    sock.sendall(_HEADER.pack(len(payload)) + payload[: max(1, len(payload) // 2)])
                except OSError:
                    pass
                os._exit(17)
        try:
            with send_lock:
                send_frame(sock, reply)
        except OSError:
            return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.rpc",
        description="Worker entrypoint for the rpc execution backend.",
    )
    parser.add_argument("--worker", action="store_true", help="run as an rpc worker")
    parser.add_argument("--connect", default=None, help="coordinator HOST:PORT")
    parser.add_argument("--heartbeat", type=float, default=0.25, help="heartbeat interval (s)")
    parser.add_argument(
        "--chaos",
        default=None,
        choices=("torn-result",),
        help="fault-injection mode (tests only)",
    )
    parser.add_argument("--chaos-marker", default=None, help="one-shot chaos marker file")
    args = parser.parse_args(argv)
    if not args.worker or not args.connect:
        parser.error("this module is a worker entrypoint; pass --worker --connect HOST:PORT")
    return _worker_main(args)


if __name__ == "__main__":
    raise SystemExit(main())
