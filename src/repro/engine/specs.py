"""Declarative specs for building engines: what to run, by name.

A spec is plain data — mechanism/policy/backend names from the registries, a
privacy budget, optional keyword parameters — so experiment configurations,
CLI invocations and saved JSON files all describe an engine the same way,
and :class:`~repro.engine.engine.PrivacyEngine` is the only place that turns
the description into live objects.  The optional :class:`ExecutionSpec`
block extends the same idea to *how* release rounds run (shard count and
execution backend); the JSON wire format is documented in
``docs/engine_specs.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.mechanisms import Mechanism
from repro.core.policy_graph import PolicyGraph
from repro.engine.backends import ExecutionBackend, resolve_backend
from repro.engine.registry import resolve_mechanism, resolve_policy
from repro.errors import ValidationError
from repro.geo.grid import GridWorld
from repro.utils.validation import check_epsilon

__all__ = ["MechanismSpec", "PolicySpec", "ExecutionSpec", "EngineSpec"]


@dataclass(frozen=True)
class PolicySpec:
    """A named policy plus optional builder parameters."""

    name: str
    params: Mapping = field(default_factory=dict)

    def build(self, world: GridWorld) -> PolicyGraph:
        """Instantiate the policy over ``world`` (params forwarded)."""
        _, builder = resolve_policy(self.name)
        return builder(world, **dict(self.params))

    @property
    def canonical_name(self) -> str:
        """Registry-canonical spelling of :attr:`name` (aliases resolved)."""
        return resolve_policy(self.name)[0]


@dataclass(frozen=True)
class MechanismSpec:
    """A named mechanism, its privacy budget, and optional parameters."""

    name: str
    epsilon: float = 1.0
    params: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)

    def build(self, world: GridWorld, policy: PolicyGraph) -> Mechanism:
        """Instantiate the mechanism for ``policy`` over ``world``."""
        _, factory = resolve_mechanism(self.name)
        return factory(world, policy, self.epsilon, **dict(self.params))

    @property
    def canonical_name(self) -> str:
        """Registry-canonical spelling of :attr:`name` (aliases resolved)."""
        return resolve_mechanism(self.name)[0]


@dataclass(frozen=True)
class ExecutionSpec:
    """How sharded release rounds should run: shard count and backend.

    ``backend`` is a registry name (``"serial"``, ``"thread"``,
    ``"process"``, ``"pool"``, ``"rpc"``, or anything added via
    :func:`~repro.engine.backends.register_backend`); ``params`` are
    forwarded to the backend factory — ``max_workers`` for the in-process
    pools, ``workers`` / ``worker_timeout`` / ``max_retries`` for the
    socket ``rpc`` backend (:class:`~repro.engine.rpc.RpcBackend`).
    Execution never affects the released values — per-user RNG streams make
    output invariant under sharding (see :mod:`repro.engine.sharding`), and
    the rpc backend's worker-loss retries re-run pure shard tasks
    bit-identically — so this is a pure throughput knob that can live in a
    saved spec file.

    ``store`` / ``resume`` extend the block to durability: a store path
    makes :func:`~repro.server.pipeline.run_release_rounds_batched` commit
    every shard transactionally into a
    :class:`~repro.store.TraceStore` at that path, and ``resume=True``
    continues an interrupted run recorded there (see
    ``docs/persistence.md``).  Like the rest of the block these are run
    control, not engine identity — the resume spec hash deliberately
    excludes them (:func:`~repro.store.resume.engine_spec_hash`).

    ``array_backend`` selects the array namespace the mechanism kernels
    compute on (``"numpy"`` default, ``"cupy"`` / ``"torch"`` optional; see
    :mod:`repro.core.xp`).  Numpy is the bit-exact reference; non-numpy
    backends keep the numpy RNG stream but round differently, so like the
    rest of the block this never changes *which* uniforms are consumed —
    the resume spec hash excludes it.

    ``live_metrics`` attaches the default
    :mod:`~repro.server.live_metrics` views (monitoring utility, contact
    rate, flow matrices) to the server so every committed shard folds into
    snapshot-consistent per-round aggregates queryable via
    ``Server.metrics_at``.  Observability only — released values are
    untouched — so the resume spec hash excludes it too.
    """

    backend: str = "serial"
    shards: int = 1
    params: Mapping = field(default_factory=dict)
    store: str | None = None
    resume: bool = False
    array_backend: str | None = None
    live_metrics: bool = False

    def __post_init__(self) -> None:
        if int(self.shards) < 1:
            raise ValidationError(f"shards must be >= 1, got {self.shards}")
        if self.resume and self.store is None:
            raise ValidationError("resume=True requires a store path")
        if self.array_backend is not None:
            # Validate the name against the registry at spec-construction
            # time (unknown names fail fast); availability is checked only
            # when the mechanism actually resolves the backend.
            from repro.core.xp import _canonical

            object.__setattr__(self, "array_backend", _canonical(self.array_backend))

    def build(self) -> ExecutionBackend:
        """Instantiate the named backend with this spec's params."""
        _, factory = resolve_backend(self.backend)
        return factory(**dict(self.params))

    @property
    def canonical_name(self) -> str:
        return resolve_backend(self.backend)[0]


@dataclass(frozen=True)
class EngineSpec:
    """Everything needed to build a :class:`PrivacyEngine` except the world.

    ``execution`` is optional: ``None`` (the default) means the caller never
    asked for sharded execution, so pipelines keep their single-stream
    behaviour; a populated :class:`ExecutionSpec` makes
    :func:`~repro.server.pipeline.run_release_rounds_batched` shard rounds
    with that backend unless the call site overrides it.
    """

    mechanism: MechanismSpec
    policy: PolicySpec
    execution: ExecutionSpec | None = None

    @classmethod
    def named(
        cls,
        mechanism: str,
        policy: str,
        epsilon: float = 1.0,
        mechanism_params: Mapping | None = None,
        policy_params: Mapping | None = None,
        backend: str | None = None,
        shards: int | None = None,
        backend_params: Mapping | None = None,
        store: str | None = None,
        resume: bool = False,
        array_backend: str | None = None,
        live_metrics: bool = False,
    ) -> "EngineSpec":
        """Spec from bare names — the common construction path.

        ``backend`` / ``shards`` / ``backend_params`` / ``store`` /
        ``resume`` / ``array_backend`` / ``live_metrics`` are optional;
        providing any of them attaches an :class:`ExecutionSpec` (missing
        pieces take the serial / 1-shard / in-memory / numpy defaults).
        """
        execution = None
        if (
            backend is not None
            or shards is not None
            or backend_params is not None
            or store is not None
            or array_backend is not None
            or live_metrics
        ):
            execution = ExecutionSpec(
                backend=backend if backend is not None else "serial",
                shards=shards if shards is not None else 1,
                params=dict(backend_params or {}),
                store=store,
                resume=bool(resume),
                array_backend=array_backend,
                live_metrics=bool(live_metrics),
            )
        return cls(
            mechanism=MechanismSpec(
                name=mechanism, epsilon=epsilon, params=dict(mechanism_params or {})
            ),
            policy=PolicySpec(name=policy, params=dict(policy_params or {})),
            execution=execution,
        )

    def to_dict(self) -> dict:
        """JSON-safe representation (canonical names, for persistence).

        The ``execution`` key is present only when the spec carries one, so
        spec files written before sharding existed round-trip unchanged.
        """
        payload = {
            "mechanism": {
                "name": self.mechanism.canonical_name,
                "epsilon": self.mechanism.epsilon,
                "params": dict(self.mechanism.params),
            },
            "policy": {
                "name": self.policy.canonical_name,
                "params": dict(self.policy.params),
            },
        }
        if self.execution is not None:
            execution = {
                "backend": self.execution.canonical_name,
                "shards": int(self.execution.shards),
                "params": dict(self.execution.params),
            }
            # Durability keys appear only when set, so spec files written
            # before the store subsystem existed round-trip unchanged.
            if self.execution.store is not None:
                execution["store"] = self.execution.store
                if self.execution.resume:
                    execution["resume"] = True
            # Like the durability keys, the array backend appears only when
            # set, so pre-seam spec files round-trip unchanged.
            if self.execution.array_backend is not None:
                execution["array_backend"] = self.execution.array_backend
            # Observability key, same round-trip rule: present only when on.
            if self.execution.live_metrics:
                execution["live_metrics"] = True
            payload["execution"] = execution
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "EngineSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written JSON)."""
        mechanism = payload["mechanism"]
        policy = payload["policy"]
        execution = payload.get("execution")
        return cls(
            mechanism=MechanismSpec(
                name=mechanism["name"],
                epsilon=float(mechanism.get("epsilon", 1.0)),
                params=dict(mechanism.get("params", {})),
            ),
            policy=PolicySpec(
                name=policy["name"], params=dict(policy.get("params", {}))
            ),
            execution=None
            if execution is None
            else ExecutionSpec(
                backend=execution.get("backend", "serial"),
                shards=int(execution.get("shards", 1)),
                params=dict(execution.get("params", {})),
                store=execution.get("store"),
                resume=bool(execution.get("resume", False)),
                array_backend=execution.get("array_backend"),
                live_metrics=bool(execution.get("live_metrics", False)),
            ),
        )
