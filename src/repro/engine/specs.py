"""Declarative specs for building engines: what to run, by name.

A spec is plain data — mechanism/policy names from the registry, a privacy
budget, optional keyword parameters — so experiment configurations, CLI
invocations and saved JSON files all describe an engine the same way, and
:class:`~repro.engine.engine.PrivacyEngine` is the only place that turns the
description into live objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.mechanisms import Mechanism
from repro.core.policy_graph import PolicyGraph
from repro.engine.registry import resolve_mechanism, resolve_policy
from repro.geo.grid import GridWorld
from repro.utils.validation import check_epsilon

__all__ = ["MechanismSpec", "PolicySpec", "EngineSpec"]


@dataclass(frozen=True)
class PolicySpec:
    """A named policy plus optional builder parameters."""

    name: str
    params: Mapping = field(default_factory=dict)

    def build(self, world: GridWorld) -> PolicyGraph:
        """Instantiate the policy over ``world``."""
        _, builder = resolve_policy(self.name)
        return builder(world, **dict(self.params))

    @property
    def canonical_name(self) -> str:
        return resolve_policy(self.name)[0]


@dataclass(frozen=True)
class MechanismSpec:
    """A named mechanism, its privacy budget, and optional parameters."""

    name: str
    epsilon: float = 1.0
    params: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)

    def build(self, world: GridWorld, policy: PolicyGraph) -> Mechanism:
        """Instantiate the mechanism for ``policy`` over ``world``."""
        _, factory = resolve_mechanism(self.name)
        return factory(world, policy, self.epsilon, **dict(self.params))

    @property
    def canonical_name(self) -> str:
        return resolve_mechanism(self.name)[0]


@dataclass(frozen=True)
class EngineSpec:
    """Everything needed to build a :class:`PrivacyEngine` except the world."""

    mechanism: MechanismSpec
    policy: PolicySpec

    @classmethod
    def named(
        cls,
        mechanism: str,
        policy: str,
        epsilon: float = 1.0,
        mechanism_params: Mapping | None = None,
        policy_params: Mapping | None = None,
    ) -> "EngineSpec":
        """Spec from bare names — the common construction path."""
        return cls(
            mechanism=MechanismSpec(
                name=mechanism, epsilon=epsilon, params=dict(mechanism_params or {})
            ),
            policy=PolicySpec(name=policy, params=dict(policy_params or {})),
        )

    def to_dict(self) -> dict:
        """JSON-safe representation (canonical names, for persistence)."""
        return {
            "mechanism": {
                "name": self.mechanism.canonical_name,
                "epsilon": self.mechanism.epsilon,
                "params": dict(self.mechanism.params),
            },
            "policy": {
                "name": self.policy.canonical_name,
                "params": dict(self.policy.params),
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "EngineSpec":
        mechanism = payload["mechanism"]
        policy = payload["policy"]
        return cls(
            mechanism=MechanismSpec(
                name=mechanism["name"],
                epsilon=float(mechanism.get("epsilon", 1.0)),
                params=dict(mechanism.get("params", {})),
            ),
            policy=PolicySpec(
                name=policy["name"], params=dict(policy.get("params", {}))
            ),
        )
