"""Batched, spec-driven release API — the system's scaling front door.

The seed reproduced the paper's mechanisms faithfully but served them one
scalar ``release()`` at a time.  This package turns the public API around a
population-scale engine:

* :class:`PrivacyEngine` — facade built from declarative specs, exposing
  vectorized :meth:`~PrivacyEngine.release_batch` (structure-of-arrays
  :class:`~repro.core.mechanisms.ReleaseBatch`) and
  :meth:`~PrivacyEngine.pdf_matrix`;
* :class:`EngineSpec` / :class:`MechanismSpec` / :class:`PolicySpec` /
  :class:`ExecutionSpec` — plain-data descriptions resolved through the
  string-name registry;
* :mod:`~repro.engine.registry` — one source of truth for mechanism and
  policy names shared by experiments, the CLI, and saved configs;
* :class:`ShardPlan` + :func:`sharded_release_rounds` — deterministic
  population sharding with per-user RNG streams, executed on a pluggable
  :class:`ExecutionBackend` (``serial`` / ``thread`` / ``process``) so one
  seeded run reproduces element-wise at any shard count.
"""

from repro.engine.backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_names,
    ensure_backend,
    register_backend,
    resolve_backend,
)
from repro.engine.engine import PrivacyEngine
from repro.engine.registry import (
    mechanism_names,
    policy_names,
    register_mechanism,
    register_policy,
    resolve_mechanism,
    resolve_policy,
)
from repro.engine.sharding import ShardPlan, sharded_release_rounds
from repro.engine.specs import EngineSpec, ExecutionSpec, MechanismSpec, PolicySpec

__all__ = [
    "PrivacyEngine",
    "EngineSpec",
    "MechanismSpec",
    "PolicySpec",
    "ExecutionSpec",
    "ShardPlan",
    "sharded_release_rounds",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "register_mechanism",
    "register_policy",
    "register_backend",
    "resolve_mechanism",
    "resolve_policy",
    "resolve_backend",
    "ensure_backend",
    "mechanism_names",
    "policy_names",
    "backend_names",
]
