"""Batched, spec-driven release API — the system's scaling front door.

The seed reproduced the paper's mechanisms faithfully but served them one
scalar ``release()`` at a time.  This package turns the public API around a
population-scale engine:

* :class:`PrivacyEngine` — facade built from declarative specs, exposing
  vectorized :meth:`~PrivacyEngine.release_batch` (structure-of-arrays
  :class:`~repro.core.mechanisms.ReleaseBatch`) and
  :meth:`~PrivacyEngine.pdf_matrix`;
* :class:`EngineSpec` / :class:`MechanismSpec` / :class:`PolicySpec` —
  plain-data descriptions resolved through the string-name registry;
* :mod:`~repro.engine.registry` — one source of truth for mechanism and
  policy names shared by experiments, the CLI, and saved configs.
"""

from repro.engine.engine import PrivacyEngine
from repro.engine.registry import (
    mechanism_names,
    policy_names,
    register_mechanism,
    register_policy,
    resolve_mechanism,
    resolve_policy,
)
from repro.engine.specs import EngineSpec, MechanismSpec, PolicySpec

__all__ = [
    "PrivacyEngine",
    "EngineSpec",
    "MechanismSpec",
    "PolicySpec",
    "register_mechanism",
    "register_policy",
    "resolve_mechanism",
    "resolve_policy",
    "mechanism_names",
    "policy_names",
]
