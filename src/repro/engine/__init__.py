"""Batched, spec-driven release API — the system's scaling front door.

The seed reproduced the paper's mechanisms faithfully but served them one
scalar ``release()`` at a time.  This package turns the public API around a
population-scale engine:

* :class:`PrivacyEngine` — facade built from declarative specs, exposing
  vectorized :meth:`~PrivacyEngine.release_batch` (structure-of-arrays
  :class:`~repro.core.mechanisms.ReleaseBatch`) and
  :meth:`~PrivacyEngine.pdf_matrix`;
* :class:`EngineSpec` / :class:`MechanismSpec` / :class:`PolicySpec` /
  :class:`ExecutionSpec` — plain-data descriptions resolved through the
  string-name registry;
* :mod:`~repro.engine.registry` — one source of truth for mechanism and
  policy names shared by experiments, the CLI, and saved configs;
* :class:`ShardPlan` + :func:`sharded_release_rounds` /
  :func:`stream_shard_releases` — deterministic population sharding with
  per-user RNG streams, executed on a pluggable :class:`ExecutionBackend`
  (``serial`` / ``thread`` / ``process`` / long-lived ``pool`` / socket
  ``rpc`` with deterministic worker-loss retry) so one seeded run
  reproduces element-wise at any shard count;
* :mod:`~repro.engine.distributed` — the evaluation layer's counterpart:
  :func:`sharded_metric` folds per-shard :class:`MetricShardResult`
  pieces with an exact associative merge, so E1/E4-class metrics scale
  over the same plans and backends as the release path;
* the kernel layer (:mod:`repro.core.xp` + :mod:`repro.core.workspace`) —
  a thin array-namespace seam (numpy reference, optional CuPy / torch by
  registry name) under every mechanism kernel, plus
  :meth:`PrivacyEngine.release_round_fused`: release → snap → area → flow
  coding in one pass over a preallocated :class:`RoundWorkspace`, bit-exact
  against the staged numpy path on the same RNG stream.
"""

from repro.engine.backends import (
    ExecutionBackend,
    PoolBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_names,
    ensure_backend,
    owned_backend,
    register_backend,
    resolve_backend,
)
from repro.core.workspace import FusedRound, RoundWorkspace
from repro.core.xp import (
    ArrayBackend,
    array_backend_names,
    probe_array_backends,
    register_array_backend,
    resolve_array_backend,
)
from repro.engine.engine import EngineRef, PrivacyEngine, resolve_release_source
from repro.engine.distributed import (
    MetricShardResult,
    merge_metric_results,
    sharded_metric,
    slot_plan,
)
from repro.engine.registry import (
    mechanism_names,
    policy_names,
    register_mechanism,
    register_policy,
    resolve_mechanism,
    resolve_policy,
)
from repro.engine.sharding import ShardPlan, sharded_release_rounds, stream_shard_releases
from repro.engine.specs import EngineSpec, ExecutionSpec, MechanismSpec, PolicySpec


def __getattr__(name: str):
    # RpcBackend is exported lazily (PEP 562): the worker entrypoint is
    # `python -m repro.engine.rpc`, and an eager import here would make runpy
    # warn about repro.engine.rpc already sitting in sys.modules.
    if name == "RpcBackend":
        from repro.engine.rpc import RpcBackend

        return RpcBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "PrivacyEngine",
    "EngineRef",
    "resolve_release_source",
    "EngineSpec",
    "MechanismSpec",
    "PolicySpec",
    "ExecutionSpec",
    "ShardPlan",
    "sharded_release_rounds",
    "stream_shard_releases",
    "MetricShardResult",
    "sharded_metric",
    "merge_metric_results",
    "slot_plan",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "PoolBackend",
    "RpcBackend",
    "register_mechanism",
    "register_policy",
    "register_backend",
    "resolve_mechanism",
    "resolve_policy",
    "resolve_backend",
    "ensure_backend",
    "owned_backend",
    "mechanism_names",
    "policy_names",
    "backend_names",
    "RoundWorkspace",
    "FusedRound",
    "ArrayBackend",
    "register_array_backend",
    "resolve_array_backend",
    "array_backend_names",
    "probe_array_backends",
]
