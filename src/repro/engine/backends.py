"""Pluggable execution backends for shard-parallel work.

A backend answers one question: *how* do independent shard tasks run —
in-process (``serial``), on a thread pool (``thread``), or on a process pool
(``process``, via :mod:`concurrent.futures`)?  Backends are registry-named
exactly like mechanisms and policies, so an :class:`~repro.engine.specs.EngineSpec`
(or a saved JSON spec file) can carry ``backend="process"`` and every layer —
pipeline, experiments, CLI — resolves it through the same table.

The contract is deliberately tiny: :meth:`ExecutionBackend.run` maps a
picklable function over a task list and returns the results **in task
order**, whatever the completion order was.  Determinism therefore never
depends on the backend; scheduling affects wall-clock only.  Anything that
satisfies that contract (an async loop, a cluster client) can be registered
with :func:`register_backend` and selected by name.
"""

from __future__ import annotations

import abc
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.engine.registry import _register, _resolve
from repro.errors import ValidationError

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "register_backend",
    "resolve_backend",
    "ensure_backend",
    "backend_names",
]

T = TypeVar("T")
R = TypeVar("R")

BackendFactory = Callable[..., "ExecutionBackend"]

_BACKENDS: dict[str, BackendFactory] = {}
#: casefolded alias -> canonical name (same resolution scheme as mechanisms).
_BACKEND_ALIASES: dict[str, str] = {}


class ExecutionBackend(abc.ABC):
    """Strategy for executing independent shard tasks.

    Subclasses implement :meth:`run`; everything else in the system treats a
    backend as an opaque "ordered parallel map".  Backends must be safe to
    reuse across calls (the E8 harness times several rounds through one
    instance).
    """

    #: canonical registry name, set on the built-in subclasses.
    name: str = "?"

    @abc.abstractmethod
    def run(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every task and return results in task order.

        Parameters
        ----------
        fn:
            The work function.  For :class:`ProcessBackend` both ``fn`` and
            the tasks must be picklable (module-level function, plain-data
            tasks).
        tasks:
            Independent work items; backends may execute them in any order
            but must **return** ``[fn(t) for t in tasks]`` order.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Run every task inline, in order — the reference backend.

    Zero scheduling overhead and the easiest to debug; the parallel backends
    must produce byte-identical results to this one (asserted in
    ``tests/test_sharding.py``).
    """

    name = "serial"

    def run(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        return [fn(task) for task in tasks]


class _PoolBackend(ExecutionBackend):
    """Shared ``concurrent.futures`` plumbing for thread/process pools."""

    _executor_cls: type

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and int(max_workers) < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = None if max_workers is None else int(max_workers)

    def run(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        if len(tasks) <= 1:  # pool startup would dominate a singleton
            return [fn(task) for task in tasks]
        with self._executor_cls(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, tasks))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadBackend(_PoolBackend):
    """Thread-pool execution (``concurrent.futures.ThreadPoolExecutor``).

    Shards share the interpreter, so speedups come from NumPy releasing the
    GIL inside the vectorized samplers; task setup cost is near zero.
    """

    name = "thread"
    _executor_cls = ThreadPoolExecutor


class ProcessBackend(_PoolBackend):
    """Process-pool execution (``concurrent.futures.ProcessPoolExecutor``).

    True multi-core parallelism.  Tasks and results cross process boundaries
    by pickling, so shard tasks carry plain data plus the (picklable) engine;
    per-user RNG streams travel as integer seeds and are reconstructed in the
    worker — which is why results are identical to :class:`SerialBackend`.
    """

    name = "process"
    _executor_cls = ProcessPoolExecutor


def register_backend(name: str, factory: BackendFactory, aliases: Iterable[str] = ()) -> None:
    """Register an execution-backend factory under ``name`` (plus aliases).

    ``factory(**params)`` must return an :class:`ExecutionBackend`; spec
    params (e.g. ``max_workers``) are forwarded as keyword arguments.
    Resolution semantics (casefolded aliases, canonical names) are shared
    with the mechanism/policy registries.
    """
    _register(_BACKENDS, _BACKEND_ALIASES, name, factory, aliases)


def resolve_backend(name: str) -> tuple[str, BackendFactory]:
    """``(canonical_name, factory)`` for any registered name or alias."""
    return _resolve(_BACKENDS, _BACKEND_ALIASES, "backend", name)


def ensure_backend(backend: "str | ExecutionBackend | None", **params) -> ExecutionBackend:
    """Coerce ``backend`` into a live :class:`ExecutionBackend`.

    ``None`` means :class:`SerialBackend`; a string resolves through the
    registry (``params`` forwarded to the factory); an instance passes
    through unchanged (``params`` must then be empty).
    """
    if backend is None:
        backend = "serial"
    if isinstance(backend, ExecutionBackend):
        if params:
            raise ValidationError("params only apply when resolving a backend by name")
        return backend
    _, factory = resolve_backend(backend)
    return factory(**params)


def backend_names() -> list[str]:
    """Canonical names of every registered backend, sorted."""
    return sorted(_BACKENDS)


register_backend("serial", SerialBackend, aliases=("sync", "inline"))
register_backend("thread", ThreadBackend, aliases=("threads", "threadpool"))
register_backend("process", ProcessBackend, aliases=("processes", "multiprocess"))
