"""Pluggable execution backends for shard-parallel work.

A backend answers one question: *how* do independent shard tasks run —
in-process (``serial``), on a thread pool (``thread``), on a per-call
process pool (``process``), or on a long-lived process pool (``pool``, all
via :mod:`concurrent.futures`)?  Backends are registry-named exactly like
mechanisms and policies, so an :class:`~repro.engine.specs.EngineSpec`
(or a saved JSON spec file) can carry ``backend="process"`` and every layer —
pipeline, experiments, CLI — resolves it through the same table.

The contract is deliberately tiny: :meth:`ExecutionBackend.run` maps a
picklable function over a task list and returns the results **in task
order**, whatever the completion order was.  Determinism therefore never
depends on the backend; scheduling affects wall-clock only.  Anything that
satisfies that contract (an async loop, a cluster client) can be registered
with :func:`register_backend` and selected by name.  Two optional protocol
extensions ride on top:

* :meth:`ExecutionBackend.run_unordered` yields ``(task_index, result)``
  pairs *as tasks complete*, which is what streaming consumers
  (:func:`~repro.engine.sharding.stream_shard_releases`,
  :meth:`~repro.server.pipeline.Server.ingest_shard`) use to avoid a full
  merge barrier.  The default delegates to :meth:`run`, so custom backends
  only implement it when they can genuinely stream.  Backends that can
  *lose* workers mid-task (the ``rpc`` backend) additionally accept an
  ``on_worker_lost(task_index, attempt)`` observer and transparently
  reschedule the lost task — because every shard task is a pure function
  of its seeds, a retry is bit-identical, so callers see at most one
  ``(index, result)`` pair per task regardless of how many workers died.
  The in-process backends never lose workers and simply ignore the hook.
* :meth:`ExecutionBackend.close` / the context-manager protocol releases
  whatever the backend holds (the ``pool`` backend's persistent executor).
  Call sites that *build* a backend from a registry name own it and must
  close it — including on error — which is what
  :func:`~repro.engine.sharding.sharded_release_rounds` and the harness do.
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from repro.engine.registry import _register, _resolve
from repro.errors import ValidationError

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "PoolBackend",
    "register_backend",
    "resolve_backend",
    "ensure_backend",
    "owned_backend",
    "backend_names",
]

T = TypeVar("T")
R = TypeVar("R")

BackendFactory = Callable[..., "ExecutionBackend"]

_BACKENDS: dict[str, BackendFactory] = {}
#: casefolded alias -> canonical name (same resolution scheme as mechanisms).
_BACKEND_ALIASES: dict[str, str] = {}


class ExecutionBackend(abc.ABC):
    """Strategy for executing independent shard tasks.

    Subclasses implement :meth:`run`; everything else in the system treats a
    backend as an opaque "ordered parallel map".  Backends must be safe to
    reuse across calls (the E8 harness times several rounds through one
    instance).
    """

    #: canonical registry name, set on the built-in subclasses.
    name: str = "?"

    @abc.abstractmethod
    def run(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every task and return results in task order.

        Parameters
        ----------
        fn:
            The work function.  For :class:`ProcessBackend` both ``fn`` and
            the tasks must be picklable (module-level function, plain-data
            tasks).
        tasks:
            Independent work items; backends may execute them in any order
            but must **return** ``[fn(t) for t in tasks]`` order.
        """

    def run_unordered(
        self,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        on_worker_lost: Callable[[int, int], None] | None = None,
    ) -> Iterator[tuple[int, R]]:
        """Yield ``(task_index, fn(task))`` pairs as tasks complete.

        The streaming half of the contract: consumers that can commit
        results incrementally (e.g. :meth:`Server.ingest_shard`) iterate
        this instead of waiting for the whole :meth:`run` list.  Yield
        order is unspecified; the index identifies the task.  The default
        implementation delegates to :meth:`run` (one barrier, then ordered
        yields), so every registered backend — including custom ones that
        only implement :meth:`run` — satisfies it; the built-in pool
        backends override it to stream genuinely.

        ``on_worker_lost(task_index, attempt)`` is an optional observer for
        backends whose workers can die mid-task (``rpc``): it is called once
        per lost execution *before* the task is rescheduled, with ``attempt``
        counting dispatches so far.  In-process backends never lose workers
        and accept-but-ignore the hook, so call sites can pass it
        unconditionally.
        """
        del on_worker_lost  # in-process execution cannot lose a worker
        yield from enumerate(self.run(fn, tasks))

    def close(self) -> None:
        """Release held resources (executors); idempotent.

        The base implementation is a no-op — only backends that keep state
        across :meth:`run` calls (:class:`PoolBackend`) override it.  After
        ``close()`` a backend may refuse further work.
        """

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Run every task inline, in order — the reference backend.

    Zero scheduling overhead and the easiest to debug; the parallel backends
    must produce byte-identical results to this one (asserted in
    ``tests/test_sharding.py``).
    """

    name = "serial"

    def run(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        return [fn(task) for task in tasks]


class _PoolBackend(ExecutionBackend):
    """Shared ``concurrent.futures`` plumbing for thread/process pools."""

    _executor_cls: type

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and int(max_workers) < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = None if max_workers is None else int(max_workers)

    def run(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        if len(tasks) <= 1:  # pool startup would dominate a singleton
            return [fn(task) for task in tasks]
        with self._executor_cls(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, tasks))

    def run_unordered(
        self,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        on_worker_lost: Callable[[int, int], None] | None = None,
    ) -> Iterator[tuple[int, R]]:
        del on_worker_lost  # executor tasks are never abandoned mid-flight
        if len(tasks) <= 1:
            yield from enumerate(fn(task) for task in tasks)
            return
        with self._executor_cls(max_workers=self.max_workers) as pool:
            futures = {pool.submit(fn, task): index for index, task in enumerate(tasks)}
            for future in as_completed(futures):
                yield futures[future], future.result()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadBackend(_PoolBackend):
    """Thread-pool execution (``concurrent.futures.ThreadPoolExecutor``).

    Shards share the interpreter, so speedups come from NumPy releasing the
    GIL inside the vectorized samplers; task setup cost is near zero.
    """

    name = "thread"
    _executor_cls = ThreadPoolExecutor


class ProcessBackend(_PoolBackend):
    """Process-pool execution (``concurrent.futures.ProcessPoolExecutor``).

    True multi-core parallelism.  Tasks and results cross process boundaries
    by pickling, so shard tasks carry plain data plus the (picklable) engine;
    per-user RNG streams travel as integer seeds and are reconstructed in the
    worker — which is why results are identical to :class:`SerialBackend`.
    """

    name = "process"
    _executor_cls = ProcessPoolExecutor


class PoolBackend(ExecutionBackend):
    """Long-lived process-pool execution for repeated rounds and sweeps.

    :class:`ProcessBackend` pays its full setup cost on *every* call: a
    fresh ``ProcessPoolExecutor`` is spun up, every task pickles its whole
    engine across the process boundary, and the workers die when the call
    returns.  ``pool`` keeps one executor alive across :meth:`run` calls
    instead, so repeated rounds / sweeps (the E8 harness, epsilon sweeps,
    benchmark loops) pay worker startup once.  Combined with
    :class:`~repro.engine.engine.EngineRef` — which ships a spec hash
    instead of a pickled engine and lets each worker cache the built engine
    by that hash — repeated rounds stop re-pickling construction state
    entirely.

    A failing task propagates its exception to the caller but leaves the
    executor intact: the pool stays usable for the next call.  The executor
    is created lazily on first use and released by :meth:`close` (or by
    using the backend as a context manager); call sites that resolve
    ``"pool"`` from the registry own the instance and must close it.
    """

    name = "pool"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and int(max_workers) < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = None if max_workers is None else int(max_workers)
        self._executor: ProcessPoolExecutor | None = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def run(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        # Even a singleton task goes through the pool: the whole point is
        # that workers stay warm (cached engines) for the *next* call.
        if not tasks:
            return []
        return list(self._pool().map(fn, tasks))

    def run_unordered(
        self,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        on_worker_lost: Callable[[int, int], None] | None = None,
    ) -> Iterator[tuple[int, R]]:
        del on_worker_lost  # executor tasks are never abandoned mid-flight
        if not tasks:
            return
        futures = {self._pool().submit(fn, task): index for index, task in enumerate(tasks)}
        for future in as_completed(futures):
            yield futures[future], future.result()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __repr__(self) -> str:
        state = "live" if self._executor is not None else "idle"
        return f"PoolBackend(max_workers={self.max_workers}, {state})"


def register_backend(name: str, factory: BackendFactory, aliases: Iterable[str] = ()) -> None:
    """Register an execution-backend factory under ``name`` (plus aliases).

    ``factory(**params)`` must return an :class:`ExecutionBackend`; spec
    params (e.g. ``max_workers``) are forwarded as keyword arguments.
    Resolution semantics (casefolded aliases, canonical names) are shared
    with the mechanism/policy registries.
    """
    _register(_BACKENDS, _BACKEND_ALIASES, name, factory, aliases)


def resolve_backend(name: str) -> tuple[str, BackendFactory]:
    """``(canonical_name, factory)`` for any registered name or alias."""
    return _resolve(_BACKENDS, _BACKEND_ALIASES, "backend", name)


def ensure_backend(backend: "str | ExecutionBackend | None", **params) -> ExecutionBackend:
    """Coerce ``backend`` into a live :class:`ExecutionBackend`.

    ``None`` means :class:`SerialBackend`; a string resolves through the
    registry (``params`` forwarded to the factory); an instance passes
    through unchanged (``params`` must then be empty).
    """
    if backend is None:
        backend = "serial"
    if isinstance(backend, ExecutionBackend):
        if params:
            raise ValidationError("params only apply when resolving a backend by name")
        return backend
    _, factory = resolve_backend(backend)
    return factory(**params)


@contextmanager
def owned_backend(
    backend: "str | ExecutionBackend | None", **params
) -> "Iterator[ExecutionBackend]":
    """Yield a live backend, closing it on exit **iff this call built it**.

    The ownership rule every shard-parallel entry point follows: a caller
    who passes a live :class:`ExecutionBackend` keeps responsibility for its
    lifetime (so one ``pool`` instance can be reused across many rounds),
    while a registry *name* (or ``None``) is resolved here and reliably
    closed — including when the body raises — so a failing harness run can
    never leak a process pool.
    """
    if isinstance(backend, ExecutionBackend):
        if params:
            raise ValidationError("params only apply when resolving a backend by name")
        yield backend
        return
    live = ensure_backend(backend, **params)
    try:
        yield live
    finally:
        live.close()


def backend_names() -> list[str]:
    """Canonical names of every registered backend, sorted."""
    return sorted(_BACKENDS)


def _rpc_factory(**params) -> "ExecutionBackend":
    # Imported lazily: rpc.py imports this module for ExecutionBackend, so a
    # top-level import here would be circular.  The factory is only paid for
    # when a spec/CLI actually selects the rpc backend.
    from repro.engine.rpc import RpcBackend

    return RpcBackend(**params)


register_backend("serial", SerialBackend, aliases=("sync", "inline"))
register_backend("thread", ThreadBackend, aliases=("threads", "threadpool"))
register_backend("process", ProcessBackend, aliases=("processes", "multiprocess"))
register_backend("pool", PoolBackend, aliases=("worker_pool", "persistent"))
register_backend("rpc", _rpc_factory, aliases=("socket", "tcp"))
