"""Contact tracing with dynamic policy graphs (the demo's Sec. 3.2 walkthrough).

Simulates a two-week city: commuters release perturbed locations under the
fine-grained policy Gb, an outbreak seeds at user 0, a patient is diagnosed,
and the server runs the paper's tracing procedure — patient disclosure,
dynamic Gc policy update, candidate re-sends, rule-of-two flagging — then
compares against the static baseline that only has the perturbed stream.

Run:  python examples/contact_tracing_demo.py
"""

from __future__ import annotations

from repro import (
    BudgetLedger,
    ContactTracingProtocol,
    GridWorld,
    PolicyLaplaceMechanism,
    area_policy,
    geolife_like,
    perturb_tracedb,
    simulate_outbreak,
    static_tracing,
)

WINDOW = 14 * 12  # two weeks of 2-hour samples
EPSILON = 1.0


def main() -> None:
    world = GridWorld(12, 12, cell_size=1.0)
    population = geolife_like(world, n_users=40, horizon=WINDOW, rng=2020, n_work_hubs=4)
    print(f"population: {len(population.users())} users, {len(population)} check-ins")

    outbreak = simulate_outbreak(population, seeds=[0], p_transmit=0.35, rng=1)
    print(f"outbreak: {len(outbreak.infected_users)} ever infected "
          f"(attack rate {outbreak.attack_rate:.0%}), {len(outbreak.events)} transmissions")
    print()

    diagnosis_time = population.times()[-1]
    patient = 0
    base_policy = area_policy(world, 2, 2, name="Gb")
    true_contacts = population.contacts_of(
        patient, min_count=2, start=diagnosis_time - WINDOW + 1, end=diagnosis_time
    )
    print(f"patient {patient} diagnosed at t={diagnosis_time}; "
          f"{len(true_contacts)} ground-truth contacts (rule of two)")

    ledger = BudgetLedger()
    protocol = ContactTracingProtocol(
        world, base_policy, PolicyLaplaceMechanism, EPSILON, min_count=2, window=WINDOW
    )
    outcome = protocol.run(population, patient, diagnosis_time, rng=3, ledger=ledger)
    print()
    print("dynamic-Gc tracing:")
    print(f"  candidates asked to re-send : {len(outcome.candidates)}")
    print(f"  flagged                     : {sorted(outcome.flagged)}")
    print(f"  precision / recall / F1     : {outcome.precision:.2f} / {outcome.recall:.2f} / {outcome.f1:.2f}")
    print(f"  extra budget spent          : {outcome.epsilon_spent:.1f} "
          f"(= {outcome.epsilon_spent / EPSILON:.0f} re-sent releases)")

    mechanism = PolicyLaplaceMechanism(world, base_policy, EPSILON)
    released = perturb_tracedb(world, mechanism, population, rng=4)
    baseline = static_tracing(world, released, population, patient, diagnosis_time, window=WINDOW)
    print()
    print("static baseline (perturbed data only):")
    print(f"  flagged                     : {sorted(baseline.flagged)}")
    print(f"  precision / recall / F1     : {baseline.precision:.2f} / {baseline.recall:.2f} / {baseline.f1:.2f}")
    print()
    print("=> the dynamic policy restores full tracing utility; the static")
    print("   baseline misses contacts because noise destroys co-locations.")


if __name__ == "__main__":
    main()
