"""Epidemic analysis under location privacy: estimating R0 from noisy data.

Reproduces the demo's second utility evaluation: an SEIR outbreak unfolds
over commuter traces; the health authority estimates the basic reproduction
number R0 twice — once from the true locations, once from the
privacy-preserving stream — for each policy graph and several budgets, and
reports the estimation error the paper plots.  An SEIR curve fit on the
outbreak's incidence is shown as a cross-check.

Run:  python examples/epidemic_analysis_demo.py
"""

from __future__ import annotations

from repro import (
    GridWorld,
    PolicyLaplaceMechanism,
    area_policy,
    estimate_r0_contacts,
    estimate_r0_seir,
    geolife_like,
    grid_policy,
    r0_estimation_error,
    simulate_outbreak,
)
from repro.experiments.reporting import ResultTable

P_TRANSMIT = 0.3
SIGMA = 0.25
GAMMA = 0.1


def main() -> None:
    world = GridWorld(12, 12)
    population = geolife_like(world, n_users=40, horizon=96, rng=11, n_work_hubs=4)

    r0_true = estimate_r0_contacts(population, p_transmit=P_TRANSMIT, gamma=GAMMA)
    print(f"contact-based R0 from true locations: {r0_true:.2f}")

    outbreak = simulate_outbreak(population, seeds=[0, 1], p_transmit=P_TRANSMIT,
                                 sigma=SIGMA, gamma=GAMMA, rng=12)
    incidence = outbreak.incidence()
    if incidence.sum() >= 5:
        seir_r0 = estimate_r0_seir(
            incidence, population=len(population.users()), sigma=SIGMA, gamma=GAMMA,
            initial_infectious=2,
        )
        print(f"SEIR-fit R0 from outbreak incidence : {seir_r0:.2f}")
    print()

    policies = {
        "G1": grid_policy(world),
        "Gb": area_policy(world, 2, 2, name="Gb"),
        "Ga": area_policy(world, 4, 4, name="Ga"),
    }
    table = ResultTable(
        ["policy", "epsilon", "r0_true", "r0_perturbed", "abs_error"],
        title="R0 estimation error under PGLP (mean of 3 runs)",
    )
    import numpy as np

    rng = np.random.default_rng(13)
    for name, policy in policies.items():
        for epsilon in (0.25, 0.5, 1.0, 2.0, 4.0):
            mechanism = PolicyLaplaceMechanism(world, policy, epsilon)
            runs = [
                r0_estimation_error(
                    world, mechanism, population, p_transmit=P_TRANSMIT, gamma=GAMMA, rng=rng
                )
                for _ in range(3)
            ]
            true_value = runs[0][0]
            perturbed = sum(run[1] for run in runs) / len(runs)
            error = sum(run[2] for run in runs) / len(runs)
            table.add_row(name, epsilon, true_value, perturbed, error)
    print(table.pretty())
    print("=> finer policies (G1, Gb) preserve the co-location structure the")
    print("   estimator needs; error shrinks as epsilon grows.")


if __name__ == "__main__":
    main()
