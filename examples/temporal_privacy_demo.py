"""Temporal release: delta-location sets, policy repair, and tracking attacks.

Follows one commuter releasing a location every timestep while an adversary
with the public mobility model filters over everything released so far.  Per
delta, the demo shows the shrinking location set (rendered on the map), how
often the true location drifts out of it (surrogate substitutions), whether
policy repair had to reconnect stranded nodes, and the tracking adversary's
localisation error — the temporal story behind delta-Location Set Privacy
and the PGLP report's protectable graphs.

Run:  python examples/temporal_privacy_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    GridWorld,
    MarkovModel,
    PolicyLaplaceMechanism,
    TemporalReleaser,
    TrajectoryAttacker,
    grid_policy,
)
from repro.experiments.reporting import ResultTable
from repro.viz import render_cells

EPSILON = 1.0
HORIZON = 24


def main() -> None:
    world = GridWorld(8, 8)
    markov = MarkovModel.lazy_walk(world, p_stay=0.4)
    base_policy = grid_policy(world)
    rng = np.random.default_rng(31)
    trajectory = markov.sample_trajectory(world.cell_of(4, 4), HORIZON, rng=rng)

    table = ResultTable(
        ["delta", "mean_set_size", "surrogates", "repaired_edges", "utility_err", "tracking_err"],
        title=f"temporal release over {HORIZON} steps (epsilon={EPSILON})",
    )
    final_sets = {}
    for delta in (0.0, 0.05, 0.2):
        releaser = TemporalReleaser(
            world, base_policy, markov, PolicyLaplaceMechanism, EPSILON, delta=delta
        )
        records = releaser.run(trajectory.cells, rng=rng)
        mechanisms = [PolicyLaplaceMechanism(world, r.repair.graph, EPSILON) for r in records]
        attacker = TrajectoryAttacker(world, markov)
        tracking = attacker.track([r.release for r in records], mechanisms, trajectory.cells)
        table.add_row(
            delta,
            float(np.mean([len(r.delta_set) for r in records])),
            sum(r.used_surrogate for r in records),
            sum(len(r.repair.added_edges) for r in records),
            releaser.mean_utility_error(),
            tracking.mean_error,
        )
        final_sets[delta] = records[-1]
    print(table.pretty())

    record = final_sets[0.2]
    print(f"final delta-location set (delta=0.2, {len(record.delta_set)} cells), # = feasible:")
    print(render_cells(world, record.delta_set))
    print(f"true cell was {record.true_cell}; surrogate used: {record.used_surrogate}")
    print()
    print("=> filtering shrinks the adversary's feasible set step by step; the")
    print("   policy is restricted (and repaired) to it, so no location is")
    print("   silently stranded into disclosability.")


if __name__ == "__main__":
    main()
