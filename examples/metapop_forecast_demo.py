"""Forecasting a city-level epidemic from privacy-preserving flows.

The end-to-end use the paper motivates location monitoring with: the health
authority fits a metapopulation SEIR (one compartment vector per district,
coupled by observed mobility) to the flows in the *perturbed* location
stream, and forecasts when the epidemic wave reaches each district.  The
demo compares the forecast against the true-flow model per policy and
budget, and renders the forecast wave over the map.

Run:  python examples/metapop_forecast_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    GridWorld,
    LocationMonitor,
    PolicyLaplaceMechanism,
    area_policy,
    geolife_like,
    grid_policy,
    perturb_tracedb,
)
from repro.epidemic.metapop import MetapopulationSEIR, flow_matrix, forecast_divergence
from repro.experiments.reporting import ResultTable

BLOCK = 4
BETA, SIGMA, GAMMA = 0.6, 0.3, 0.1


def main() -> None:
    world = GridWorld(12, 12)
    population = geolife_like(world, n_users=40, horizon=72, rng=21, n_work_hubs=4)
    monitor = LocationMonitor(world, BLOCK, BLOCK)
    n_areas = len(world.areas(BLOCK, BLOCK))

    occupancy = np.zeros(n_areas)
    for time in population.times():
        for cell in population.at_time(time).values():
            occupancy[monitor.area_of_cell(cell)] += 1
    populations = occupancy / occupancy.sum() * 4000 + 1
    seed_area = int(np.argmax(populations))

    def forecast(flows):
        model = MetapopulationSEIR(
            flow_matrix(flows, n_areas), beta=BETA, sigma=SIGMA, gamma=GAMMA, mobility_rate=0.3
        )
        return model.simulate(populations, seed_area=seed_area, steps=150)

    reference = forecast(monitor.flows(population))
    print(f"{n_areas} districts; epidemic seeded in the busiest (area {seed_area})")
    print(f"true-flow forecast: system peak at t={reference.peak_time():.0f}, "
          f"peak infectious {reference.total_infectious.max():.0f}")
    print()

    table = ResultTable(
        ["policy", "epsilon", "forecast_divergence", "peak_shift"],
        title="forecast fidelity from perturbed flows",
    )
    policies = {"G1": grid_policy(world), "Ga": area_policy(world, 4, 4, name="Ga")}
    for name, policy in policies.items():
        for epsilon in (0.25, 1.0, 4.0):
            mechanism = PolicyLaplaceMechanism(world, policy, epsilon)
            released = perturb_tracedb(world, mechanism, population, rng=22)
            candidate = forecast(monitor.flows(released))
            table.add_row(
                name,
                epsilon,
                forecast_divergence(reference, candidate),
                abs(candidate.peak_time() - reference.peak_time()),
            )
    print(table.pretty())
    print("=> per-district wave timing survives fine-grained policies at")
    print("   moderate budgets; aggregate peak timing survives everything —")
    print("   the monitoring app keeps its epidemiological value under PGLP.")


if __name__ == "__main__":
    main()
