"""Interactive-style policy explorer (the demo's Fig. 5 right panel).

Regenerates what a PANDA attendee does at the booth: pick one of the named
policy graphs (G1 / G2 / Ga / Gb / Gc) or generate random policies with a
size and density knob, then inspect the privacy-utility trade-off — utility
as mean Euclidean release error, privacy as the Bayesian adversary's
inference error.

Run:  python examples/policy_explorer.py
"""

from __future__ import annotations

import numpy as np

from repro import GridWorld, PolicyLaplaceMechanism, adversary_error, random_policy, utility_error
from repro.experiments.configs import POLICY_BUILDERS
from repro.experiments.reporting import ResultTable

EPSILON = 1.0


def named_policies(world: GridWorld) -> ResultTable:
    table = ResultTable(
        ["policy", "n_edges", "components", "utility_error", "adversary_error"],
        title=f"named policy graphs (epsilon={EPSILON})",
    )
    rng = np.random.default_rng(0)
    cells = rng.choice(world.n_cells, size=20, replace=False).tolist()
    for name, builder in POLICY_BUILDERS.items():
        policy = builder(world)
        mechanism = PolicyLaplaceMechanism(world, policy, EPSILON)
        protected = [c for c in cells if not policy.is_disclosable(c)]
        if not protected:
            continue
        table.add_row(
            name,
            policy.n_edges,
            len(policy.components()),
            utility_error(world, mechanism, protected, rng=rng, trials_per_cell=5),
            adversary_error(world, mechanism, protected, rng=rng, trials_per_cell=5),
        )
    return table


def random_policies(world: GridWorld) -> ResultTable:
    table = ResultTable(
        ["size", "density", "n_edges", "utility_error", "adversary_error"],
        title=f"random policy graphs (epsilon={EPSILON})",
    )
    rng = np.random.default_rng(1)
    for size in (20, 50):
        for density in (0.05, 0.1, 0.3, 0.6):
            policy = random_policy(world, size=size, density=density, rng=rng)
            protected = sorted(c for c in policy.nodes if not policy.is_disclosable(c))
            if not protected:
                continue
            mechanism = PolicyLaplaceMechanism(world, policy, EPSILON)
            sample = protected[:15]
            table.add_row(
                size,
                density,
                policy.n_edges,
                utility_error(world, mechanism, sample, rng=rng, trials_per_cell=4),
                adversary_error(world, mechanism, sample, rng=rng, trials_per_cell=4),
            )
    return table


def main() -> None:
    world = GridWorld(10, 10)
    print(named_policies(world).pretty())
    print(random_policies(world).pretty())
    print("=> utility error and adversary error move together: denser or")
    print("   longer-edged policies buy privacy with noise, exactly the")
    print("   trade-off dimension the policy graph adds over a single epsilon.")


if __name__ == "__main__":
    main()
