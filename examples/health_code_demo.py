"""The privacy-preserving "health code" service (Sec. 1 / 3.1 of the paper).

An outbreak leaves a set of confirmed infected locations.  The health-code
service certifies every user green / yellow / red from their 14-day history.
Running it on the *privacy-preserving* stream shows the policy choice at
work: under the epidemic-analysis policy Gb the codes are noisy; under the
tracing policy Gc (infected cells disclosable) they become exact — "a
'health code' service ... in a privacy-preserving way".

Run:  python examples/health_code_demo.py
"""

from __future__ import annotations

from repro import (
    GridWorld,
    HealthCodeService,
    PolicyLaplaceMechanism,
    area_policy,
    contact_tracing_policy,
    geolife_like,
    perturb_tracedb,
    simulate_outbreak,
)
from repro.experiments.reporting import ResultTable

WINDOW = 72
EPSILON = 1.0


def main() -> None:
    world = GridWorld(12, 12)
    population = geolife_like(world, n_users=40, horizon=WINDOW, rng=77, n_work_hubs=6)
    outbreak = simulate_outbreak(population, seeds=[0], p_transmit=0.1, gamma=0.25, rng=78)
    now = population.times()[-1]

    # Infected locations come from *diagnosed* patients' disclosed traces
    # (PANDA's protocol) — here the seed patient plus the first confirmed
    # secondary case, not the whole invisible infection chain.
    diagnosed = [0] + sorted(outbreak.infected_users - {0})[:1]
    infected = set()
    for user in diagnosed:
        infected |= {cell for cell, _ in outbreak.infectious_cells(user, population, 0, now)}
    if not infected:
        infected = set(population.cells_visited(0))
    print(f"outbreak: {len(outbreak.infected_users)} infected users; "
          f"{len(diagnosed)} diagnosed, {len(infected)} confirmed infected locations")

    service = HealthCodeService(infected, window=WINDOW, red_threshold=2)
    truth_codes = service.codes(population, now)
    distribution = {}
    for code in truth_codes.values():
        distribution[code.status] = distribution.get(code.status, 0) + 1
    print(f"ground-truth codes: {distribution}")
    print()

    base = area_policy(world, 2, 2, name="Gb")
    policies = {
        "Gb (static analysis policy)": base,
        "Gc (infected cells disclosable)": contact_tracing_policy(base, infected),
    }
    table = ResultTable(
        ["policy", "epsilon", "accuracy", "false_green", "false_red"],
        title="health-code fidelity from the privacy-preserving stream",
    )
    for label, policy in policies.items():
        for epsilon in (0.5, EPSILON, 2.0):
            mechanism = PolicyLaplaceMechanism(world, policy, epsilon)
            released = perturb_tracedb(world, mechanism, population, rng=79)
            report = service.evaluate(population, released, now)
            table.add_row(label, epsilon, report.accuracy, report.false_green_rate,
                          report.false_red_rate)
    print(table.pretty())
    print("=> Gc never misses an exposure (false_green = 0: every true visit")
    print("   to an infected cell is disclosed by policy), at the cost of a")
    print("   few false alarms when other users' noise snaps into an infected")
    print("   cell.  Gb's uniform indistinguishability misses exposures")
    print("   outright at low budgets — the paper's policy-per-function message.")


if __name__ == "__main__":
    main()
