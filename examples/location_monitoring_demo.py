"""Location monitoring: city-level flows from privacy-preserving releases.

Reproduces the demo's first surveillance app: the server aggregates the
perturbed stream into coarse areas ("cities"), tracks inter-area flows, and
the operator compares the private dashboard against ground truth — the
coarse policy Ga is designed so that exactly this view stays useful.
Includes the full client/server pipeline of Fig. 1, with budget accounting.

Run:  python examples/location_monitoring_demo.py
"""

from __future__ import annotations

from repro import (
    GridWorld,
    LocationMonitor,
    PolicyConfigurator,
    PolicyLaplaceMechanism,
    geolife_like,
    monitoring_utility,
    run_release_rounds,
)
from repro.experiments.reporting import ResultTable


def main() -> None:
    world = GridWorld(12, 12, cell_size=1.0)
    population = geolife_like(world, n_users=40, horizon=72, rng=5, n_work_hubs=4)
    # analysis_block=(3, 3) keeps Gb distinguishable from G1 in the sweep
    # (2x2 cliques and 8-adjacency share the same sqrt(2) noise scale).
    configurator = PolicyConfigurator(world, monitor_block=(4, 4), analysis_block=(3, 3))

    # Clients consent to the monitoring policy Ga and stream releases.
    proposal = configurator.recommend("monitoring")
    policy = proposal.approve()
    server, _clients = run_release_rounds(
        world, population, policy, PolicyLaplaceMechanism, epsilon=1.0, rng=6, window=72
    )
    print(f"server ingested {len(server.released_db)} releases; "
          f"total budget spent: {server.ledger.total_spent():.0f}")

    monitor = LocationMonitor(world, 4, 4)
    true_flows = monitor.flows(population)
    observed_flows = monitor.flows(server.released_db)
    cross_true = {k: v for k, v in true_flows.items() if k[0] != k[1]}
    top = sorted(cross_true.items(), key=lambda kv: -kv[1])[:5]
    table = ResultTable(
        ["flow", "true_count", "observed_count"],
        title="top inter-area flows (true vs privacy-preserving)",
    )
    for (src, dst), count in top:
        table.add_row(f"{src}->{dst}", count, observed_flows.get((src, dst), 0))
    print()
    print(table.pretty())

    # Utility sweep across policies, as the demo's comparison panel shows.
    sweep = ResultTable(
        ["policy", "epsilon", "mean_error_km", "area_accuracy", "flow_l1_error"],
        title="monitoring utility by policy",
    )
    for purpose in ("monitoring", "analysis", "geo-ind"):
        swept_policy = configurator.recommend(purpose).approve()
        for epsilon in (0.5, 1.0, 2.0):
            mechanism = PolicyLaplaceMechanism(world, swept_policy, epsilon)
            report = monitoring_utility(world, mechanism, population, rng=7)
            sweep.add_row(
                swept_policy.name,
                epsilon,
                report.mean_euclidean_error,
                report.area_accuracy,
                report.flow_l1_error,
            )
    print(sweep.pretty())
    print("=> no policy is best for everything: Ga protects whole districts")
    print("   (more noise per point) while G1/Gb keep point utility high.")


if __name__ == "__main__":
    main()
