"""Quickstart: release a private location under a policy graph.

Builds the paper's G1 policy (grid adjacency, which implies
Geo-Indistinguishability — Theorem 2.1), perturbs a location with the
policy-aware Laplace mechanism and with P-PIM, shows what a Bayesian
adversary can (and cannot) infer from the release, and finishes with the
spec-driven PrivacyEngine releasing a whole population in one batched call.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BayesianAttacker,
    GridWorld,
    PolicyLaplaceMechanism,
    PolicyPlanarIsotropicMechanism,
    PrivacyEngine,
    adversary_error,
    contact_tracing_policy,
    grid_policy,
    monitoring_utility,
)
from repro.mobility.synthetic import geolife_like


def main() -> None:
    world = GridWorld(10, 10, cell_size=1.0)  # a 10x10 km city grid
    policy = grid_policy(world)               # G1: each cell ~ its 8 neighbors
    true_cell = world.cell_of(4, 6)
    print(f"world: {world}")
    print(f"policy: {policy} (disclosable cells: {len(policy.disclosable_nodes())})")
    print(f"true location: cell {true_cell} at {world.coords(true_cell)}")
    print()

    for epsilon in (0.5, 1.0, 2.0):
        laplace = PolicyLaplaceMechanism(world, policy, epsilon)
        pim = PolicyPlanarIsotropicMechanism(world, policy, epsilon)
        release_lm = laplace.release(true_cell, rng=epsilon_seed(epsilon))
        release_pim = pim.release(true_cell, rng=epsilon_seed(epsilon))
        print(
            f"epsilon={epsilon:>3}: "
            f"P-LM -> ({release_lm.point[0]:6.2f}, {release_lm.point[1]:6.2f})   "
            f"P-PIM -> ({release_pim.point[0]:6.2f}, {release_pim.point[1]:6.2f})"
        )
    print()

    # What does an attacker with a uniform prior learn from one release?
    epsilon = 1.0
    mechanism = PolicyLaplaceMechanism(world, policy, epsilon)
    attacker = BayesianAttacker(world, mechanism)
    rng = np.random.default_rng(7)
    release = mechanism.release(true_cell, rng=rng)
    estimate = attacker.estimate(release)
    print(f"attacker sees {tuple(round(c, 2) for c in release.point)}")
    print(f"attacker's best guess: cell {estimate} at {world.coords(estimate)}")
    print(f"attack error: {world.distance(estimate, true_cell):.2f} km")
    print(f"attacker's residual uncertainty: {attacker.expected_error(release):.2f} km")
    print()

    # The contact-tracing twist: isolate an infected cell and it is disclosed.
    gc = contact_tracing_policy(policy, [true_cell], name="Gc")
    tracing_mechanism = PolicyLaplaceMechanism(world, gc, epsilon)
    disclosed = tracing_mechanism.release(true_cell, rng=rng)
    print(f"under Gc (cell {true_cell} infected): release={disclosed.point}, exact={disclosed.exact}")
    print()

    # Population scale: the spec-driven engine releases everyone at once.
    engine = PrivacyEngine.from_spec(
        world, mechanism="planar_laplace", policy="G1", epsilon=1.0
    )
    population = np.arange(world.n_cells)
    batch = engine.release_batch(population, rng=7)
    print(f"engine: {engine}")
    print(
        f"released {len(batch)} locations in one call; "
        f"mean displacement {np.hypot(*(batch.points - world.coords_array()).T).mean():.2f} km"
    )
    print()

    # Evaluation at population scale: the metrics are batch-first too.  One
    # call scores a whole trace database through release_batch + snap_batch
    # (and the same seeded rng reproduces the scalar reference loop).
    db = geolife_like(world, n_users=50, horizon=48, rng=3)
    report = monitoring_utility(world, engine.mechanism, db, rng=7)
    print(
        f"monitoring utility over {report.n_releases} releases: "
        f"error={report.mean_euclidean_error:.2f} km, "
        f"area accuracy={report.area_accuracy:.0%}, "
        f"flow L1={report.flow_l1_error:.2f}"
    )
    privacy = adversary_error(world, engine.mechanism, population, rng=7, trials_per_cell=5)
    print(f"adversary inference error ({5 * len(population)} batched attacks): {privacy:.2f} km")


def epsilon_seed(epsilon: float) -> int:
    return int(epsilon * 1000)


if __name__ == "__main__":
    main()
