"""Unit tests for the dataset registry and persistence."""

import pytest

from repro.errors import DataError
from repro.geo.grid import GridWorld
from repro.mobility.datasets import (
    DATASETS,
    dataset_summary,
    load_tracedb,
    make_dataset,
    save_tracedb,
)
from repro.mobility.trajectory import TraceDB


@pytest.fixture
def world():
    return GridWorld(6, 6)


class TestRegistry:
    def test_names(self):
        assert set(DATASETS) == {"geolife", "gowalla", "random_waypoint"}

    def test_make_geolife(self, world):
        db = make_dataset("geolife", world, rng=0, n_users=4, horizon=24)
        assert len(db.users()) == 4

    def test_make_gowalla(self, world):
        db = make_dataset("gowalla", world, rng=0, n_users=4, checkins_per_user=5, horizon=30)
        assert len(db) == 20

    def test_unknown_name(self, world):
        with pytest.raises(DataError):
            make_dataset("brightkite", world)


class TestSummary:
    def test_summary_fields(self, world):
        db = make_dataset("geolife", world, rng=1, n_users=3, horizon=10)
        summary = dataset_summary(db)
        assert summary["n_users"] == 3
        assert summary["n_checkins"] == 30
        assert summary["time_span"] == (0, 9)
        assert summary["mean_history_length"] == pytest.approx(10.0)
        assert 1 <= summary["distinct_cells"] <= 36

    def test_empty_db(self):
        summary = dataset_summary(TraceDB())
        assert summary["n_users"] == 0
        assert summary["time_span"] == (None, None)


class TestPersistence:
    def test_roundtrip(self, world, tmp_path):
        db = make_dataset("gowalla", world, rng=2, n_users=5, checkins_per_user=8, horizon=40)
        path = tmp_path / "traces.jsonl"
        save_tracedb(db, path)
        loaded = load_tracedb(path)
        assert list(loaded.checkins()) == list(db.checkins())

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_tracedb(tmp_path / "nope.jsonl")

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 0, "u": 1, "c": 2}\nnot json\n')
        with pytest.raises(DataError, match="line 2|bad.jsonl"):
            load_tracedb(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"t": 0, "u": 1, "c": 2}\n\n{"t": 1, "u": 1, "c": 3}\n')
        loaded = load_tracedb(path)
        assert len(loaded) == 2
