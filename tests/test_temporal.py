"""Unit tests for the temporal releaser (delta sets + repair loop)."""

import numpy as np
import pytest

from repro.core.mechanisms import PolicyLaplaceMechanism
from repro.core.policies import grid_policy
from repro.core.temporal import TemporalReleaser
from repro.errors import PolicyError
from repro.geo.grid import GridWorld
from repro.mobility.markov import MarkovModel


@pytest.fixture
def world():
    return GridWorld(6, 6)


@pytest.fixture
def markov(world):
    return MarkovModel.lazy_walk(world, p_stay=0.5)


@pytest.fixture
def releaser(world, markov):
    return TemporalReleaser(
        world,
        grid_policy(world),
        markov,
        PolicyLaplaceMechanism,
        epsilon=1.0,
        delta=0.1,
    )


class TestStep:
    def test_step_produces_record(self, releaser):
        record = releaser.step(14, rng=0)
        assert record.true_cell == 14
        assert record.delta_set
        assert record.release.point is not None
        assert len(releaser.history) == 1

    def test_delta_zero_keeps_whole_support(self, world, markov):
        releaser = TemporalReleaser(
            world, grid_policy(world), markov, PolicyLaplaceMechanism, 1.0, delta=0.0
        )
        record = releaser.step(0, rng=0)
        # Stationary prior of the lazy walk is strictly positive everywhere.
        assert len(record.delta_set) == world.n_cells
        assert not record.used_surrogate

    def test_surrogate_used_when_truth_outside_set(self, world, markov):
        releaser = TemporalReleaser(
            world, grid_policy(world), markov, PolicyLaplaceMechanism, 1.0, delta=0.6
        )
        # Huge delta -> tiny set; a far-away truth must be substituted.
        record = releaser.step(0, rng=0)
        if 0 not in record.delta_set:
            assert record.used_surrogate
            assert record.input_cell in record.delta_set

    def test_surrogate_is_nearest(self, world, markov, releaser):
        record = releaser.step(14, rng=0)
        if record.used_surrogate:
            nearest = min(
                record.delta_set,
                key=lambda c: (world.distance(record.true_cell, c), c),
            )
            assert record.input_cell == nearest

    def test_cell_outside_policy_rejected(self, world, markov):
        from repro.core.policy_graph import PolicyGraph

        policy = PolicyGraph([0, 1], [(0, 1)])
        releaser = TemporalReleaser(world, policy, markov, PolicyLaplaceMechanism, 1.0)
        with pytest.raises(PolicyError):
            releaser.step(20, rng=0)


class TestRunAndMetrics:
    def test_run_full_trajectory(self, world, markov, releaser):
        trajectory = markov.sample_trajectory(14, 10, rng=1)
        records = releaser.run(trajectory.cells, rng=2)
        assert len(records) == 10
        assert releaser.mean_utility_error() > 0
        assert 0.0 <= releaser.surrogate_rate() <= 1.0

    def test_metrics_require_history(self, releaser):
        with pytest.raises(PolicyError):
            releaser.mean_utility_error()
        with pytest.raises(PolicyError):
            releaser.surrogate_rate()

    def test_filter_tightens_over_time(self, world, markov, releaser):
        # Releasing from a fixed cell should shrink the delta set.
        rng = np.random.default_rng(3)
        sizes = [len(releaser.step(14, rng=rng).delta_set) for _ in range(8)]
        assert sizes[-1] <= sizes[0]

    def test_repair_keeps_nodes_protected(self, world, markov):
        # With repair on, no originally protected node in the feasible set
        # becomes disclosable.
        releaser = TemporalReleaser(
            world, grid_policy(world), markov, PolicyLaplaceMechanism, 1.0, delta=0.3
        )
        rng = np.random.default_rng(4)
        for _ in range(6):
            record = releaser.step(20, rng=rng)
            for node in record.repair.graph.nodes:
                if not record.repair.graph.is_disclosable(node):
                    continue
                # Any disclosable node must be unprotectable (reported), not silent.
                assert node in record.repair.unprotectable_nodes

    def test_deterministic_given_seed(self, world, markov):
        def run():
            releaser = TemporalReleaser(
                world, grid_policy(world), markov, PolicyLaplaceMechanism, 1.0, delta=0.1
            )
            releaser.run([14, 15, 16], rng=9)
            return [r.release.point for r in releaser.history]

        assert run() == run()
